"""BCP micro-benchmark: three-way engine comparison on the hot path.

Measures raw unit-propagation throughput (props/sec) of three engines:

* ``legacy`` — a faithful in-file copy of the seed engine (plain
  two-watched-literal lists, no blocking literals, no binary
  specialization);
* ``new``    — the object-core propagator (blocking literals, binary
  watch tables, ``SolverClause`` objects);
* ``arena``  — the flat int32 arena core (contiguous clause buffer,
  watcher-only binaries, fully-watched ternaries, offset-addressed
  long clauses).

All engines run on fixed-seed workloads:

* ``3sat``    — uniform random 3-SAT at the phase transition;
* ``mixed``   — 55% binary clauses, the shape of a learned-clause
  database mid-search (CDCL learns many short clauses);
* ``binary``  — pure binary clauses (implication-graph-dense shape:
  equivalence chains, at-most-one encodings);
* ``long``    — wide clauses (k in 4..9) where the blocking literal
  skips most clause dereferences.

Both engines replay the *same* fixed-seed decision sequence, so they do
identical logical work; only the propagation machinery differs.  The
aggregate figure is total propagations over total seconds across all
workloads.  A second section times the end-to-end labeling pipeline and
the ParallelRunner (workers=4 vs 1) on a 20-instance dataset.

Results land in ``BENCH_bcp.json`` at the repo root (before/after
props/sec per workload, aggregate speedup, labeling wall-clock).

Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks every size
and skips the timing assertions so CI can exercise the code path in
seconds; smoke results land in ``BENCH_bcp_smoke.json`` so the
committed full-run baseline is never clobbered.  ``--check-regression``
additionally compares the measured arena-vs-object speedup ratio
against the committed ``BENCH_bcp.json`` and fails on a >10%
regression (a ratio of same-run measurements, so absolute machine
speed cancels out).

Run standalone with ``PYTHONPATH=src python benchmarks/bench_bcp_micro.py``
or via pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_bcp_micro.py``.
"""

from __future__ import annotations

import gc
import json
import os
import random
import time
from pathlib import Path
from typing import List, Optional

from repro.cnf.formula import CNF
from repro.cnf.generators import random_ksat
from repro.parallel import ParallelRunner
from repro.selection.labeling import label_instances
from repro.solver.arena import (
    ArenaPropagator,
    ArenaTrail,
    ArenaWatchLists,
    ClauseArena,
)
from repro.solver.assignment import Trail
from repro.solver.clause_db import SolverClause
from repro.solver.propagate import Propagator
from repro.solver.statistics import SolverStatistics
from repro.solver.types import TRUE, UNASSIGNED, encode
from repro.solver.watchers import WatchLists

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_bcp.json"
SMOKE_RESULT_PATH = REPO_ROOT / "BENCH_bcp_smoke.json"

# Replay passes per workload; smoke mode only proves the path runs.
PASSES = 4 if SMOKE else 60
LABEL_INSTANCES = 4 if SMOKE else 20
LABEL_VARS = 30 if SMOKE else 60
LABEL_CONFLICTS = 300 if SMOKE else 3000


# --------------------------------------------------------------------------
# Seed engine (pre-overhaul), copied verbatim in behaviour: one watch
# table of clause objects, per-visit garbage checks, variable-indexed
# truth lookups, tuple-free but allocation-heavy relocation.
# --------------------------------------------------------------------------


class LegacyTrail:
    """Seed trail: variable-indexed values only (no lit_values array)."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        n = num_vars + 1
        self.values = [UNASSIGNED] * n
        self.levels = [0] * n
        self.reasons: List[Optional[SolverClause]] = [None] * n
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def assign(self, lit: int, reason: Optional[SolverClause]) -> None:
        var = lit >> 1
        self.values[var] = 0 if (lit & 1) else 1
        self.levels[var] = self.decision_level
        self.reasons[var] = reason
        self.trail.append(lit)

    def backtrack(self, level: int) -> None:
        if level >= self.decision_level:
            return
        boundary = self.trail_lim[level]
        for lit in self.trail[boundary:]:
            var = lit >> 1
            self.values[var] = UNASSIGNED
            self.reasons[var] = None
        del self.trail[boundary:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))


class LegacyWatchLists:
    """Seed watch lists: every clause (binary included) in one table."""

    def __init__(self, num_vars: int):
        self.watches: List[List[SolverClause]] = [
            [] for _ in range(2 * (num_vars + 1))
        ]

    def attach(self, clause: SolverClause) -> None:
        self.watches[clause.lits[0]].append(clause)
        self.watches[clause.lits[1]].append(clause)


class LegacyPropagator:
    """Seed propagation loop: no blocking literals, no binary table."""

    def __init__(self, trail: LegacyTrail, watches: LegacyWatchLists,
                 stats: SolverStatistics):
        self.trail = trail
        self.watches = watches
        self.stats = stats
        self.frequency = [0] * (trail.num_vars + 1)
        self.lifetime_frequency = [0] * (trail.num_vars + 1)

    def _record_propagation(self, var: int) -> None:
        self.frequency[var] += 1
        self.lifetime_frequency[var] += 1
        self.stats.propagations += 1

    def propagate(self) -> Optional[SolverClause]:
        trail = self.trail
        values = trail.values
        watches = self.watches.watches
        while trail.qhead < len(trail.trail):
            lit = trail.trail[trail.qhead]
            trail.qhead += 1
            false_lit = lit ^ 1
            watchers = watches[false_lit]
            i = j = 0
            n = len(watchers)
            conflict = None
            while i < n:
                clause = watchers[i]
                i += 1
                if clause.garbage:
                    continue
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                v0 = values[first >> 1]
                if v0 != UNASSIGNED and (v0 ^ (first & 1)) == TRUE:
                    watchers[j] = clause
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    candidate = lits[k]
                    vk = values[candidate >> 1]
                    if vk == UNASSIGNED or (vk ^ (candidate & 1)) == TRUE:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches[candidate].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                watchers[j] = clause
                j += 1
                if v0 == UNASSIGNED:
                    trail.assign(first, clause)
                    self._record_propagation(first >> 1)
                else:
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    conflict = clause
            del watchers[j:]
            if conflict is not None:
                trail.qhead = len(trail.trail)
                return conflict
        return None


# --------------------------------------------------------------------------
# Workloads and the replay harness
# --------------------------------------------------------------------------


def mixed_cnf(num_vars: int, num_clauses: int, frac_binary: float,
              seed: int) -> CNF:
    """Random formula mixing binary and ternary clauses (fixed seed)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = 2 if rng.random() < frac_binary else 3
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CNF(clauses, num_vars=num_vars)


def long_cnf(num_vars: int, num_clauses: int, seed: int) -> CNF:
    """Random formula of wide clauses (k uniform in 4..9)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(4, 9)
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CNF(clauses, num_vars=num_vars)


def workloads():
    """The fixed-seed workload mix (scaled down in smoke mode).

    The mixed workload is 55% binary — the shape of a clause database
    mid-search, where learned clauses skew heavily toward binaries.
    The pure-binary workload models implication-graph-dense instances
    (equivalence chains, at-most-one encodings), the case the dedicated
    binary watch lists target directly.
    """
    scale = 8 if SMOKE else 1
    return [
        ("3sat", random_ksat(400 // scale, 1680 // scale, seed=11)),
        ("mixed", mixed_cnf(400 // scale, 1900 // scale, 0.55, 12)),
        ("binary", mixed_cnf(400 // scale, 1000 // scale, 1.0, 14)),
        ("long", long_cnf(200 // scale, 3500 // scale, 13)),
    ]


def build_engine(engine: str, cnf: CNF):
    """Instantiate (trail, propagator) with the formula attached."""
    n = cnf.num_vars
    stats = SolverStatistics()
    if engine == "legacy":
        trail = LegacyTrail(n)
        watches = LegacyWatchLists(n)
        prop = LegacyPropagator(trail, watches, stats)
    elif engine == "arena":
        arena = ClauseArena()
        trail = ArenaTrail(n, arena)
        watches = ArenaWatchLists(n, arena)
        prop = ArenaPropagator(trail, watches, stats)
        for clause in cnf.clauses:
            lits = [encode(lit) for lit in clause.literals]
            if len(lits) >= 2:
                watches.attach(arena.add_original(lits))
        return trail, prop, stats
    else:
        trail = Trail(n)
        watches = WatchLists(n)
        prop = Propagator(trail, watches, stats)
    for clause in cnf.clauses:
        lits = [encode(lit) for lit in clause.literals]
        if len(lits) >= 2:
            watches.attach(SolverClause(lits))
    return trail, prop, stats


def replay(engine: str, cnf: CNF, seed: int, passes: int):
    """Replay a fixed-seed decision sequence; return (props, seconds).

    Each pass walks the same shuffled literal order, assigning every
    still-unassigned variable as a decision and propagating; a conflict
    resets to level 0.  Deterministic, allocation-stable, and BCP
    dominates the profile (~85% of runtime).

    Only propagations from *completed* (conflict-free) waves are
    counted.  Unit propagation is confluent, so a completed wave from a
    given partial assignment implies the same set of literals in every
    engine — making the count exactly engine-invariant (a strong
    differential oracle).  A conflicting wave stops wherever that
    engine's visit order happens to detect the conflict (e.g. the
    arena's fully-watched ternary table sees conflicts earlier than a
    relocating two-watch scheme), so its partial count is
    engine-dependent noise; the work is still *timed*, just not
    counted.
    """
    trail, prop, stats = build_engine(engine, cnf)
    rng = random.Random(seed)
    order = [
        encode(v if rng.random() < 0.5 else -v)
        for v in range(1, cnf.num_vars + 1)
    ]
    rng.shuffle(order)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    counted = 0
    # CPU time, not wall time: the replay is single-threaded pure
    # compute, and process_time is immune to VM steal / descheduling,
    # which otherwise dominates the noise on shared runners.
    # The already-assigned filter reads the truth array each engine
    # actually maintains: the legacy trail only has the per-variable
    # ``values`` array, the object and arena trails share ``lit_values``.
    legacy_values = trail.values if engine == "legacy" else None
    lit_values = None if engine == "legacy" else trail.lit_values
    start = time.process_time()
    for _ in range(passes):
        for lit in order:
            if (
                legacy_values[lit >> 1]
                if lit_values is None
                else lit_values[lit]
            ) != UNASSIGNED:
                continue
            trail.new_decision_level()
            trail.assign(lit, None)
            before = stats.propagations
            if prop.propagate() is not None:
                trail.backtrack(0)
            else:
                counted += stats.propagations - before
        trail.backtrack(0)
    elapsed = time.process_time() - start
    if gc_was_enabled:
        gc.enable()
    return counted, elapsed


def run_bcp_comparison():
    """Both engines over every workload; per-workload and aggregate.

    Each (engine, workload) cell is timed ``REPEATS`` times and the
    fastest run is kept — the standard defence against scheduler noise,
    which on a busy single-core box easily exceeds the effect size.
    """
    repeats = 1 if SMOKE else 3
    engines = ("legacy", "new", "arena")
    per_workload = {}
    totals = {engine: [0, 0.0] for engine in engines}
    for name, cnf in workloads():
        # Interleave the engines across repeats so slow phases of the
        # host (frequency scaling, steal time) hit all of them evenly.
        best = {}
        for _ in range(repeats):
            for engine in engines:
                props, seconds = replay(engine, cnf, seed=99, passes=PASSES)
                if engine not in best:
                    best[engine] = (props, seconds)
                else:
                    assert best[engine][0] == props  # deterministic replay
                    best[engine] = (props, min(best[engine][1], seconds))
        entry = {}
        for engine in engines:
            props, seconds = best[engine]
            entry[engine] = {
                "propagations": props,
                "seconds": round(seconds, 4),
                "props_per_sec": round(props / seconds, 1),
            }
            totals[engine][0] += props
            totals[engine][1] += seconds
        # Same decision replay + confluent unit propagation => counting
        # only completed waves (see replay()) makes the propagation
        # counts *exactly* engine-invariant.  Any difference means an
        # engine implied a different assignment set — a propagation bug,
        # not noise — so this is a hard differential oracle (and far
        # inside the tentpole's ±0.5% acceptance bound).
        legacy_props = entry["legacy"]["propagations"]
        new_props = entry["new"]["propagations"]
        arena_props = entry["arena"]["propagations"]
        assert legacy_props == new_props == arena_props, (
            name, legacy_props, new_props, arena_props,
        )
        # With counts pinned equal, a props/sec ratio is exactly a
        # seconds ratio — and the latter stays defined for smoke-sized
        # workloads where every wave conflicts (zero counted props).
        legacy_sec = best["legacy"][1]
        new_sec = best["new"][1]
        arena_sec = best["arena"][1]
        entry["speedup"] = round(legacy_sec / new_sec, 3)
        entry["speedup_arena_vs_new"] = round(new_sec / arena_sec, 3)
        entry["speedup_arena_vs_legacy"] = round(legacy_sec / arena_sec, 3)
        per_workload[name] = entry
    aggregate = {
        engine: round(props / seconds, 1)
        for engine, (props, seconds) in totals.items()
    }
    aggregate["speedup"] = round(totals["legacy"][1] / totals["new"][1], 3)
    aggregate["speedup_arena_vs_new"] = round(
        totals["new"][1] / totals["arena"][1], 3
    )
    aggregate["speedup_arena_vs_legacy"] = round(
        totals["legacy"][1] / totals["arena"][1], 3
    )
    return {"workloads": per_workload, "aggregate": aggregate}


def run_labeling_comparison():
    """End-to-end labeling wall-clock: serial vs 4 workers vs cached."""
    cnfs = [
        random_ksat(LABEL_VARS, int(LABEL_VARS * 4.3), seed=500 + i)
        for i in range(LABEL_INSTANCES)
    ]
    start = time.perf_counter()
    serial = label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, workers=4)
    parallel_seconds = time.perf_counter() - start
    assert [c.label for c in serial] == [c.label for c in parallel]

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        runner = ParallelRunner(workers=4, cache_dir=tmp)
        label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, runner=runner)
        cold_executed = runner.last_stats.executed
        runner = ParallelRunner(workers=4, cache_dir=tmp)
        start = time.perf_counter()
        label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, runner=runner)
        cached_seconds = time.perf_counter() - start
        warm_hits = runner.last_stats.cache_hits
        warm_executed = runner.last_stats.executed

    return {
        "instances": LABEL_INSTANCES,
        "max_conflicts": LABEL_CONFLICTS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "workers4_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "cold_executed": cold_executed,
        "warm_cache_hits": warm_hits,
        "warm_executed": warm_executed,
        "warm_seconds": round(cached_seconds, 3),
    }


def run_all():
    """Full benchmark; returns the BENCH_bcp.json payload."""
    from repro.obs.manifest import git_describe

    bcp = run_bcp_comparison()
    labeling = run_labeling_comparison()
    payload = {
        "smoke": SMOKE,
        "passes": PASSES,
        "git": git_describe(),
        "created_unix": round(time.time(), 3),
        "bcp": bcp,
        "labeling": labeling,
    }
    # Smoke runs must not clobber the committed full-run baseline the
    # regression gate compares against.
    path = SMOKE_RESULT_PATH if SMOKE else RESULT_PATH
    path.write_text(json.dumps(payload, indent=2) + "\n")
    _ingest_into_store(path)
    return payload


def _ingest_into_store(path: Path) -> None:
    """Index the fresh result in ``$REPRO_STORE`` (best effort, opt-in).

    Only an explicit ``REPRO_STORE`` target is honored — the benchmark
    writes results at the repo root, so there is no trace directory to
    default beside.
    """
    if not os.environ.get("REPRO_STORE", "").strip():
        return
    try:
        from repro.store import RunStore, resolve_auto_store

        store_path = resolve_auto_store(None)
        if store_path is None:
            return  # REPRO_STORE held an off-value
        with RunStore(store_path) as store:
            store.ingest_bench(path)
    except Exception as exc:  # the store must never fail the benchmark
        import sys

        print(f"warning: run-store ingest failed ({exc})", file=sys.stderr)


def test_bcp_micro():
    """Pytest entry point; asserts the tentpole targets outside smoke."""
    payload = run_all()
    bcp = payload["bcp"]
    labeling = payload["labeling"]
    for name, entry in bcp["workloads"].items():
        assert entry["legacy"]["seconds"] > 0, name
        assert (
            entry["legacy"]["propagations"]
            == entry["new"]["propagations"]
            == entry["arena"]["propagations"]
        ), name
    assert labeling["warm_executed"] == 0
    assert labeling["warm_cache_hits"] == 2 * labeling["instances"]
    if not SMOKE:
        assert bcp["aggregate"]["speedup"] >= 1.5, bcp["aggregate"]
        # The tentpole "2x over the seed engine" target, plus a floor on
        # the arena's margin over the object core.  Pure CPython boxes
        # every int, so the contiguous layout cannot translate fully
        # into cache wins the way it would compiled (see DESIGN.md);
        # the measured arena-vs-object aggregate is ~1.5x, asserted
        # here with headroom for scheduler noise.
        assert bcp["aggregate"]["speedup_arena_vs_legacy"] >= 2.0, bcp["aggregate"]
        assert bcp["aggregate"]["speedup_arena_vs_new"] >= 1.25, bcp["aggregate"]
        if (os.cpu_count() or 1) >= 2:
            # Process fan-out can't beat serial on a single core.
            assert labeling["parallel_speedup"] > 1.0, labeling


def check_regression(payload: dict, baseline: dict) -> List[str]:
    """Compare the run against a committed baseline; return failures.

    The guarded quantity is the *ratio* of arena to object-core
    throughput measured within the same process — absolute props/sec
    depends on the host, but the ratio is portable.  A measured ratio
    more than 10% below the committed aggregate ratio fails.
    """
    committed = baseline["bcp"]["aggregate"]["speedup_arena_vs_new"]
    measured = payload["bcp"]["aggregate"]["speedup_arena_vs_new"]
    failures = []
    if measured < 0.9 * committed:
        failures.append(
            f"arena-vs-object aggregate speedup regressed: measured "
            f"{measured}x vs committed {committed}x (>10% below)"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    global SMOKE, PASSES, LABEL_INSTANCES, LABEL_VARS, LABEL_CONFLICTS

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink sizes and skip timing assertions (same as "
        "REPRO_BENCH_SMOKE=1)",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="fail (exit 1) if the arena-vs-object speedup ratio drops "
        ">10%% below the committed BENCH_bcp.json aggregate",
    )
    args = parser.parse_args(argv)
    if args.smoke and not SMOKE:
        SMOKE = True
        PASSES = 4
        LABEL_INSTANCES, LABEL_VARS, LABEL_CONFLICTS = 4, 30, 300

    # The baseline must be read before run_all() rewrites the file.
    baseline = None
    if args.check_regression:
        baseline = json.loads(RESULT_PATH.read_text())

    payload = run_all()
    print(json.dumps(payload, indent=2))
    agg = payload["bcp"]["aggregate"]
    print(
        f"\naggregate BCP: legacy {agg['legacy']:,.0f} -> object "
        f"{agg['new']:,.0f} ({agg['speedup']}x) -> arena "
        f"{agg['arena']:,.0f} props/s "
        f"({agg['speedup_arena_vs_new']}x object, "
        f"{agg['speedup_arena_vs_legacy']}x legacy)"
    )
    lab = payload["labeling"]
    print(
        f"labeling {lab['instances']} instances: serial {lab['serial_seconds']}s, "
        f"4 workers {lab['workers4_seconds']}s ({lab['parallel_speedup']}x), "
        f"warm cache {lab['warm_seconds']}s"
    )
    if baseline is not None:
        failures = check_regression(payload, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        print(
            f"regression check ok: {agg['speedup_arena_vs_new']}x vs "
            f"committed {baseline['bcp']['aggregate']['speedup_arena_vs_new']}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
