"""BCP micro-benchmark: optimized hot path vs the pre-overhaul engine.

Measures raw unit-propagation throughput (props/sec) of the current
blocking-literal / binary-specialized propagator against a faithful
in-file copy of the seed engine (plain two-watched-literal lists, no
blocking literals, no binary specialization), on fixed-seed workloads:

* ``3sat``    — uniform random 3-SAT at the phase transition;
* ``mixed``   — 55% binary clauses, the shape of a learned-clause
  database mid-search (CDCL learns many short clauses);
* ``binary``  — pure binary clauses (implication-graph-dense shape:
  equivalence chains, at-most-one encodings);
* ``long``    — wide clauses (k in 4..9) where the blocking literal
  skips most clause dereferences.

Both engines replay the *same* fixed-seed decision sequence, so they do
identical logical work; only the propagation machinery differs.  The
aggregate figure is total propagations over total seconds across all
workloads.  A second section times the end-to-end labeling pipeline and
the ParallelRunner (workers=4 vs 1) on a 20-instance dataset.

Results land in ``BENCH_bcp.json`` at the repo root (before/after
props/sec per workload, aggregate speedup, labeling wall-clock).

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks every size and skips the
timing assertions so CI can exercise the code path in seconds.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_bcp_micro.py``
or via pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_bcp_micro.py``.
"""

from __future__ import annotations

import gc
import json
import os
import random
import time
from pathlib import Path
from typing import List, Optional

from repro.cnf.formula import CNF
from repro.cnf.generators import random_ksat
from repro.parallel import ParallelRunner
from repro.selection.labeling import label_instances
from repro.solver.assignment import Trail
from repro.solver.clause_db import SolverClause
from repro.solver.propagate import Propagator
from repro.solver.statistics import SolverStatistics
from repro.solver.types import TRUE, UNASSIGNED, encode
from repro.solver.watchers import WatchLists

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_bcp.json"

# Replay passes per workload; smoke mode only proves the path runs.
PASSES = 4 if SMOKE else 60
LABEL_INSTANCES = 4 if SMOKE else 20
LABEL_VARS = 30 if SMOKE else 60
LABEL_CONFLICTS = 300 if SMOKE else 3000


# --------------------------------------------------------------------------
# Seed engine (pre-overhaul), copied verbatim in behaviour: one watch
# table of clause objects, per-visit garbage checks, variable-indexed
# truth lookups, tuple-free but allocation-heavy relocation.
# --------------------------------------------------------------------------


class LegacyTrail:
    """Seed trail: variable-indexed values only (no lit_values array)."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        n = num_vars + 1
        self.values = [UNASSIGNED] * n
        self.levels = [0] * n
        self.reasons: List[Optional[SolverClause]] = [None] * n
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def assign(self, lit: int, reason: Optional[SolverClause]) -> None:
        var = lit >> 1
        self.values[var] = 0 if (lit & 1) else 1
        self.levels[var] = self.decision_level
        self.reasons[var] = reason
        self.trail.append(lit)

    def backtrack(self, level: int) -> None:
        if level >= self.decision_level:
            return
        boundary = self.trail_lim[level]
        for lit in self.trail[boundary:]:
            var = lit >> 1
            self.values[var] = UNASSIGNED
            self.reasons[var] = None
        del self.trail[boundary:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))


class LegacyWatchLists:
    """Seed watch lists: every clause (binary included) in one table."""

    def __init__(self, num_vars: int):
        self.watches: List[List[SolverClause]] = [
            [] for _ in range(2 * (num_vars + 1))
        ]

    def attach(self, clause: SolverClause) -> None:
        self.watches[clause.lits[0]].append(clause)
        self.watches[clause.lits[1]].append(clause)


class LegacyPropagator:
    """Seed propagation loop: no blocking literals, no binary table."""

    def __init__(self, trail: LegacyTrail, watches: LegacyWatchLists,
                 stats: SolverStatistics):
        self.trail = trail
        self.watches = watches
        self.stats = stats
        self.frequency = [0] * (trail.num_vars + 1)
        self.lifetime_frequency = [0] * (trail.num_vars + 1)

    def _record_propagation(self, var: int) -> None:
        self.frequency[var] += 1
        self.lifetime_frequency[var] += 1
        self.stats.propagations += 1

    def propagate(self) -> Optional[SolverClause]:
        trail = self.trail
        values = trail.values
        watches = self.watches.watches
        while trail.qhead < len(trail.trail):
            lit = trail.trail[trail.qhead]
            trail.qhead += 1
            false_lit = lit ^ 1
            watchers = watches[false_lit]
            i = j = 0
            n = len(watchers)
            conflict = None
            while i < n:
                clause = watchers[i]
                i += 1
                if clause.garbage:
                    continue
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                v0 = values[first >> 1]
                if v0 != UNASSIGNED and (v0 ^ (first & 1)) == TRUE:
                    watchers[j] = clause
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    candidate = lits[k]
                    vk = values[candidate >> 1]
                    if vk == UNASSIGNED or (vk ^ (candidate & 1)) == TRUE:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches[candidate].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                watchers[j] = clause
                j += 1
                if v0 == UNASSIGNED:
                    trail.assign(first, clause)
                    self._record_propagation(first >> 1)
                else:
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    conflict = clause
            del watchers[j:]
            if conflict is not None:
                trail.qhead = len(trail.trail)
                return conflict
        return None


# --------------------------------------------------------------------------
# Workloads and the replay harness
# --------------------------------------------------------------------------


def mixed_cnf(num_vars: int, num_clauses: int, frac_binary: float,
              seed: int) -> CNF:
    """Random formula mixing binary and ternary clauses (fixed seed)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = 2 if rng.random() < frac_binary else 3
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CNF(clauses, num_vars=num_vars)


def long_cnf(num_vars: int, num_clauses: int, seed: int) -> CNF:
    """Random formula of wide clauses (k uniform in 4..9)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(4, 9)
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CNF(clauses, num_vars=num_vars)


def workloads():
    """The fixed-seed workload mix (scaled down in smoke mode).

    The mixed workload is 55% binary — the shape of a clause database
    mid-search, where learned clauses skew heavily toward binaries.
    The pure-binary workload models implication-graph-dense instances
    (equivalence chains, at-most-one encodings), the case the dedicated
    binary watch lists target directly.
    """
    scale = 8 if SMOKE else 1
    return [
        ("3sat", random_ksat(400 // scale, 1680 // scale, seed=11)),
        ("mixed", mixed_cnf(400 // scale, 1900 // scale, 0.55, 12)),
        ("binary", mixed_cnf(400 // scale, 1000 // scale, 1.0, 14)),
        ("long", long_cnf(200 // scale, 3500 // scale, 13)),
    ]


def build_engine(engine: str, cnf: CNF):
    """Instantiate (trail, propagator) with the formula attached."""
    n = cnf.num_vars
    stats = SolverStatistics()
    if engine == "legacy":
        trail = LegacyTrail(n)
        watches = LegacyWatchLists(n)
        prop = LegacyPropagator(trail, watches, stats)
    else:
        trail = Trail(n)
        watches = WatchLists(n)
        prop = Propagator(trail, watches, stats)
    for clause in cnf.clauses:
        lits = [encode(lit) for lit in clause.literals]
        if len(lits) >= 2:
            watches.attach(SolverClause(lits))
    return trail, prop, stats


def replay(engine: str, cnf: CNF, seed: int, passes: int):
    """Replay a fixed-seed decision sequence; return (props, seconds).

    Each pass walks the same shuffled literal order, assigning every
    still-unassigned variable as a decision and propagating; a conflict
    resets to level 0.  Deterministic, allocation-stable, and BCP
    dominates the profile (~85% of runtime).
    """
    trail, prop, stats = build_engine(engine, cnf)
    rng = random.Random(seed)
    order = [
        encode(v if rng.random() < 0.5 else -v)
        for v in range(1, cnf.num_vars + 1)
    ]
    rng.shuffle(order)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    # CPU time, not wall time: the replay is single-threaded pure
    # compute, and process_time is immune to VM steal / descheduling,
    # which otherwise dominates the noise on shared runners.
    start = time.process_time()
    for _ in range(passes):
        for lit in order:
            if trail.values[lit >> 1] != UNASSIGNED:
                continue
            trail.new_decision_level()
            trail.assign(lit, None)
            if prop.propagate() is not None:
                trail.backtrack(0)
        trail.backtrack(0)
    elapsed = time.process_time() - start
    if gc_was_enabled:
        gc.enable()
    return stats.propagations, elapsed


def run_bcp_comparison():
    """Both engines over every workload; per-workload and aggregate.

    Each (engine, workload) cell is timed ``REPEATS`` times and the
    fastest run is kept — the standard defence against scheduler noise,
    which on a busy single-core box easily exceeds the effect size.
    """
    repeats = 1 if SMOKE else 3
    per_workload = {}
    totals = {"legacy": [0, 0.0], "new": [0, 0.0]}
    for name, cnf in workloads():
        # Interleave the engines across repeats so slow phases of the
        # host (frequency scaling, steal time) hit both evenly.
        best = {}
        for _ in range(repeats):
            for engine in ("legacy", "new"):
                props, seconds = replay(engine, cnf, seed=99, passes=PASSES)
                if engine not in best:
                    best[engine] = (props, seconds)
                else:
                    assert best[engine][0] == props  # deterministic replay
                    best[engine] = (props, min(best[engine][1], seconds))
        entry = {}
        for engine in ("legacy", "new"):
            props, seconds = best[engine]
            entry[engine] = {
                "propagations": props,
                "seconds": round(seconds, 4),
                "props_per_sec": round(props / seconds, 1),
            }
            totals[engine][0] += props
            totals[engine][1] += seconds
        # Same decision replay => near-identical logical work.  Counts
        # are not bit-identical: on a conflicting pass each engine stops
        # at the point *its* visit order detects the conflict, so a few
        # propagations near conflicts differ.  Anything beyond a few
        # percent would mean the harness is comparing different work.
        legacy_props = entry["legacy"]["propagations"]
        new_props = entry["new"]["propagations"]
        assert abs(legacy_props - new_props) <= 0.05 * legacy_props, (
            name, legacy_props, new_props,
        )
        entry["speedup"] = round(
            entry["new"]["props_per_sec"] / entry["legacy"]["props_per_sec"], 3
        )
        per_workload[name] = entry
    aggregate = {
        engine: round(props / seconds, 1)
        for engine, (props, seconds) in totals.items()
    }
    aggregate["speedup"] = round(aggregate["new"] / aggregate["legacy"], 3)
    return {"workloads": per_workload, "aggregate": aggregate}


def run_labeling_comparison():
    """End-to-end labeling wall-clock: serial vs 4 workers vs cached."""
    cnfs = [
        random_ksat(LABEL_VARS, int(LABEL_VARS * 4.3), seed=500 + i)
        for i in range(LABEL_INSTANCES)
    ]
    start = time.perf_counter()
    serial = label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, workers=4)
    parallel_seconds = time.perf_counter() - start
    assert [c.label for c in serial] == [c.label for c in parallel]

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        runner = ParallelRunner(workers=4, cache_dir=tmp)
        label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, runner=runner)
        cold_executed = runner.last_stats.executed
        runner = ParallelRunner(workers=4, cache_dir=tmp)
        start = time.perf_counter()
        label_instances(cnfs, max_conflicts=LABEL_CONFLICTS, runner=runner)
        cached_seconds = time.perf_counter() - start
        warm_hits = runner.last_stats.cache_hits
        warm_executed = runner.last_stats.executed

    return {
        "instances": LABEL_INSTANCES,
        "max_conflicts": LABEL_CONFLICTS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "workers4_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "cold_executed": cold_executed,
        "warm_cache_hits": warm_hits,
        "warm_executed": warm_executed,
        "warm_seconds": round(cached_seconds, 3),
    }


def run_all():
    """Full benchmark; returns the BENCH_bcp.json payload."""
    bcp = run_bcp_comparison()
    labeling = run_labeling_comparison()
    payload = {
        "smoke": SMOKE,
        "passes": PASSES,
        "bcp": bcp,
        "labeling": labeling,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_bcp_micro():
    """Pytest entry point; asserts the tentpole targets outside smoke."""
    payload = run_all()
    bcp = payload["bcp"]
    labeling = payload["labeling"]
    for name, entry in bcp["workloads"].items():
        assert entry["legacy"]["propagations"] > 0, name
    assert labeling["warm_executed"] == 0
    assert labeling["warm_cache_hits"] == 2 * labeling["instances"]
    if not SMOKE:
        assert bcp["aggregate"]["speedup"] >= 1.5, bcp["aggregate"]
        if (os.cpu_count() or 1) >= 2:
            # Process fan-out can't beat serial on a single core.
            assert labeling["parallel_speedup"] > 1.0, labeling


def main():
    payload = run_all()
    print(json.dumps(payload, indent=2))
    agg = payload["bcp"]["aggregate"]
    print(
        f"\naggregate BCP: {agg['legacy']:,.0f} -> {agg['new']:,.0f} props/s "
        f"({agg['speedup']}x)"
    )
    lab = payload["labeling"]
    print(
        f"labeling {lab['instances']} instances: serial {lab['serial_seconds']}s, "
        f"4 workers {lab['workers4_seconds']}s ({lab['parallel_speedup']}x), "
        f"warm cache {lab['warm_seconds']}s"
    )


if __name__ == "__main__":
    main()
