"""Figure 4 — default vs. frequency-guided clause deletion, head to head.

The paper's scatter shows both policies winning on different instances
(motivating adaptive selection), with most points near the diagonal and
some far from it.  We reproduce the scatter over the test-year suite and
assert that *both* directions occur.
"""

from conftest import SOLVE_BUDGET, save_result

from repro.bench import fig4_policy_scatter


def test_fig4_policy_scatter(benchmark, dataset):
    suite = dataset.all_instances()
    result = benchmark.pedantic(
        fig4_policy_scatter,
        args=(suite,),
        kwargs={"max_propagations": SOLVE_BUDGET},
        rounds=1,
        iterations=1,
    )
    save_result("fig4_policy_scatter", result.render())

    assert len(result.names) == len(suite)
    # Shape of Figure 4: the new policy wins on some instances and loses
    # on others — neither policy dominates.
    assert result.wins > 0, "frequency policy should win somewhere"
    assert result.losses > 0, "default policy should win somewhere"
    # Effort is bounded by the virtual timeout.
    assert all(s <= result.scale.timeout_seconds for s in result.default_seconds)
    assert all(s <= result.scale.timeout_seconds for s in result.frequency_seconds)
