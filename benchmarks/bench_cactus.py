"""Extension — cactus plot (solved count vs. time budget).

The standard SAT-competition presentation, complementing Table 3's
point statistics: how many test instances each solver variant decides
within increasing budgets, with the per-instance-best oracle as the
upper bound.  Shape requirement: the oracle dominates, and the selector
sits between the two fixed policies (or matches the better one).
"""

from conftest import SOLVE_BUDGET, save_result

from repro.bench.experiments import cactus_plot_data


def test_cactus(benchmark, dataset, trained_model):
    result = benchmark.pedantic(
        cactus_plot_data,
        args=(dataset.test, trained_model),
        kwargs={"max_propagations": SOLVE_BUDGET},
        rounds=1,
        iterations=1,
    )
    save_result("cactus", result.render())

    full = result.timeout_seconds
    # The oracle solves at least as many as either fixed policy at the
    # full budget.
    assert result.solved_within("Oracle", full) >= result.solved_within("Kissat", full)
    assert result.solved_within("Oracle", full) >= result.solved_within(
        "Kissat-new", full
    )
    # Monotone curves: more budget never solves fewer.
    for name in result.series:
        counts = [
            result.solved_within(name, full * f)
            for f in (0.1, 0.25, 0.5, 1.0)
        ]
        assert counts == sorted(counts)
    # The selector never falls below the worse fixed policy at full budget.
    worst_fixed = min(
        result.solved_within("Kissat", full),
        result.solved_within("Kissat-new", full),
    )
    assert result.solved_within("NeuroSelect-Kissat", full) >= worst_fixed
