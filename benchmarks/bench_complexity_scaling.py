"""Sec. 4.3 — linear complexity of NeuroSelect inference.

The paper argues a full HGT forward pass costs O(|E| + |V1|): message
passing touches each edge once and linear attention is linear in the
number of variable nodes (no N x N matrix).  We time single inferences
across a geometric size sweep and assert near-linear growth: the fitted
log-log slope of time vs. (|E| + |V1|) must stay well below 2 (the
slope a quadratic-attention model would show).
"""

import time

import numpy as np

from conftest import save_result

from repro.bench.tables import format_dict_table
from repro.cnf import random_ksat
from repro.graph import BipartiteGraph
from repro.models import NeuroSelect

SIZES = [200, 400, 800, 1600, 3200]


def measure_scaling():
    model = NeuroSelect(hidden_dim=16, seed=0)
    rows = []
    for n in SIZES:
        cnf = random_ksat(n, int(4.2 * n), seed=1)
        graph = BipartiteGraph(cnf)
        model.predict_proba(graph)  # warm-up (allocator, caches)
        start = time.perf_counter()
        repeats = 3
        for _ in range(repeats):
            model.predict_proba(graph)
        elapsed = (time.perf_counter() - start) / repeats
        rows.append(
            {
                "variables": n,
                "edges+vars": graph.num_edges + graph.num_vars,
                "inference (ms)": round(1000 * elapsed, 2),
            }
        )
    return rows


def test_complexity_scaling(benchmark):
    rows = benchmark.pedantic(measure_scaling, rounds=1, iterations=1)

    sizes = np.array([r["edges+vars"] for r in rows], dtype=float)
    times = np.array([r["inference (ms)"] for r in rows], dtype=float)
    slope = np.polyfit(np.log(sizes), np.log(np.maximum(times, 1e-6)), 1)[0]

    text = format_dict_table(rows) + f"\nlog-log slope: {slope:.2f} (1.0 = linear)"
    save_result("complexity_scaling", text)

    # Paper claim: linear in |E| + |V1|.  Allow constant-factor noise at
    # the small end but reject anything resembling quadratic scaling.
    assert slope < 1.5, f"inference should scale ~linearly, got slope {slope:.2f}"
    # 16x more graph must not cost 100x more time.
    assert times[-1] < 120 * max(times[0], 1e-3)
