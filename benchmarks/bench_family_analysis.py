"""Extension — per-family policy preference.

Figure 4's discussion attributes the instance-dependence of deletion
policies to instance *structure*.  This bench breaks the head-to-head
comparison down by generator family, showing which structures favour
the propagation-frequency policy (the analysis a practitioner would run
before trusting a learned selector).
"""

from collections import defaultdict

from conftest import SOLVE_BUDGET, save_result

from repro.bench import fig4_policy_scatter
from repro.bench.tables import format_dict_table


def test_family_analysis(benchmark, dataset):
    instances = dataset.all_instances()
    result = benchmark.pedantic(
        fig4_policy_scatter,
        args=(instances,),
        kwargs={"max_propagations": SOLVE_BUDGET},
        rounds=1,
        iterations=1,
    )

    per_family = defaultdict(lambda: {"wins": 0, "losses": 0, "ties": 0, "n": 0})
    for inst, d, f in zip(
        instances, result.default_seconds, result.frequency_seconds
    ):
        bucket = per_family[inst.family]
        bucket["n"] += 1
        if f < d:
            bucket["wins"] += 1
        elif f > d:
            bucket["losses"] += 1
        else:
            bucket["ties"] += 1

    rows = [
        {
            "family": family,
            "instances": stats["n"],
            "frequency wins": stats["wins"],
            "losses": stats["losses"],
            "ties": stats["ties"],
        }
        for family, stats in sorted(per_family.items())
    ]
    save_result("family_analysis", format_dict_table(rows))

    assert sum(r["instances"] for r in rows) == len(instances)
    # The aggregate must match the Figure 4 summary.
    assert sum(r["frequency wins"] for r in rows) == result.wins
    assert sum(r["losses"] for r in rows) == result.losses
    # At least one family must diverge at all (ties < n somewhere).
    assert any(r["ties"] < r["instances"] for r in rows)
