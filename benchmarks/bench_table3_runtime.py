"""Table 3 — runtime statistics of Kissat vs. NeuroSelect-Kissat.

Paper numbers: both solve 274/400 instances; NeuroSelect-Kissat cuts the
median from 307.02 s to 271.34 s (5.8%) and the mean from 713.28 s to
671.73 s.  Reproduced shape: equal-or-better solved count and an
equal-or-better median/mean for the selector, with the oracle
(per-instance best policy) bounding how much any selector could gain.
"""

from conftest import SOLVE_BUDGET, save_result

from repro.bench import fig7_table3_end_to_end, oracle_end_to_end
from repro.bench.tables import format_dict_table


def test_table3_runtime(benchmark, dataset, trained_model):
    result = benchmark.pedantic(
        fig7_table3_end_to_end,
        args=(dataset.test, trained_model),
        kwargs={"max_propagations": SOLVE_BUDGET},
        rounds=1,
        iterations=1,
    )
    oracle = oracle_end_to_end(dataset.test, max_propagations=SOLVE_BUDGET)
    text = (
        result.render_table3()
        + "\n"
        + format_dict_table([oracle.as_row()])
    )
    save_result("table3_runtime", text)

    kissat = result.kissat_stats
    neuro = result.neuroselect_stats
    assert kissat.total == neuro.total == len(dataset.test)

    # Shape of Table 3: the selector keeps the solved count and does not
    # lose on aggregate runtime; the oracle bounds it from below.
    assert neuro.solved >= kissat.solved
    assert neuro.median_seconds <= kissat.median_seconds * 1.05
    assert oracle.median_seconds <= neuro.median_seconds + 1e-9
    assert oracle.solved >= kissat.solved
