"""Table 1 — statistics of the training and test datasets.

The paper's table lists, per competition year, the number of CNFs and
the mean variable/clause counts after the 400k-node filter.  We
reproduce the same columns over the synthetic year-keyed dataset and
assert the structural properties: six training years plus the held-out
2022 test year, with instance sizes in a consistent band.
"""

from conftest import save_result

from repro.bench import table1_dataset_statistics
from repro.selection import dataset_statistics


def test_table1_dataset_statistics(benchmark, dataset):
    text = benchmark.pedantic(
        table1_dataset_statistics, args=(dataset,), rounds=1, iterations=1
    )
    balance = dataset.label_balance()
    text += (
        f"\nlabel balance: train {100 * balance['train']:.1f}% "
        f"test {100 * balance['test']:.1f}% positive (label 1 = frequency policy wins)"
    )
    save_result("table1_dataset_stats", text)

    rows = dataset_statistics(dataset)
    years = {(r.split, r.year) for r in rows}
    assert ("Test", 2022) in years
    assert sum(1 for split, _ in years if split == "Training") == 6
    for row in rows:
        assert row.num_cnfs > 0
        assert row.mean_variables > 0
        # Clause/variable ratio sanity (CNFs are non-trivial).
        assert row.mean_clauses > row.mean_variables
