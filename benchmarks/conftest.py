"""Shared session fixtures for the benchmark suite.

The expensive artifacts — the labelled dataset and the trained selector —
are built once per pytest session and shared by every bench.  Scale knobs
come from environment variables so the same files serve quick CI runs and
full paper-scale reproductions:

    REPRO_BENCH_PER_YEAR    instances per competition "year"   (default 8)
    REPRO_BENCH_LABEL_BUDGET  conflict budget per labelling run (default 8000)
    REPRO_BENCH_EPOCHS      training epochs                     (default 30)
    REPRO_BENCH_SOLVE_BUDGET  propagation budget = 5000 s role  (default 300000)

Every bench writes its paper-style rendering to benchmarks/results/ so
the numbers survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.models import NeuroSelect
from repro.selection import Trainer, build_dataset

PER_YEAR = int(os.environ.get("REPRO_BENCH_PER_YEAR", "12"))
LABEL_BUDGET = int(os.environ.get("REPRO_BENCH_LABEL_BUDGET", "8000"))
EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "40"))
SOLVE_BUDGET = int(os.environ.get("REPRO_BENCH_SOLVE_BUDGET", "300000"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def dataset():
    """The labelled train/test dataset (Table 1's analogue)."""
    return build_dataset(instances_per_year=PER_YEAR, max_conflicts=LABEL_BUDGET)


@pytest.fixture(scope="session")
def trained_model(dataset):
    """A NeuroSelect classifier trained on the training years.

    After fitting, the decision threshold is re-calibrated in
    cost-sensitive ("effort") mode on the training split: the end-to-end
    experiments care about propagations saved, not F1.
    """
    model = NeuroSelect(hidden_dim=16, seed=0)
    trainer = Trainer(model, learning_rate=3e-3, epochs=EPOCHS)
    trainer.fit(dataset.train)
    trainer.calibrate_threshold(dataset.train, mode="effort")
    return model


def save_result(name: str, text: str) -> None:
    """Persist a bench's rendered output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    # Also echo for -s runs.
    print(f"\n=== {name} ===\n{text}")
