"""Ablation — symmetry-based data augmentation of the training split.

The dataset is small by paper standards (hundreds of labelled instances
cost two solver runs each); CNF symmetries offer free extra training
data.  This bench trains the same model with and without one round of
augmentation and reports both test accuracies.  Assertions check only
sanity — at reproduction scale the effect is noisy and is reported,
not asserted.
"""

from conftest import save_result

from repro.bench.tables import format_dict_table
from repro.models import NeuroSelect
from repro.selection import Trainer, augment_dataset

EPOCHS = 15


def sweep_augmentation(dataset):
    rows = []
    for name, copies in (("no augmentation", 0), ("1x augmentation", 1)):
        train = augment_dataset(dataset.train, copies=copies, base_seed=7)
        model = NeuroSelect(hidden_dim=16, seed=0)
        trainer = Trainer(model, learning_rate=3e-3, epochs=EPOCHS)
        trainer.fit(train)
        metrics = trainer.evaluate(dataset.test)
        rows.append(
            {
                "variant": name,
                "train instances": len(train),
                "test accuracy": f"{100 * metrics.accuracy:.2f}%",
                "test F1": f"{100 * metrics.f1:.2f}%",
            }
        )
    return rows


def test_ablation_augmentation(benchmark, dataset):
    rows = benchmark.pedantic(
        sweep_augmentation, args=(dataset,), rounds=1, iterations=1
    )
    save_result("ablation_augmentation", format_dict_table(rows))

    assert len(rows) == 2
    assert rows[1]["train instances"] == 2 * rows[0]["train instances"]
    for row in rows:
        assert 0.0 <= float(row["test accuracy"].rstrip("%")) <= 100.0
