"""Ablation — clause-deletion scheduling sensitivity.

DESIGN.md scales Kissat's reduce interval down to our instance sizes;
this sweep justifies the choice: no deletion at all wastes effort on
large clause databases, over-aggressive deletion throws away useful
clauses, and the middle of the range is robust.  Also checks the
deleted-fraction knob at the chosen interval.
"""

from conftest import save_result

from repro.bench.tables import format_dict_table
from repro.policies import DefaultPolicy
from repro.selection.dataset import _instance_pool
from repro.solver import Solver, SolverConfig

BUDGET = 150_000


def run_config(suite, **kwargs):
    total = 0
    solved = 0
    deleted = 0
    for cnf in suite:
        result = Solver(
            cnf, policy=DefaultPolicy(), config=SolverConfig(**kwargs)
        ).solve(max_propagations=BUDGET)
        total += result.stats.propagations
        solved += result.status.value != "UNKNOWN"
        deleted += result.stats.deleted_clauses
    return total, solved, deleted


def sweep_reduce():
    suite = [cnf for _, cnf in _instance_pool(2022, 6, 1.0)]
    rows = []
    for interval in (25, 75, 300, 10**9):
        label = "never" if interval >= 10**9 else str(interval)
        total, solved, deleted = run_config(
            suite, reduce_interval=interval, reduce_interval_growth=interval // 3 or 1
        )
        rows.append(
            {
                "reduce interval": label,
                "fraction": 0.5,
                "solved": solved,
                "deleted clauses": deleted,
                "total propagations": total,
            }
        )
    for fraction in (0.25, 0.75, 1.0):
        total, solved, deleted = run_config(
            suite,
            reduce_interval=75,
            reduce_interval_growth=30,
            reduce_fraction=fraction,
        )
        rows.append(
            {
                "reduce interval": "75",
                "fraction": fraction,
                "solved": solved,
                "deleted clauses": deleted,
                "total propagations": total,
            }
        )
    return rows


def test_ablation_reduce(benchmark):
    rows = benchmark.pedantic(sweep_reduce, rounds=1, iterations=1)
    save_result("ablation_reduce", format_dict_table(rows))

    assert len(rows) == 7
    never = next(r for r in rows if r["reduce interval"] == "never")
    assert never["deleted clauses"] == 0
    active = [r for r in rows if r["reduce interval"] != "never"]
    assert all(r["deleted clauses"] > 0 for r in active)
    # Deletion must be sound: solved counts never collapse to zero.
    assert all(r["solved"] > 0 for r in rows)
