"""Table 2 — SAT classification model comparison.

The paper compares NeuroSAT, G4SATBench's GIN, NeuroSelect without the
attention block, and full NeuroSelect on precision / recall / F1 /
accuracy over the test year.  Reproduced shape: NeuroSelect is the best
model overall, and removing its attention block does not improve it —
matching the paper's ranking (69.44% > 63.89% > baselines).
"""

from conftest import EPOCHS, save_result

from repro.bench import default_table2_models, table2_classification


def test_table2_classification(benchmark, dataset):
    models = default_table2_models(hidden_dim=16, seed=0)
    result = benchmark.pedantic(
        table2_classification,
        args=(dataset,),
        kwargs={"models": models, "epochs": EPOCHS},
        rounds=1,
        iterations=1,
    )
    save_result("table2_classification", result.render())

    accuracy = {row["model"]: result.accuracy_of(row["model"]) for row in result.rows}
    assert set(accuracy) == set(models)
    # Shape of Table 2: full NeuroSelect is the top model.  At
    # reproduction scale (a dozen test instances) one instance of slack
    # is allowed — a single lucky/unlucky flip must not decide the rank.
    slack = 100.0 / len(dataset.test) + 1e-9
    best = max(accuracy.values())
    assert accuracy["NeuroSelect"] >= accuracy["NeuroSAT"] - slack
    assert accuracy["NeuroSelect"] >= accuracy["G4SATBench (GIN)"] - slack
    assert accuracy["NeuroSelect"] >= best - slack
    # Everything within [0, 100].
    assert all(0.0 <= a <= 100.0 for a in accuracy.values())
