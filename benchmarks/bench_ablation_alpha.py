"""Ablation — the alpha threshold of Eq. (2).

The paper sets alpha = 4/5 "according to our empirical studies".  This
sweep solves a fixed suite under the frequency policy at several alpha
values and reports total effort, reproducing the kind of study behind
that choice.  alpha=0 counts every variable (frequency ~ clause size);
alpha=1 counts none (policy degenerates to the default ordering).
"""

from conftest import save_result

from repro.bench.tables import format_dict_table
from repro.policies import FrequencyPolicy
from repro.selection.dataset import _instance_pool
from repro.selection.labeling import default_labeling_config
from repro.solver import Solver

ALPHAS = [0.0, 0.2, 0.5, 0.8, 0.95, 1.0]
BUDGET = 150_000


def sweep_alpha():
    suite = [cnf for _, cnf in _instance_pool(2022, 6, 1.0)]
    rows = []
    for alpha in ALPHAS:
        total = 0
        solved = 0
        for cnf in suite:
            result = Solver(
                cnf,
                policy=FrequencyPolicy(alpha=alpha),
                config=default_labeling_config(),
            ).solve(max_propagations=BUDGET)
            total += result.stats.propagations
            solved += result.status.value != "UNKNOWN"
        rows.append(
            {"alpha": alpha, "solved": solved, "total propagations": total}
        )
    return rows


def test_ablation_alpha(benchmark):
    rows = benchmark.pedantic(sweep_alpha, rounds=1, iterations=1)
    text = format_dict_table(rows) + "\npaper's choice: alpha = 4/5"
    save_result("ablation_alpha", text)

    assert len(rows) == len(ALPHAS)
    assert all(r["total propagations"] > 0 for r in rows)
    # alpha=1.0 counts no variable as hot -> ties everywhere -> identical
    # ordering to a frequency-0 run; the sweep must remain finite and the
    # paper's alpha=0.8 must be at least competitive with the extremes.
    efforts = {r["alpha"]: r["total propagations"] for r in rows}
    assert efforts[0.8] <= 1.5 * min(efforts.values())
