"""Figure 7 — NeuroSelect-Kissat vs. Kissat, and inference-cost boxplots.

7(a): per-instance runtime scatter of NeuroSelect-Kissat against stock
Kissat on the test year.  7(b): distributions of model inference time
(0.01-2.22 s in the paper — negligible) and of per-instance runtime
improvement.  Reproduced shape: inference cost is orders of magnitude
below solve cost, and the selector never loses an instance that stock
Kissat solves.
"""

import statistics

from conftest import SOLVE_BUDGET, save_result

from repro.bench import fig7_table3_end_to_end


def test_fig7_neuroselect(benchmark, dataset, trained_model):
    result = benchmark.pedantic(
        fig7_table3_end_to_end,
        args=(dataset.test, trained_model),
        kwargs={"max_propagations": SOLVE_BUDGET},
        rounds=1,
        iterations=1,
    )
    save_result("fig7_neuroselect", result.render_fig7())

    # Inference is a one-time, CPU-cheap cost (paper: 0.01 - 2.22 s real
    # seconds; here: well under a second of wall clock per instance).
    assert all(0.0 <= t < 5.0 for t in result.inference_seconds)
    mean_solve = statistics.fmean(result.kissat_seconds)
    assert statistics.fmean(result.inference_seconds) < mean_solve

    # The selector solves at least as many instances as stock Kissat.
    assert result.neuroselect_stats.solved >= result.kissat_stats.solved
