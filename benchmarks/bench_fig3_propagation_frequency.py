"""Figure 3 — distribution of variable propagation frequency.

The paper solves one SAT-competition instance and plots per-variable
propagation frequency, showing a heavily skewed distribution: a few
variables trigger most propagations.  We reproduce the distribution on a
structured instance and assert the skew (Gini, top-decile share), which
is the property motivating the new deletion metric.
"""

from repro.bench import fig3_propagation_frequency
from repro.cnf import community_sat

from conftest import save_result


def run_fig3():
    cnf = community_sat(3, 120, 500, seed=2)
    return fig3_propagation_frequency(cnf, max_conflicts=6000)


def test_fig3_propagation_frequency(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_result("fig3_propagation_frequency", result.render())

    # Shape assertions: the distribution must be skewed, as in Figure 3.
    assert result.total_propagations > 10_000
    assert result.gini > 0.2, "propagation frequency should be unevenly distributed"
    assert result.top_decile_share > 0.15, (
        "the hottest 10% of variables should carry a disproportionate share"
    )
    # And heavy-tailed: the hottest variable is well above the mean.
    mean = result.total_propagations / len(result.frequencies)
    assert result.max_frequency > 1.5 * mean
