"""Ablation — NeuroSelect capacity and architecture knobs.

DESIGN.md's model follows the paper's Sec. 5.2 configuration (hidden 32,
2 HGT layers, mean readout).  This sweep varies one knob at a time at a
reduced training budget, reporting test accuracy per variant — the kind
of study behind the paper's defaults.  Assertions only require sanity
(all variants train and stay within bounds); at reproduction scale the
capacity differences are below the noise floor and are reported, not
asserted.
"""

from conftest import save_result

from repro.bench.tables import format_dict_table
from repro.models import NeuroSelect
from repro.selection import Trainer

VARIANTS = [
    ("hidden=8", dict(hidden_dim=8)),
    ("hidden=16 (bench default)", dict(hidden_dim=16)),
    ("hgt-layers=1", dict(hidden_dim=16, num_hgt_layers=1)),
    ("mpnn-per-hgt=1", dict(hidden_dim=16, mpnn_layers_per_hgt=1)),
    ("readout=max", dict(hidden_dim=16, readout="max")),
]

EPOCHS = 15


def sweep_variants(dataset):
    rows = []
    for name, kwargs in VARIANTS:
        model = NeuroSelect(seed=0, **kwargs)
        trainer = Trainer(model, learning_rate=3e-3, epochs=EPOCHS)
        history = trainer.fit(dataset.train)
        metrics = trainer.evaluate(dataset.test)
        rows.append(
            {
                "variant": name,
                "parameters": model.num_parameters(),
                "final train loss": round(history.final_loss, 4),
                "test accuracy": f"{100 * metrics.accuracy:.2f}%",
            }
        )
    return rows


def test_ablation_model(benchmark, dataset):
    rows = benchmark.pedantic(sweep_variants, args=(dataset,), rounds=1, iterations=1)
    save_result("ablation_model", format_dict_table(rows))

    assert len(rows) == len(VARIANTS)
    # Larger hidden width means more parameters, monotonically.
    params = {r["variant"]: r["parameters"] for r in rows}
    assert params["hidden=8"] < params["hidden=16 (bench default)"]
    assert params["hgt-layers=1"] < params["hidden=16 (bench default)"]
    # Every variant actually optimized (finite loss) and evaluated.
    assert all(r["final train loss"] == r["final train loss"] for r in rows)
    assert all(0.0 <= float(r["test accuracy"].rstrip("%")) <= 100.0 for r in rows)
