"""Ablation — position of the frequency field in the packed score.

Figure 5 places the new frequency criterion *below* glue and size (a
tie-breaker).  The natural alternative reading promotes it to the most
significant field.  This sweep compares: default (no frequency), the
paper's layout, and frequency-first, reporting solved count and effort.
Expected shape: the paper's tie-breaker layout stays close to the
default (it only reorders within glue/size ties), while frequency-first
is a much more aggressive — and usually worse — departure.
"""

from conftest import save_result

from repro.bench.tables import format_dict_table
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.policies.score import FREQUENCY_FIRST_LAYOUT, FREQUENCY_LAYOUT
from repro.selection.dataset import _instance_pool
from repro.selection.labeling import default_labeling_config
from repro.solver import Solver

BUDGET = 150_000

VARIANTS = [
    ("default (no frequency)", lambda: DefaultPolicy()),
    ("paper layout (glue,size,freq)", lambda: FrequencyPolicy(layout=FREQUENCY_LAYOUT)),
    ("frequency-first", lambda: FrequencyPolicy(layout=FREQUENCY_FIRST_LAYOUT)),
]


def sweep_layouts():
    suite = [cnf for _, cnf in _instance_pool(2022, 6, 1.0)]
    rows = []
    for name, factory in VARIANTS:
        total = 0
        solved = 0
        for cnf in suite:
            result = Solver(
                cnf, policy=factory(), config=default_labeling_config()
            ).solve(max_propagations=BUDGET)
            total += result.stats.propagations
            solved += result.status.value != "UNKNOWN"
        rows.append({"variant": name, "solved": solved, "total propagations": total})
    return rows


def test_ablation_score_layout(benchmark):
    rows = benchmark.pedantic(sweep_layouts, rounds=1, iterations=1)
    save_result("ablation_score_layout", format_dict_table(rows))

    by_name = {r["variant"]: r for r in rows}
    assert len(by_name) == 3
    # The paper's layout must stay within a reasonable factor of the best
    # variant (it is a tie-breaker, not a rewrite of the policy).
    efforts = {k: v["total propagations"] for k, v in by_name.items()}
    paper = efforts["paper layout (glue,size,freq)"]
    assert paper <= 2.0 * min(efforts.values())
