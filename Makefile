# Developer entry points for the NeuroSelect reproduction.

PYTHON ?= python

.PHONY: install test bench bench-bcp bench-bcp-smoke report trace-report quick-bench fuzz-smoke serve-smoke session-smoke chaos-smoke store-smoke trend-check examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Rewrite BENCH_bcp.json with the full three-way (legacy/object/arena)
# BCP comparison.  Run on a quiet machine; the committed aggregate is
# the baseline the CI smoke job guards against.
bench-bcp:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_bcp_micro.py

# Fast arena-path check against the committed baseline (the CI gate):
# fails if the arena-vs-object speedup ratio regresses >10%.
bench-bcp-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_bcp_micro.py --smoke --check-regression

# Smaller, faster benchmark settings for smoke runs.
quick-bench:
	REPRO_BENCH_PER_YEAR=3 REPRO_BENCH_LABEL_BUDGET=2000 \
	REPRO_BENCH_EPOCHS=8 REPRO_BENCH_SOLVE_BUDGET=100000 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Small deterministic differential-fuzzing campaign; mirrors the CI
# fuzz-smoke job.  Shrunk repros land in $(FUZZ_CORPUS).
FUZZ_SEEDS ?= 60
FUZZ_CORPUS ?= fuzz-corpus
fuzz-smoke:
	$(PYTHON) -m repro fuzz --seeds $(FUZZ_SEEDS) --budget 2000 \
		--workers 2 --shrink --corpus $(FUZZ_CORPUS) \
		--trace $(FUZZ_CORPUS)/traces

# Solve-service smoke: start `repro serve`, fire a concurrent burst,
# assert answers match direct solves and the serve.batch_size metric
# proves amortized inference.  Mirrors the CI service-smoke job.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Incremental-session smoke: a seeded 200-step add/assume fuzz schedule
# on both engine cores (warm answers bit-identical to fresh re-solves,
# failed cores consistent) plus a 50-delta family through one
# drift-gated selector session, with the forward-passes < instances
# amortization claim read from session-select trace events.  Mirrors
# the CI session-smoke job.
session-smoke:
	$(PYTHON) scripts/session_smoke.py

# Chaos smoke: run the seeded CI storm (inference crash + breaker trip
# and recovery + worker kill + journal write failure + mid-scenario
# restart) against a live service, twice, and demand identical outcome
# fingerprints.  Mirrors the CI chaos-smoke job.
CHAOS_SCENARIO ?= mixed
CHAOS_TRACE ?= chaos-traces
chaos-smoke:
	$(PYTHON) -m repro chaos --scenario $(CHAOS_SCENARIO) \
		--check-determinism --trace $(CHAOS_TRACE)

# Run-store smoke: traced solve + dataset auto-ingest into the run
# store, `repro query` round trip, and the trend gate tripping on a
# degraded bench result.  Mirrors the CI store-query-smoke job.
store-smoke:
	$(PYTHON) scripts/store_smoke.py

# Cross-commit bench trend gate: ingest the committed baseline plus
# the latest smoke result and fail on a >10% aggregate regression.
# Run `make bench-bcp-smoke` first to produce BENCH_bcp_smoke.json.
TREND_STORE ?= /tmp/repro-trend.sqlite
trend-check:
	$(PYTHON) -m repro trend BENCH_bcp.json BENCH_bcp_smoke.json \
		--store $(TREND_STORE) --check-regression

report:
	$(PYTHON) -m repro.bench.reporting

# Validate and render the observability traces under TRACE_DIR (the
# directory passed to `--trace` / $REPRO_TRACE_DIR).
TRACE_DIR ?= out
trace-report:
	$(PYTHON) -m repro report --validate $(TRACE_DIR)/*.jsonl

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
