"""Unified observability: metrics, structured traces, spans, manifests.

The paper's method is *telemetry-driven* — propagation frequencies
label the training data (Sec. 5.1) and propagation deltas decide the
policy comparison (Table 3) — so the reproduction carries a first-class
observability layer:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms (BCP batch sizes, learned-clause glue, task
  latency); allocation-free per observation, near-zero cost disabled;
* :class:`~repro.obs.trace.TraceSink` — buffered JSONL event stream
  (``restart``, ``reduce``, ``task-finish``, ``epoch-end``, ...) with
  monotonic timestamps and per-run IDs, torn-final-line tolerant on
  read;
* :class:`~repro.obs.observer.Observer` — the façade instrumented code
  talks to: ``observer.event(...)``, ``with observer.span("reduce")``,
  ``observer.counter(...)``.  The shared
  :data:`~repro.obs.observer.NULL_OBSERVER` is the disabled default,
  keeping the un-traced solve path at baseline cost;
* :class:`~repro.obs.manifest.RunManifest` / ``start_run`` — the
  reproducibility record (config, seeds, git describe, env) written
  beside every traced run;
* :mod:`repro.obs.report` — ``repro report <trace.jsonl>`` rendering:
  per-phase time breakdowns, event counts, latency percentiles,
  failure taxonomy, and policy comparisons.

Everything is opt-in: without ``--trace`` (or ``REPRO_TRACE_DIR``) the
solver, runner, and trainer see only the null observer.
"""

from repro.obs.metrics import (
    BATCH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SMALL_COUNT_BUCKETS,
    TIME_BUCKETS,
    render_prometheus,
)
from repro.obs.observer import NULL_OBSERVER, Observer, Span
from repro.obs.trace import (
    EVENT_TYPES,
    TRACE_FORMAT_VERSION,
    TraceRead,
    TraceSink,
    new_run_id,
    read_trace,
    validate_event,
)
from repro.obs.manifest import (
    RunManifest,
    collect_manifest,
    git_describe,
    start_run,
)
from repro.obs.report import render_report, summarize_traces, validate_traces

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "EVENT_TYPES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "RunManifest",
    "SMALL_COUNT_BUCKETS",
    "Span",
    "TIME_BUCKETS",
    "TRACE_FORMAT_VERSION",
    "TraceRead",
    "TraceSink",
    "collect_manifest",
    "git_describe",
    "new_run_id",
    "read_trace",
    "render_prometheus",
    "render_report",
    "start_run",
    "summarize_traces",
    "validate_event",
    "validate_traces",
]
