"""The :class:`Observer` façade: one handle for events, spans, metrics.

Instrumented code (solver, parallel runner, trainer, bench suites)
takes an optional ``observer`` and talks only to this object:

* ``observer.event("restart", conflicts=n)`` — one structured trace
  line, dropped silently when no sink is attached;
* ``with observer.span("reduce", emit=True):`` — wall-clock timing that
  lands in the ``span.<name>.seconds`` histogram, the observer's
  in-memory per-phase totals, and (with ``emit``) a ``span`` trace
  event.  Coarse phases emit; per-iteration phases aggregate only, so
  traces stay compact;
* ``observer.registry`` — the :class:`~repro.obs.metrics.MetricsRegistry`
  for counters/gauges/histograms.

The module-level :data:`NULL_OBSERVER` is the disabled default: no
sink, disabled registry, and ``span`` returns a shared no-op context
manager.  Components keep a reference to it instead of ``None`` so call
sites need no branching — but genuinely hot paths should still check
:attr:`Observer.enabled` once at setup and skip instrumentation
entirely, which is what keeps the disabled solve path at baseline cost.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.trace import TraceSink, new_run_id


class _NullSpan:
    """Shared no-op context manager returned by disabled observers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One timed phase; records on exit (see :meth:`Observer.span`)."""

    __slots__ = ("observer", "name", "emit", "fields", "start")

    def __init__(
        self,
        observer: "Observer",
        name: str,
        emit: bool,
        fields: Optional[Dict[str, Any]],
    ):
        self.observer = observer
        self.name = name
        self.emit = emit
        self.fields = fields
        self.start = 0.0

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        seconds = time.perf_counter() - self.start
        self.observer._record_span(self.name, seconds, self.emit, self.fields)


class Observer:
    """Bundles a trace sink and a metrics registry for one run."""

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        registry: Optional[MetricsRegistry] = None,
        run_id: Optional[str] = None,
    ):
        self.sink = sink
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        if run_id is not None:
            self.run_id = run_id
        elif sink is not None:
            self.run_id = sink.run_id
        else:
            self.run_id = new_run_id()
        #: In-memory per-phase aggregates: name -> [count, total_seconds].
        self._spans: Dict[str, List[float]] = {}
        #: Set by ``start_run``: the sibling manifest file for this run.
        self.manifest_path = None
        #: Set by ``start_run`` when a run store is configured; consumed
        #: (and cleared) by :meth:`finish`, which ingests the trace.
        self.store_path = None

    @property
    def tracing(self) -> bool:
        """True when events are being written to a sink."""
        return self.sink is not None

    @property
    def enabled(self) -> bool:
        """True when any instrumentation (events or metrics) is live."""
        return self.sink is not None or self.registry.enabled

    # -- events -----------------------------------------------------------

    def event(self, event: str, **fields: Any) -> None:
        """Emit one structured trace event (no-op without a sink)."""
        if self.sink is not None:
            self.sink.emit(event, fields)

    # -- spans ------------------------------------------------------------

    def span(self, name: str, emit: bool = False, **fields: Any):
        """Context manager timing one phase.

        Durations always feed the in-memory phase totals and (when
        metrics are enabled) the ``span.<name>.seconds`` histogram;
        ``emit=True`` additionally writes a ``span`` trace event —
        reserve it for coarse, infrequent phases.
        """
        if self.sink is None and not self.registry.enabled:
            return _NULL_SPAN
        return Span(self, name, emit, fields or None)

    def _record_span(
        self,
        name: str,
        seconds: float,
        emit: bool,
        fields: Optional[Dict[str, Any]],
    ) -> None:
        entry = self._spans.get(name)
        if entry is None:
            entry = self._spans[name] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds
        if self.registry.enabled:
            self.registry.histogram(
                f"span.{name}.seconds", TIME_BUCKETS
            ).observe(seconds)
        if emit and self.sink is not None:
            record: Dict[str, Any] = {
                "name": name,
                "seconds": round(seconds, 6),
            }
            if fields:
                record.update(fields)
            self.sink.emit("span", record)

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals so far: ``{name: {count, seconds}}``."""
        return {
            name: {"count": int(count), "seconds": round(total, 6)}
            for name, (count, total) in sorted(self._spans.items())
        }

    # -- metrics delegates ------------------------------------------------

    def counter(self, name: str):
        """Shorthand for ``observer.registry.counter(name)``."""
        return self.registry.counter(name)

    def gauge(self, name: str):
        """Shorthand for ``observer.registry.gauge(name)``."""
        return self.registry.gauge(name)

    def histogram(self, name: str, bounds=None):
        """Shorthand for ``observer.registry.histogram(name, bounds)``."""
        return self.registry.histogram(name, bounds)

    # -- lifecycle --------------------------------------------------------

    def finish(self, **fields: Any) -> None:
        """Emit ``run-end`` (phases + metrics snapshot), close the sink,
        and — when ``start_run`` attached a run store — ingest the
        finished trace so the run is immediately queryable."""
        if self.sink is not None:
            self.sink.emit("run-end", {
                "phases": self.span_summary(),
                "metrics": self.registry.snapshot(),
                **fields,
            })
        self.close()
        self._auto_ingest()

    def _auto_ingest(self) -> None:
        """Best-effort store ingest of this run's trace (idempotent)."""
        store_path, self.store_path = self.store_path, None
        if store_path is None or self.sink is None:
            return
        try:
            from repro.store import RunStore

            with RunStore(store_path) as store:
                store.ingest_trace(
                    self.sink.path, manifest_path=self.manifest_path
                )
        except Exception as exc:  # the store must never take a run down
            import sys

            print(
                f"warning: run-store ingest failed ({exc})",
                file=sys.stderr,
            )

    def flush(self) -> None:
        """Flush buffered trace lines to disk."""
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        """Flush and close the sink (idempotent; keeps the registry)."""
        if self.sink is not None:
            self.sink.close()


#: The disabled observer every component defaults to.  Shared and
#: stateless-by-convention: never attach a sink to it.
NULL_OBSERVER = Observer()
