"""Trace analysis: turn ``.jsonl`` run traces into human-readable reports.

``repro report <trace.jsonl> ...`` renders, per the ISSUE's contract:

* **per-phase time breakdown** — from each run's ``run-end`` phase
  totals (falling back to aggregating ``span`` events for truncated
  traces);
* **event counts** — restarts, reductions (with clauses deleted),
  rephases, simplify passes, and the rest of the event taxonomy;
* **task latency** — exact percentiles over ``task-finish`` wall-clock
  (the supervisor measures failed attempts too, so timeouts show their
  real cost);
* **failure taxonomy** — TIMEOUT / ERROR / MEMOUT counts plus retry
  volume;
* **policy comparison** — per-policy effort aggregates, with the
  propagation delta when exactly two policies appear (the Table 3
  shape);
* **metric histograms** — registry snapshots embedded in ``run-end``
  (BCP batch sizes, learned-clause glue, span durations);
* **service summary** — for ``repro serve`` traces: inference
  batch-size histogram with flush-trigger counts (the amortization
  evidence: forward passes vs requests), admission tallies, queue-wait
  and request-wall percentiles, and response status counts;
* **resilience summary** — degraded responses, rejections by reason
  (queue-full vs deadline sheds), deadline misses, breaker transitions,
  tolerated journal-write errors, and — for ``repro chaos`` traces —
  injected faults by injection point and per-scenario verdicts.

Everything works from the files alone — no live process, no pickle —
so traces from remote sweeps can be analysed anywhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.trace import read_trace


def _percentile(values: List[float], q: float) -> float:
    """Exact nearest-rank percentile of a non-empty sorted list."""
    if not values:
        return 0.0
    rank = max(0, min(len(values) - 1, int(round(q * (len(values) - 1)))))
    return values[rank]


def summarize_traces(
    paths: Sequence[Union[str, Path]]
) -> Dict[str, Any]:
    """Aggregate one or more trace files into a JSON-able summary."""
    runs: List[Dict[str, Any]] = []
    errors: List[str] = []
    event_counts: Dict[str, int] = {}
    phases: Dict[str, Dict[str, float]] = {}
    deleted_clauses = 0
    simplify_removed = 0
    task_wall: List[float] = []
    cached_tasks = 0
    resumed_tasks = 0
    retries = 0
    failures: Dict[str, int] = {}
    by_policy: Dict[str, Dict[str, float]] = {}
    metrics_by_run: Dict[str, Dict[str, Any]] = {}
    solves: List[Dict[str, Any]] = []
    serve_admitted = 0
    serve_rejected = 0
    serve_batches: List[int] = []
    serve_triggers: Dict[str, int] = {}
    serve_inference_seconds = 0.0
    serve_waits: List[float] = []
    serve_walls: List[float] = []
    serve_statuses: Dict[str, int] = {}
    serve_degraded = 0
    serve_deadline_missed = 0
    reject_reasons: Dict[str, int] = {}
    breaker_transitions: Dict[str, int] = {}
    journal_errors = 0
    chaos_faults: Dict[str, int] = {}
    chaos_runs: List[Dict[str, Any]] = []

    trace_warnings = 0
    for path in paths:
        loaded = read_trace(path)
        events, file_errors = loaded.events, loaded.errors
        errors.extend(f"{path}: {err}" for err in file_errors)
        trace_warnings += loaded.warning_count
        run_phases: Dict[str, Dict[str, float]] = {}
        span_fallback: Dict[str, List[float]] = {}
        run_info: Dict[str, Any] = {
            "file": str(path),
            "warnings": loaded.warning_count,
        }
        for record in events:
            kind = record["event"]
            event_counts[kind] = event_counts.get(kind, 0) + 1
            run_info.setdefault("run_id", record["run_id"])
            if kind == "run-start":
                manifest = record.get("manifest", {})
                run_info["command"] = record.get("command", "")
                run_info["git"] = manifest.get("git", "")
                run_info["policy"] = manifest.get("policy", "")
            elif kind == "run-end":
                run_phases = record.get("phases", {}) or {}
                metrics = record.get("metrics")
                if metrics:
                    metrics_by_run[record["run_id"]] = metrics
            elif kind == "span":
                entry = span_fallback.setdefault(record.get("name", "?"), [0, 0.0])
                entry[0] += 1
                entry[1] += float(record.get("seconds", 0.0))
            elif kind == "reduce":
                deleted_clauses += int(record.get("deleted", 0))
            elif kind == "simplify-pass":
                simplify_removed += int(record.get("removed", 0))
            elif kind == "task-retry":
                retries += 1
            elif kind == "task-finish":
                status = str(record.get("status", ""))
                if record.get("cached"):
                    cached_tasks += 1
                elif record.get("resumed"):
                    resumed_tasks += 1
                else:
                    task_wall.append(float(record.get("wall_seconds", 0.0)))
                if status in ("TIMEOUT", "ERROR", "MEMOUT"):
                    failures[status] = failures.get(status, 0) + 1
                policy = str(record.get("policy", ""))
                if policy:
                    agg = by_policy.setdefault(policy, {
                        "tasks": 0, "decided": 0, "failed": 0,
                        "propagations": 0, "conflicts": 0, "wall_seconds": 0.0,
                    })
                    agg["tasks"] += 1
                    agg["decided"] += 1 if status in ("SATISFIABLE", "UNSATISFIABLE") else 0
                    agg["failed"] += 1 if status in ("TIMEOUT", "ERROR", "MEMOUT") else 0
                    agg["propagations"] += int(record.get("propagations", 0))
                    agg["conflicts"] += int(record.get("conflicts", 0))
                    agg["wall_seconds"] += float(record.get("wall_seconds", 0.0))
            elif kind == "serve-request":
                if record.get("admitted"):
                    serve_admitted += 1
                else:
                    serve_rejected += 1
                    reason = str(record.get("reason", "") or "unknown")
                    reject_reasons[reason] = (
                        reject_reasons.get(reason, 0) + 1
                    )
            elif kind == "serve-batch":
                serve_batches.append(int(record.get("size", 0)))
                trigger = str(record.get("trigger", "?"))
                serve_triggers[trigger] = serve_triggers.get(trigger, 0) + 1
                serve_inference_seconds += float(
                    record.get("inference_seconds", 0.0)
                )
            elif kind == "serve-response":
                status = str(record.get("status", ""))
                serve_statuses[status] = serve_statuses.get(status, 0) + 1
                if "queue_wait_seconds" in record:
                    serve_waits.append(float(record["queue_wait_seconds"]))
                if "wall_seconds" in record:
                    serve_walls.append(float(record["wall_seconds"]))
                if record.get("degraded"):
                    serve_degraded += 1
                if record.get("deadline_missed"):
                    serve_deadline_missed += 1
            elif kind == "breaker-transition":
                edge = (
                    f"{record.get('from_state', '?')}->"
                    f"{record.get('to_state', '?')}"
                )
                breaker_transitions[edge] = (
                    breaker_transitions.get(edge, 0) + 1
                )
            elif kind == "journal-error":
                journal_errors += 1
            elif kind == "chaos-fault":
                point = (
                    f"{record.get('point', '?')}/{record.get('kind', '?')}"
                )
                chaos_faults[point] = chaos_faults.get(point, 0) + 1
            elif kind == "chaos-end":
                chaos_runs.append({
                    "scenario": record.get("scenario", "?"),
                    "ok": bool(record.get("ok")),
                    "fingerprint": str(record.get("fingerprint", ""))[:16],
                    "requests": int(record.get("requests", 0)),
                })
            elif kind == "solve-end":
                solves.append({
                    "status": record.get("status", ""),
                    "policy": record.get("policy", ""),
                    "wall_seconds": float(record.get("wall_seconds", 0.0)),
                    "stats": record.get("stats", {}),
                })
        if not run_phases and span_fallback:
            run_phases = {
                name: {"count": count, "seconds": total}
                for name, (count, total) in span_fallback.items()
            }
        for name, entry in run_phases.items():
            merged = phases.setdefault(name, {"count": 0, "seconds": 0.0})
            merged["count"] += int(entry.get("count", 0))
            merged["seconds"] += float(entry.get("seconds", 0.0))
        runs.append(run_info)

    task_wall.sort()
    latency = {}
    if task_wall:
        latency = {
            "tasks": len(task_wall),
            "total_seconds": round(sum(task_wall), 6),
            "p50": round(_percentile(task_wall, 0.50), 6),
            "p90": round(_percentile(task_wall, 0.90), 6),
            "p99": round(_percentile(task_wall, 0.99), 6),
            "max": round(task_wall[-1], 6),
        }
    service: Dict[str, Any] = {}
    if serve_batches or serve_admitted or serve_rejected:
        sizes: Dict[int, int] = {}
        for size in serve_batches:
            sizes[size] = sizes.get(size, 0) + 1
        serve_waits.sort()
        serve_walls.sort()
        service = {
            "admitted": serve_admitted,
            "rejected": serve_rejected,
            "responses": sum(serve_statuses.values()),
            "statuses": dict(sorted(serve_statuses.items())),
            "inference_passes": len(serve_batches),
            "batched_requests": sum(serve_batches),
            "batch_sizes": dict(sorted(sizes.items())),
            "max_batch": max(serve_batches) if serve_batches else 0,
            "triggers": dict(sorted(serve_triggers.items())),
            "inference_seconds": round(serve_inference_seconds, 6),
        }
        if serve_waits:
            service["queue_wait"] = {
                "p50": round(_percentile(serve_waits, 0.50), 6),
                "p90": round(_percentile(serve_waits, 0.90), 6),
                "p99": round(_percentile(serve_waits, 0.99), 6),
                "max": round(serve_waits[-1], 6),
            }
        if serve_walls:
            service["request_wall"] = {
                "p50": round(_percentile(serve_walls, 0.50), 6),
                "p90": round(_percentile(serve_walls, 0.90), 6),
                "p99": round(_percentile(serve_walls, 0.99), 6),
                "max": round(serve_walls[-1], 6),
            }
    resilience: Dict[str, Any] = {}
    if (
        serve_degraded or serve_deadline_missed or reject_reasons
        or breaker_transitions or journal_errors or chaos_faults
        or chaos_runs
    ):
        resilience = {
            "degraded_responses": serve_degraded,
            "deadline_missed": serve_deadline_missed,
            "reject_reasons": dict(sorted(reject_reasons.items())),
            "breaker_transitions": dict(sorted(breaker_transitions.items())),
            "journal_errors": journal_errors,
            "chaos_faults": dict(sorted(chaos_faults.items())),
            "chaos_runs": chaos_runs,
        }
    return {
        "files": [str(p) for p in paths],
        "runs": runs,
        "errors": errors,
        "trace_warnings": trace_warnings,
        "event_counts": dict(sorted(event_counts.items())),
        "phases": phases,
        "deleted_clauses": deleted_clauses,
        "simplify_removed": simplify_removed,
        "latency": latency,
        "cached_tasks": cached_tasks,
        "resumed_tasks": resumed_tasks,
        "retries": retries,
        "failures": failures,
        "by_policy": by_policy,
        "metrics_by_run": metrics_by_run,
        "solves": solves,
        "service": service,
        "resilience": resilience,
    }


def _render_histogram(name: str, snapshot: Dict[str, Any]) -> List[str]:
    """Render one histogram snapshot as indented text lines."""
    count = snapshot.get("count", 0)
    lines = [
        f"  {name}: n={count} mean={snapshot.get('mean', 0.0):.4g} "
        f"min={snapshot.get('min', 0.0):.4g} max={snapshot.get('max', 0.0):.4g}"
    ]
    if not count:
        return lines
    bounds = snapshot.get("bounds", [])
    counts = snapshot.get("counts", [])
    peak = max(counts) or 1
    for i, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        label = f"<= {bounds[i]:g}" if i < len(bounds) else f"> {bounds[-1]:g}"
        bar = "#" * max(1, round(20 * bucket_count / peak))
        lines.append(f"    {label:>12s} {bucket_count:8d} {bar}")
    return lines


def render_report(summary: Dict[str, Any]) -> str:
    """Format a :func:`summarize_traces` summary as a text report."""
    out: List[str] = []
    out.append(f"trace report over {len(summary['files'])} file(s)")
    for run in summary["runs"]:
        bits = [run.get("run_id", "?")]
        if run.get("command"):
            bits.append(f"command={run['command']}")
        if run.get("git"):
            bits.append(f"git={run['git']}")
        out.append(f"  run {'  '.join(bits)}")

    if summary["errors"]:
        out.append("")
        out.append(f"schema errors ({len(summary['errors'])}):")
        out.extend(f"  {err}" for err in summary["errors"])
    if summary.get("trace_warnings"):
        out.append("")
        out.append(
            f"tolerated trace warnings (torn/skipped lines): "
            f"{summary['trace_warnings']}"
        )

    out.append("")
    out.append("event counts:")
    for name, count in summary["event_counts"].items():
        out.append(f"  {name:16s} {count}")
    if summary["deleted_clauses"]:
        out.append(f"  clauses deleted across reductions: "
                   f"{summary['deleted_clauses']}")
    if summary["simplify_removed"]:
        out.append(f"  clauses removed by simplify passes: "
                   f"{summary['simplify_removed']}")

    phases = summary["phases"]
    if phases:
        out.append("")
        out.append("per-phase time breakdown:")
        total = sum(entry["seconds"] for entry in phases.values()) or 1.0
        ordered = sorted(
            phases.items(), key=lambda kv: kv[1]["seconds"], reverse=True
        )
        for name, entry in ordered:
            out.append(
                f"  {name:20s} {entry['seconds']:10.4f}s "
                f"x{int(entry['count']):<6d} {100 * entry['seconds'] / total:5.1f}%"
            )

    if summary["latency"]:
        lat = summary["latency"]
        out.append("")
        out.append(
            f"task latency ({lat['tasks']} executed, "
            f"{summary['cached_tasks']} cached, "
            f"{summary['resumed_tasks']} resumed):"
        )
        out.append(
            f"  p50={lat['p50']:.4f}s p90={lat['p90']:.4f}s "
            f"p99={lat['p99']:.4f}s max={lat['max']:.4f}s "
            f"total={lat['total_seconds']:.2f}s"
        )

    if summary["failures"] or summary["retries"]:
        out.append("")
        out.append("failure taxonomy:")
        for status, count in sorted(summary["failures"].items()):
            out.append(f"  {status:10s} {count}")
        if summary["retries"]:
            out.append(f"  retried attempts: {summary['retries']}")

    by_policy = summary["by_policy"]
    if by_policy:
        out.append("")
        out.append("policy comparison:")
        for policy, agg in sorted(by_policy.items()):
            tasks = int(agg["tasks"]) or 1
            out.append(
                f"  {policy:12s} tasks={int(agg['tasks']):<5d} "
                f"decided={int(agg['decided']):<5d} "
                f"failed={int(agg['failed']):<4d} "
                f"props={int(agg['propagations']):<12d} "
                f"mean wall={agg['wall_seconds'] / tasks:.4f}s"
            )
        if len(by_policy) == 2:
            (name_a, a), (name_b, b) = sorted(by_policy.items())
            if a["propagations"]:
                delta = 1.0 - b["propagations"] / a["propagations"]
                out.append(
                    f"  {name_b} vs {name_a}: {100 * delta:+.2f}% propagations"
                )

    service = summary.get("service") or {}
    if service:
        out.append("")
        out.append("service summary:")
        out.append(
            f"  admitted={service['admitted']} "
            f"rejected={service['rejected']} "
            f"responses={service['responses']}"
        )
        passes = service["inference_passes"]
        batched = service["batched_requests"]
        out.append(
            f"  inference: {passes} forward pass(es) over {batched} "
            f"request(s) "
            f"({service['inference_seconds']:.4f}s model time)"
        )
        if service["batch_sizes"]:
            out.append("  batch-size histogram:")
            peak = max(service["batch_sizes"].values()) or 1
            for size, count in service["batch_sizes"].items():
                bar = "#" * max(1, round(20 * count / peak))
                out.append(f"    size {size:>4d} {count:8d} {bar}")
        if service["triggers"]:
            out.append("  flush triggers: " + "  ".join(
                f"{name}={count}"
                for name, count in service["triggers"].items()
            ))
        if service.get("queue_wait"):
            wait = service["queue_wait"]
            out.append(
                f"  queue wait: p50={wait['p50']:.4f}s "
                f"p90={wait['p90']:.4f}s p99={wait['p99']:.4f}s "
                f"max={wait['max']:.4f}s"
            )
        if service.get("request_wall"):
            wall = service["request_wall"]
            out.append(
                f"  request wall: p50={wall['p50']:.4f}s "
                f"p90={wall['p90']:.4f}s p99={wall['p99']:.4f}s "
                f"max={wall['max']:.4f}s"
            )
        if service["statuses"]:
            out.append("  responses by status: " + "  ".join(
                f"{name}={count}"
                for name, count in service["statuses"].items()
            ))

    resilience = summary.get("resilience") or {}
    if resilience:
        out.append("")
        out.append("resilience summary:")
        out.append(
            f"  degraded responses={resilience['degraded_responses']} "
            f"deadline misses={resilience['deadline_missed']} "
            f"tolerated journal errors={resilience['journal_errors']}"
        )
        if resilience["reject_reasons"]:
            out.append("  rejections by reason: " + "  ".join(
                f"{name}={count}"
                for name, count in resilience["reject_reasons"].items()
            ))
        if resilience["breaker_transitions"]:
            out.append("  breaker transitions: " + "  ".join(
                f"{edge}={count}"
                for edge, count in resilience["breaker_transitions"].items()
            ))
        if resilience["chaos_faults"]:
            out.append("  injected faults: " + "  ".join(
                f"{point}={count}"
                for point, count in resilience["chaos_faults"].items()
            ))
        for run in resilience["chaos_runs"]:
            verdict = "OK" if run["ok"] else "FAILED"
            out.append(
                f"  chaos {run['scenario']}: {verdict} "
                f"({run['requests']} requests, "
                f"fingerprint {run['fingerprint']})"
            )

    for solve in summary["solves"]:
        out.append("")
        out.append(
            f"solve: {solve['status']} policy={solve['policy']} "
            f"wall={solve['wall_seconds']:.4f}s"
        )
        stats = solve.get("stats", {})
        if stats:
            keys = ("conflicts", "propagations", "restarts", "reductions",
                    "deleted_clauses", "learned_clauses")
            out.append("  " + "  ".join(
                f"{k}={stats[k]}" for k in keys if k in stats
            ))

    for run_id, metrics in summary["metrics_by_run"].items():
        histograms = metrics.get("histograms", {})
        counters = metrics.get("counters", {})
        if not histograms and not counters:
            continue
        out.append("")
        out.append(f"metrics ({run_id}):")
        for name, value in counters.items():
            out.append(f"  {name}: {value}")
        for name, snapshot in histograms.items():
            out.extend(_render_histogram(name, snapshot))

    return "\n".join(out) + "\n"


def validate_traces(paths: Sequence[Union[str, Path]]) -> List[str]:
    """Schema-check trace files; returns all errors (empty = valid)."""
    errors: List[str] = []
    for path in paths:
        _, file_errors = read_trace(path)
        errors.extend(f"{path}: {err}" for err in file_errors)
    return errors
