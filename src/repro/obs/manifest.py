"""Run manifests: the reproducibility record emitted beside every trace.

A :class:`RunManifest` captures everything needed to re-run (or audit)
a labelling sweep, benchmark suite, or training job: the command and
argv, the effective configuration, seeds, the selected policy, the
source revision (``git describe``), and the execution environment
(Python, platform, CPU count, ``REPRO_*`` variables).  It is written as
``<run_id>.manifest.json`` next to the trace file *and* embedded in the
trace's ``run-start`` event, so a single ``.jsonl`` file is a complete,
self-describing run record.

:func:`start_run` is the one-call entry point the CLI uses: it builds
the observer (sink + registry), writes the manifest, and emits
``run-start``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.trace import TRACE_FORMAT_VERSION, TraceSink, new_run_id


def git_describe() -> str:
    """``git describe --always --dirty`` of the source tree, or ``""``.

    Best-effort by design: traces must work from an sdist or a
    container without git installed.
    """
    repo_dir = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if completed.returncode != 0:
        return ""
    return completed.stdout.strip()


@dataclass
class RunManifest:
    """Reproducibility record for one observed run."""

    run_id: str
    command: str
    argv: List[str] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    policy: str = ""
    git: str = ""
    python: str = ""
    platform: str = ""
    cpu_count: int = 0
    env: Dict[str, str] = field(default_factory=dict)
    created_unix: float = 0.0
    trace_format_version: int = TRACE_FORMAT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (field order is stable for diffing)."""
        return {
            "run_id": self.run_id,
            "command": self.command,
            "argv": list(self.argv),
            "config": dict(self.config),
            "seeds": dict(self.seeds),
            "policy": self.policy,
            "git": self.git,
            "python": self.python,
            "platform": self.platform,
            "cpu_count": self.cpu_count,
            "env": dict(self.env),
            "created_unix": self.created_unix,
            "trace_format_version": self.trace_format_version,
        }

    def write(self, path: Union[str, Path]) -> None:
        """Write the manifest as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, default=str) + "\n",
            encoding="utf-8",
        )


def collect_manifest(
    run_id: str,
    command: str,
    argv: Optional[Sequence[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, int]] = None,
    policy: str = "",
) -> RunManifest:
    """Assemble a :class:`RunManifest` from the current process state."""
    return RunManifest(
        run_id=run_id,
        command=command,
        argv=list(argv or []),
        config=dict(config or {}),
        seeds=dict(seeds or {}),
        policy=policy,
        git=git_describe(),
        python=sys.version.split()[0],
        platform=platform.platform(),
        cpu_count=os.cpu_count() or 0,
        env={
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        created_unix=time.time(),
    )


def start_run(
    trace_dir: Optional[Union[str, Path]],
    command: str,
    argv: Optional[Sequence[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, int]] = None,
    policy: str = "",
    metrics: bool = True,
) -> Observer:
    """Build the observer for one CLI run (or return the null observer).

    With ``trace_dir`` set, creates ``<dir>/<command>-<run_id>.jsonl``
    and ``<dir>/<command>-<run_id>.manifest.json``, emits ``run-start``
    (manifest embedded), and returns a live observer whose registry is
    enabled unless ``metrics`` is False.  Without a trace directory the
    shared :data:`~repro.obs.observer.NULL_OBSERVER` is returned —
    observability stays strictly opt-in.

    Callers should end the run with ``observer.finish(...)`` so the
    ``run-end`` event (phase totals + metrics snapshot) lands in the
    trace.
    """
    if trace_dir is None:
        return NULL_OBSERVER
    run_id = new_run_id()
    trace_dir = Path(trace_dir)
    sink = TraceSink(trace_dir / f"{command}-{run_id}.jsonl", run_id=run_id)
    manifest = collect_manifest(
        run_id, command, argv=argv, config=config, seeds=seeds, policy=policy
    )
    manifest.write(trace_dir / f"{command}-{run_id}.manifest.json")
    observer = Observer(
        sink=sink, registry=MetricsRegistry(enabled=metrics), run_id=run_id
    )
    observer.event(
        "run-start",
        command=command,
        manifest=manifest.to_dict(),
        format_version=TRACE_FORMAT_VERSION,
    )
    return observer
