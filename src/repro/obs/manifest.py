"""Run manifests: the reproducibility record emitted beside every trace.

A :class:`RunManifest` captures everything needed to re-run (or audit)
a labelling sweep, benchmark suite, or training job: the command and
argv, the effective configuration, seeds, the selected policy, the
source revision (``git describe``), and the execution environment
(Python, platform, CPU count, ``REPRO_*`` variables).  It is written as
``<command>-<run_id>-p<pid>.manifest.json`` next to the trace file
*and* embedded in the trace's ``run-start`` event, so a single
``.jsonl`` file is a complete, self-describing run record.

:func:`start_run` is the one-call entry point the CLI uses: it builds
the observer (sink + registry), writes the manifest, and emits
``run-start``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.trace import TRACE_FORMAT_VERSION, TraceSink, new_run_id


def git_describe() -> str:
    """``git describe --always --dirty`` of the source tree, or ``""``.

    Best-effort by design: traces must work from an sdist or a
    container without git installed.
    """
    repo_dir = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if completed.returncode != 0:
        return ""
    return completed.stdout.strip()


@dataclass
class RunManifest:
    """Reproducibility record for one observed run."""

    run_id: str
    command: str
    argv: List[str] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    policy: str = ""
    git: str = ""
    python: str = ""
    platform: str = ""
    cpu_count: int = 0
    env: Dict[str, str] = field(default_factory=dict)
    created_unix: float = 0.0
    trace_format_version: int = TRACE_FORMAT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (field order is stable for diffing)."""
        return {
            "run_id": self.run_id,
            "command": self.command,
            "argv": list(self.argv),
            "config": dict(self.config),
            "seeds": dict(self.seeds),
            "policy": self.policy,
            "git": self.git,
            "python": self.python,
            "platform": self.platform,
            "cpu_count": self.cpu_count,
            "env": dict(self.env),
            "created_unix": self.created_unix,
            "trace_format_version": self.trace_format_version,
        }

    def write(self, path: Union[str, Path]) -> None:
        """Write the manifest as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, default=str) + "\n",
            encoding="utf-8",
        )


def collect_manifest(
    run_id: str,
    command: str,
    argv: Optional[Sequence[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, int]] = None,
    policy: str = "",
) -> RunManifest:
    """Assemble a :class:`RunManifest` from the current process state."""
    return RunManifest(
        run_id=run_id,
        command=command,
        argv=list(argv or []),
        config=dict(config or {}),
        seeds=dict(seeds or {}),
        policy=policy,
        git=git_describe(),
        python=sys.version.split()[0],
        platform=platform.platform(),
        cpu_count=os.cpu_count() or 0,
        env={
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        created_unix=time.time(),
    )


def start_run(
    trace_dir: Optional[Union[str, Path]],
    command: str,
    argv: Optional[Sequence[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, int]] = None,
    policy: str = "",
    metrics: bool = True,
) -> Observer:
    """Build the observer for one CLI run (or return the null observer).

    With ``trace_dir`` set, creates
    ``<dir>/<command>-<run_id>-p<pid>.jsonl`` and the matching
    ``....manifest.json``, emits ``run-start`` (manifest embedded), and
    returns a live observer whose registry is enabled unless
    ``metrics`` is False.  The filename embeds both the random run id
    and the writer's pid, so concurrent writers sharing one trace
    directory (a sharded sweep, a forking service) can never collide
    on a name.  Without a trace directory the shared
    :data:`~repro.obs.observer.NULL_OBSERVER` is returned —
    observability stays strictly opt-in.

    The run is also auto-registered (status ``running``) in the run
    store resolved by :func:`repro.store.resolve_auto_store` —
    ``$REPRO_STORE``, or ``<trace_dir>/runstore.sqlite`` — and
    ``observer.finish(...)`` ingests the finished trace, so every
    traced run is queryable via ``repro query`` with no caller
    changes.  Store failures never break the run: they degrade to a
    stderr warning.

    Callers should end the run with ``observer.finish(...)`` so the
    ``run-end`` event (phase totals + metrics snapshot) lands in the
    trace and the store row flips from ``running`` to its final
    status.
    """
    if trace_dir is None:
        return NULL_OBSERVER
    run_id = new_run_id()
    trace_dir = Path(trace_dir)
    stem = f"{command}-{run_id}-p{os.getpid()}"
    sink = TraceSink(trace_dir / f"{stem}.jsonl", run_id=run_id)
    manifest = collect_manifest(
        run_id, command, argv=argv, config=config, seeds=seeds, policy=policy
    )
    manifest_path = trace_dir / f"{stem}.manifest.json"
    manifest.write(manifest_path)
    observer = Observer(
        sink=sink, registry=MetricsRegistry(enabled=metrics), run_id=run_id
    )
    observer.event(
        "run-start",
        command=command,
        manifest=manifest.to_dict(),
        format_version=TRACE_FORMAT_VERSION,
    )
    observer.manifest_path = manifest_path
    _register_in_store(observer, trace_dir, manifest)
    return observer


def _register_in_store(
    observer: Observer, trace_dir: Path, manifest: RunManifest
) -> None:
    """Best-effort run-store registration; never raises into the run."""
    try:
        from repro.store import RunStore, resolve_auto_store

        store_path = resolve_auto_store(trace_dir)
        if store_path is None:
            return
        with RunStore(store_path) as store:
            store.register_run(
                run_id=manifest.run_id,
                kind=manifest.command,
                commit=manifest.git,
                policy=manifest.policy,
                created_unix=manifest.created_unix,
                config=manifest.config,
                trace_path=observer.sink.path,
                manifest_path=observer.manifest_path,
            )
        observer.store_path = store_path
    except Exception as exc:  # the store must never take a run down
        print(
            f"warning: run-store registration failed ({exc})",
            file=sys.stderr,
        )
