"""Structured trace events: buffered JSONL sink, reader, and schema.

One trace file is one *run* (a ``repro solve`` invocation, a labelling
sweep, a training job).  Every line is a self-describing JSON object::

    {"event": "restart", "ts": 0.1042, "run_id": "r-1f2e3d4c5b6a",
     "seq": 17, ...event fields...}

* ``event``   — one of :data:`EVENT_TYPES` (schema-checked by
  ``repro report --validate`` and the CI pipeline job);
* ``ts``      — seconds since the run started, from a **monotonic**
  clock, so event intervals survive wall-clock adjustments;
* ``run_id``  — random per-run identifier, shared with the run's
  :class:`~repro.obs.manifest.RunManifest`;
* ``seq``     — per-run line number, so sorting and gap detection need
  no timestamps.

Writes are buffered (``buffer_lines`` at a time) to keep tracing off
the syscall path of tight loops, and the reader mirrors the
torn-final-line tolerance of :mod:`repro.parallel.journal`: a process
killed mid-write costs at most the final line.
"""

from __future__ import annotations

import io
import json
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Trace schema version, embedded in ``run-start`` events.
TRACE_FORMAT_VERSION = 1

#: Every legal value of the ``event`` field.  ``repro report --validate``
#: (and the CI observability job) fails on anything outside this set, so
#: new event kinds must be registered here.
EVENT_TYPES = frozenset({
    # run lifecycle
    "run-start", "run-end",
    # solver (repro.solver)
    "solve-start", "solve-end", "restart", "reduce", "rephase", "mode-switch",
    # simplification (repro.simplify)
    "simplify-pass",
    # parallel execution (repro.parallel)
    "task-start", "task-retry", "task-finish", "journal-error",
    # labelling (repro.selection.labeling)
    "label",
    # training (repro.selection.trainer)
    "train-start", "train-end", "epoch-end",
    # benchmark suites (repro.bench.runner)
    "suite-start", "suite-end",
    # differential fuzzing (repro.fuzz)
    "fuzz-start", "fuzz-case", "fuzz-discrepancy", "fuzz-shrink", "fuzz-end",
    # solve service (repro.serve)
    "serve-start", "serve-request", "serve-batch", "serve-response",
    "serve-stop",
    # incremental sessions (repro.solver.session / repro.selection.session
    # / repro.serve.sessions)
    "session-start", "session-select", "session-solve", "session-evict",
    "session-end",
    # resilience (repro.serve.resilience)
    "breaker-transition",
    # chaos harness (repro.chaos)
    "chaos-start", "chaos-wave", "chaos-fault", "chaos-restart", "chaos-end",
    # generic timing span
    "span",
})

#: Keys every event line must carry, with their required types.
REQUIRED_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("event", str),
    ("ts", (int, float)),
    ("run_id", str),
    ("seq", int),
)


def new_run_id() -> str:
    """A fresh random run identifier (``r-`` + 12 hex chars)."""
    return "r-" + uuid.uuid4().hex[:12]


class TraceSink:
    """Buffered JSONL writer for one run's event stream.

    Lines are serialized eagerly (so a mutated field dict cannot
    retroactively change a buffered event) but written in batches of
    ``buffer_lines``.  ``flush`` forces the buffer out; ``close``
    flushes and releases the handle.  The sink never raises into the
    instrumented code path once open: serialization falls back to
    ``str`` for exotic values.

    Emission is thread-safe: the solve service writes ``serve-*``
    events from the event-loop thread while its runner (driven from an
    executor thread) writes ``task-*`` events to the same sink, so the
    buffer, sequence counter, and handle are guarded by one lock.
    """

    def __init__(
        self,
        path: Union[str, Path],
        run_id: Optional[str] = None,
        buffer_lines: int = 64,
    ):
        if buffer_lines < 1:
            raise ValueError("buffer_lines must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or new_run_id()
        self.buffer_lines = buffer_lines
        self.events_written = 0
        self._seq = 0
        self._start = time.monotonic()
        self._buffer: List[str] = []
        self._handle: Optional[io.TextIOWrapper] = None
        self._closed = False
        self._lock = threading.Lock()

    def emit(self, event: str, fields: Optional[Dict[str, Any]] = None) -> None:
        """Append one event line (buffered; see :meth:`flush`)."""
        with self._lock:
            if self._closed:
                return
            record: Dict[str, Any] = {
                "event": event,
                "ts": round(time.monotonic() - self._start, 6),
                "run_id": self.run_id,
                "seq": self._seq,
            }
            if fields:
                for key, value in fields.items():
                    if key not in record:
                        record[key] = value
            self._seq += 1
            self._buffer.append(
                json.dumps(record, separators=(",", ":"), default=str)
            )
            if len(self._buffer) >= self.buffer_lines:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer or self._closed:
            return
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write("\n".join(self._buffer) + "\n")
        self._handle.flush()
        self.events_written += len(self._buffer)
        self._buffer.clear()

    def flush(self) -> None:
        """Write all buffered lines to disk."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def validate_event(record: Any) -> Optional[str]:
    """Schema-check one parsed trace line; returns an error or ``None``."""
    if not isinstance(record, dict):
        return f"line is not a JSON object: {type(record).__name__}"
    for key, expected in REQUIRED_FIELDS:
        if key not in record:
            return f"missing required field {key!r}"
        if not isinstance(record[key], expected) or isinstance(
            record[key], bool
        ):
            return f"field {key!r} has wrong type {type(record[key]).__name__}"
    if record["event"] not in EVENT_TYPES:
        return f"unknown event type {record['event']!r}"
    if record["ts"] < 0:
        return f"negative timestamp {record['ts']!r}"
    if record["seq"] < 0:
        return f"negative sequence number {record['seq']!r}"
    return None


class TraceRead(tuple):
    """Result of :func:`read_trace`: a ``(events, errors)`` pair that
    also carries structured ``warnings``.

    Unpacks exactly like the historical two-tuple —
    ``events, errors = read_trace(path)`` keeps working — while
    :attr:`warnings` surfaces the lines that were *tolerated* rather
    than rejected (a torn final line from a killed writer, interior
    blank lines), each as ``{"line": N, "reason": ..., "detail": ...}``.
    Tolerated-but-dropped lines used to vanish silently; the run store
    and ``repro report`` now count them per run.
    """

    def __new__(
        cls,
        events: List[Dict[str, Any]],
        errors: List[str],
        warnings: List[Dict[str, Any]],
    ) -> "TraceRead":
        self = super().__new__(cls, (events, errors))
        self.warnings = warnings
        return self

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Schema-valid event records, in file order."""
        return self[0]

    @property
    def errors(self) -> List[str]:
        """Rejected lines (``"line N: why"``), empty when clean."""
        return self[1]

    @property
    def warning_count(self) -> int:
        """Number of tolerated (torn/skipped) lines."""
        return len(self.warnings)


def read_trace(path: Union[str, Path], strict: bool = False) -> TraceRead:
    """Load a trace file; returns a :class:`TraceRead`.

    A torn *final* line (the signature of a killed writer, mirroring
    :class:`~repro.parallel.journal.RunJournal`) is tolerated but
    recorded as a structured warning — it no longer disappears
    silently.  Any other malformed or schema-invalid line produces an
    error entry ``"line N: <why>"``; with ``strict`` the first one
    raises :class:`ValueError` instead.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    events: List[Dict[str, Any]] = []
    errors: List[str] = []
    warnings: List[Dict[str, Any]] = []

    def problem(number: int, why: str) -> None:
        message = f"line {number}: {why}"
        if strict:
            raise ValueError(f"{path}: {message}")
        errors.append(message)

    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            warnings.append({
                "line": number,
                "reason": "blank-line",
                "detail": "interior blank line skipped",
            })
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if number == len(lines):
                warnings.append({
                    "line": number,
                    "reason": "torn-final-line",
                    "detail": f"killed writer signature: {exc}",
                })
                continue
            problem(number, "unparseable JSON")
            continue
        why = validate_event(record)
        if why is not None:
            problem(number, why)
            continue
        events.append(record)
    return TraceRead(events, errors, warnings)
