"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the in-process half of the observability layer (the
other half is the :mod:`repro.obs.trace` event stream).  Design rules,
in priority order:

1. **Allocation-free on the hot path.**  Instruments are created once
   (``registry.counter("x")``) and then mutated in place: a counter
   bump is one integer add, a histogram observation is one ``bisect``
   plus one list-slot increment.  No dicts, tuples, or strings are
   built per observation.
2. **Near-zero overhead when disabled.**  A disabled registry hands out
   shared *null* instruments whose mutators are no-ops, and callers on
   genuinely hot paths (the BCP loop) are expected to skip even that by
   checking :attr:`MetricsRegistry.enabled` once at setup and keeping
   ``None`` instead of an instrument.
3. **JSON-able snapshots.**  :meth:`MetricsRegistry.snapshot` renders
   the whole registry as plain dicts, which the trace layer embeds in
   ``solve-end`` / ``run-end`` events so ``repro report`` can show
   histogram summaries without a live process.

Buckets are fixed at histogram creation (Prometheus-style cumulative-
free encoding: ``counts[i]`` holds observations ``<= bounds[i]``, with
one overflow slot), so concurrent snapshots never race a resize.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bounds for durations in seconds (spans, task wall).
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)

#: Default bounds for small integer distributions (glue, clause sizes).
SMALL_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50, 100
)

#: Default bounds for batch-size style distributions (BCP batch sizes).
BATCH_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096
)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (one integer add; no allocation)."""
        self.value += amount


class Gauge:
    """Point-in-time value metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``counts[i]`` counts observations ``v <= bounds[i]``; the final slot
    counts overflows.  Bounds are frozen at construction so ``observe``
    never allocates.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (bisect + slot increment)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        """Average of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing the ``q``-quantile observation.

        A bucket-resolution estimate (exact values are not retained);
        overflow observations report the recorded maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of the full distribution."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": round(self.mean(), 9),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class _NullGauge:
    """Shared no-op gauge handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""


class _NullHistogram:
    """Shared no-op histogram handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def mean(self) -> float:
        """Always 0 (nothing is recorded)."""
        return 0.0

    def quantile(self, q: float) -> float:
        """Always 0 (nothing is recorded)."""
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instrument store with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing
    instrument when the name is already registered, so independent
    components share series by agreeing on names (the conventions live
    in ``docs/observability.md``).  A disabled registry returns shared
    null instruments and snapshots to an empty dict.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``bounds`` is only consulted at creation; later callers inherit
        the original bucket layout.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else TIME_BUCKETS
            )
        return instrument

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as nested plain dicts (JSON-able)."""
        if not self.enabled:
            return {}
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }


def _prometheus_name(name: str) -> str:
    """A metric name sanitized to Prometheus's ``[a-zA-Z0-9_:]`` set."""
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(
    snapshot: Dict[str, object],
    extra_gauges: Optional[Dict[str, object]] = None,
) -> str:
    """A registry snapshot in Prometheus text exposition format (0.0.4).

    Counters and gauges map directly; fixed-bucket histograms become
    the standard ``_bucket{le=...}`` cumulative series (the snapshot's
    per-bucket counts are non-cumulative, so the running sum is taken
    here) plus ``_sum`` and ``_count``.  ``extra_gauges`` lets a caller
    append ad-hoc numeric readings — the solve service exposes its
    ``stats()`` counters this way — non-numeric values are skipped.
    Dots and dashes in names become underscores (``serve.batch_size``
    -> ``serve_batch_size``).
    """
    lines: List[str] = []
    for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
        prom = _prometheus_name(str(name))
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_format_value(value)}")
    for name, value in (snapshot.get("gauges") or {}).items():  # type: ignore[union-attr]
        prom = _prometheus_name(str(name))
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(value)}")
    for name, histo in (snapshot.get("histograms") or {}).items():  # type: ignore[union-attr]
        prom = _prometheus_name(str(name))
        bounds = histo.get("bounds", [])
        counts = histo.get("counts", [])
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += int(bucket_count)
            lines.append(f'{prom}_bucket{{le="{bound:g}"}} {cumulative}')
        if len(counts) > len(bounds):  # the overflow slot
            cumulative += int(counts[-1])
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {_format_value(histo.get('sum', 0.0))}")
        lines.append(f"{prom}_count {int(histo.get('count', 0))}")
    for name, value in (extra_gauges or {}).items():
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        prom = _prometheus_name(str(name))
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(value)}")
    return "\n".join(lines) + "\n"
