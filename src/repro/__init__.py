"""repro — reproduction of *NeuroSelect: Learning to Select Clauses in SAT
Solvers* (Liu et al., DAC 2024).

Subpackages
-----------

``repro.cnf``
    CNF formulas, DIMACS I/O, seeded instance generators, features.
``repro.solver``
    A from-scratch CDCL SAT solver with propagation-frequency tracking
    and pluggable clause deletion (the Kissat stand-in).
``repro.policies``
    Clause-deletion policies: Kissat's default glue/size scoring and the
    paper's propagation-frequency policy (Figure 5, Eq. 2).
``repro.nn``
    A small numpy autograd / neural-network framework (the PyTorch
    stand-in): tensors, layers, Adam, BCE loss.
``repro.graph``
    CNF-to-graph encodings (bipartite variable-clause graph of Sec. 4.2,
    literal-clause graph for the NeuroSAT baseline).
``repro.models``
    The NeuroSelect Hybrid Graph Transformer (MPNN + linear attention)
    and the baseline classifiers of Table 2.
``repro.parallel``
    Instance-level parallel execution: multiprocessing fan-out with an
    on-disk result cache keyed by (formula, policy, config, budgets).
``repro.selection``
    Label generation, datasets, training, metrics, and the end-to-end
    NeuroSelect-Kissat selector.
``repro.bench``
    Experiment harness reproducing every table and figure.
``repro.obs``
    Observability: metrics registry, structured JSONL event traces, run
    manifests, and the ``repro report`` trace summarizer.
``repro.fuzz``
    Differential fuzzing: oracle bank, seeded campaigns, ddmin
    shrinking, and the replayable failure corpus.
``repro.serve``
    Async solve service (``repro serve``): admission control, batched
    policy inference, and a JSON-over-HTTP front door on localhost.
"""

__version__ = "1.0.0"

from repro.cnf import CNF, Clause, parse_dimacs, to_dimacs
from repro.solver import Solver, SolverConfig, SolveResult, Status, solve
from repro.policies import DefaultPolicy, FrequencyPolicy, get_policy

__all__ = [
    "__version__",
    "CNF",
    "Clause",
    "parse_dimacs",
    "to_dimacs",
    "Solver",
    "SolverConfig",
    "SolveResult",
    "Status",
    "solve",
    "DefaultPolicy",
    "FrequencyPolicy",
    "get_policy",
]
