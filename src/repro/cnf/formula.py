"""CNF formula data model.

A :class:`CNF` is an ordered collection of :class:`Clause` objects over
1-based integer variables.  Literals follow the DIMACS convention: ``v``
denotes the positive literal of variable ``v`` and ``-v`` its negation.
The model is deliberately simple and immutable-by-convention: solver-side
code converts it once into its own packed representation and never mutates
the original formula.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class Clause:
    """A disjunction of literals.

    Duplicate literals are removed on construction while the first-seen
    order of the remaining literals is preserved.  A clause containing both
    ``v`` and ``-v`` is a *tautology*; it is kept (callers may want to
    detect and drop it) and flagged via :meth:`is_tautology`.
    """

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[int]):
        seen: Set[int] = set()
        ordered: List[int] = []
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if lit not in seen:
                seen.add(lit)
                ordered.append(lit)
        self.literals: Tuple[int, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __contains__(self, lit: int) -> bool:
        return lit in self.literals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return frozenset(self.literals) == frozenset(other.literals)

    def __hash__(self) -> int:
        return hash(frozenset(self.literals))

    def __repr__(self) -> str:
        return f"Clause({list(self.literals)})"

    @property
    def variables(self) -> Tuple[int, ...]:
        """Variables (absolute literal values) in first-seen order."""
        return tuple(abs(lit) for lit in self.literals)

    def is_tautology(self) -> bool:
        """True when the clause contains a literal and its negation."""
        lits = set(self.literals)
        return any(-lit in lits for lit in lits)

    def is_unit(self) -> bool:
        return len(self.literals) == 1

    def is_empty(self) -> bool:
        return not self.literals

    def satisfied_by(self, assignment: Sequence[Optional[bool]]) -> bool:
        """Evaluate under a partial assignment indexed by variable.

        ``assignment[v]`` holds the truth value of variable ``v`` (index 0
        is unused) or ``None`` when unassigned.  Unassigned literals do not
        satisfy the clause.
        """
        for lit in self.literals:
            value = assignment[abs(lit)]
            if value is None:
                continue
            if value == (lit > 0):
                return True
        return False


class CNF:
    """A CNF formula: a conjunction of clauses over ``num_vars`` variables.

    ``num_vars`` is at least the largest variable mentioned in any clause;
    it may be larger (DIMACS headers allow unused variables).
    """

    __slots__ = ("clauses", "num_vars", "comments")

    def __init__(
        self,
        clauses: Iterable[Iterable[int]] = (),
        num_vars: int = 0,
        comments: Optional[List[str]] = None,
    ):
        self.clauses: List[Clause] = [
            c if isinstance(c, Clause) else Clause(c) for c in clauses
        ]
        max_var = max(
            (max(abs(lit) for lit in c.literals) for c in self.clauses if c.literals),
            default=0,
        )
        if num_vars < max_var:
            num_vars = max_var
        self.num_vars: int = num_vars
        self.comments: List[str] = list(comments or [])

    # -- construction -----------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> Clause:
        """Append a clause and grow ``num_vars`` if needed; returns it."""
        clause = literals if isinstance(literals, Clause) else Clause(literals)
        if clause.literals:
            self.num_vars = max(self.num_vars, max(abs(lit) for lit in clause.literals))
        self.clauses.append(clause)
        return clause

    def copy(self) -> "CNF":
        return CNF(self.clauses, self.num_vars, list(self.comments))

    # -- inspection --------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def num_literals(self) -> int:
        """Total literal occurrences across all clauses."""
        return sum(len(c) for c in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(num_vars={self.num_vars}, num_clauses={self.num_clauses})"

    def variables(self) -> Set[int]:
        """The set of variables that actually occur in some clause."""
        out: Set[int] = set()
        for clause in self.clauses:
            out.update(abs(lit) for lit in clause.literals)
        return out

    def has_empty_clause(self) -> bool:
        return any(c.is_empty() for c in self.clauses)

    def evaluate(self, assignment: Sequence[Optional[bool]]) -> Optional[bool]:
        """Evaluate under a (possibly partial) assignment.

        Returns ``True`` when every clause is satisfied, ``False`` when some
        clause is falsified (all its literals assigned false), and ``None``
        when undetermined.
        """
        undetermined = False
        for clause in self.clauses:
            clause_value: Optional[bool] = False
            for lit in clause.literals:
                value = assignment[abs(lit)]
                if value is None:
                    clause_value = None
                elif value == (lit > 0):
                    clause_value = True
                    break
            if clause_value is True:
                continue
            if clause_value is None:
                undetermined = True
            else:
                return False
        return None if undetermined else True

    def check_model(self, model: Sequence[Optional[bool]]) -> bool:
        """True when ``model`` (indexed by variable) satisfies the formula."""
        return self.evaluate(model) is True

    def simplified(self) -> "CNF":
        """Return a copy without tautologies and duplicate clauses."""
        seen: Set[Clause] = set()
        kept: List[Clause] = []
        for clause in self.clauses:
            if clause.is_tautology() or clause in seen:
                continue
            seen.add(clause)
            kept.append(clause)
        return CNF(kept, self.num_vars, list(self.comments))
