"""Static feature extraction for CNF formulas.

These cheap structural features are used for dataset statistics (Table 1
analogue), for sanity checks on generated instances, and as an optional
auxiliary input to classification models.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List

from repro.cnf.formula import CNF


@dataclass(frozen=True)
class FormulaFeatures:
    """Summary statistics of a CNF formula."""

    num_vars: int
    num_clauses: int
    num_literals: int
    clause_var_ratio: float
    mean_clause_size: float
    max_clause_size: int
    min_clause_size: int
    binary_fraction: float
    ternary_fraction: float
    horn_fraction: float
    positive_literal_fraction: float
    mean_var_occurrence: float
    max_var_occurrence: int
    var_occurrence_gini: float

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    def as_vector(self) -> List[float]:
        """Features as a fixed-order list of floats (model input)."""
        return [float(v) for v in asdict(self).values()]


def _gini(values: List[int]) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, ->1 = skewed)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cum = 0.0
    weighted = 0.0
    for i, v in enumerate(ordered, start=1):
        cum += v
        weighted += cum
    # Gini via Lorenz curve area: G = 1 - 2 * B where B = area under curve.
    return 1.0 - 2.0 * (weighted - total / 2.0) / (n * total)


def extract_features(cnf: CNF) -> FormulaFeatures:
    """Compute :class:`FormulaFeatures` for a formula.

    Degenerate formulas (no clauses / no variables) yield zeroed ratios
    rather than raising, so feature extraction is total.
    """
    num_vars = cnf.num_vars
    num_clauses = cnf.num_clauses
    sizes = [len(c) for c in cnf.clauses]
    num_literals = sum(sizes)

    occurrences = [0] * (num_vars + 1)
    positive = 0
    horn = 0
    for clause in cnf.clauses:
        pos_in_clause = 0
        for lit in clause.literals:
            occurrences[abs(lit)] += 1
            if lit > 0:
                positive += 1
                pos_in_clause += 1
        if pos_in_clause <= 1:
            horn += 1

    occ = occurrences[1:]
    mean_occ = (num_literals / num_vars) if num_vars else 0.0
    return FormulaFeatures(
        num_vars=num_vars,
        num_clauses=num_clauses,
        num_literals=num_literals,
        clause_var_ratio=(num_clauses / num_vars) if num_vars else 0.0,
        mean_clause_size=(num_literals / num_clauses) if num_clauses else 0.0,
        max_clause_size=max(sizes, default=0),
        min_clause_size=min(sizes, default=0),
        binary_fraction=(sizes.count(2) / num_clauses) if num_clauses else 0.0,
        ternary_fraction=(sizes.count(3) / num_clauses) if num_clauses else 0.0,
        horn_fraction=(horn / num_clauses) if num_clauses else 0.0,
        positive_literal_fraction=(positive / num_literals) if num_literals else 0.0,
        mean_var_occurrence=mean_occ,
        max_var_occurrence=max(occ, default=0),
        var_occurrence_gini=_gini(occ),
    )
