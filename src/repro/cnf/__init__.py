"""CNF substrate: formula data model, DIMACS I/O, instance generators, features.

This package provides everything needed to create, inspect, and serialize
conjunctive-normal-form (CNF) formulas, the input of every other subsystem.
Variables are 1-based integers; a literal is a signed non-zero integer
(``v`` for the positive literal, ``-v`` for the negation), matching DIMACS.
"""

from repro.cnf.formula import CNF, Clause
from repro.cnf.dimacs import parse_dimacs, parse_dimacs_file, to_dimacs, write_dimacs_file
from repro.cnf.features import FormulaFeatures, extract_features
from repro.cnf.structure import (
    StructuralFeatures,
    structural_features,
    variable_incidence_graph,
    community_labels,
)
from repro.cnf.encodings import Circuit, miter, ripple_carry_adder
from repro.cnf.transforms import (
    shuffle_clauses,
    rename_variables,
    flip_polarity,
    duplicate_clauses,
    compact_variables,
    augment,
)
from repro.cnf.generators import (
    GeneratorSpec,
    generate_family,
    random_ksat,
    pigeonhole,
    graph_coloring,
    parity_chain,
    community_sat,
    cardinality_conflict,
    GENERATOR_FAMILIES,
)

__all__ = [
    "CNF",
    "Clause",
    "parse_dimacs",
    "parse_dimacs_file",
    "to_dimacs",
    "write_dimacs_file",
    "FormulaFeatures",
    "extract_features",
    "StructuralFeatures",
    "structural_features",
    "variable_incidence_graph",
    "community_labels",
    "Circuit",
    "miter",
    "ripple_carry_adder",
    "shuffle_clauses",
    "rename_variables",
    "flip_polarity",
    "duplicate_clauses",
    "compact_variables",
    "augment",
    "GeneratorSpec",
    "generate_family",
    "random_ksat",
    "pigeonhole",
    "graph_coloring",
    "parity_chain",
    "community_sat",
    "cardinality_conflict",
    "GENERATOR_FAMILIES",
]
