"""Structural analysis of CNF formulas via graph-theoretic measures.

Industrial SAT instances differ from uniform-random ones mainly in
*structure*: community organization, degree heterogeneity, and small
cores.  This module exposes those measures over the **variable
incidence graph** (VIG — variables as nodes, one edge per clause pair
co-occurrence), built on ``networkx``.  They complement the flat counts
in :mod:`repro.cnf.features` and drive tests that the community
generator really produces modular formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.cnf.formula import CNF


def variable_incidence_graph(cnf: CNF, max_clause_size: int = 10) -> "nx.Graph":
    """Build the VIG: variables adjacent when they share a clause.

    Each clause of size ``k`` contributes an edge of weight ``1/C(k,2)``
    between every pair of its variables, so big clauses do not dominate.
    Clauses longer than ``max_clause_size`` are skipped (standard VIG
    practice; their pairwise expansion is quadratic and uninformative).
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(1, cnf.num_vars + 1))
    for clause in cnf.clauses:
        variables = sorted({abs(lit) for lit in clause.literals})
        k = len(variables)
        if k < 2 or k > max_clause_size:
            continue
        weight = 1.0 / (k * (k - 1) / 2)
        for i in range(k):
            for j in range(i + 1, k):
                u, v = variables[i], variables[j]
                if graph.has_edge(u, v):
                    graph[u][v]["weight"] += weight
                else:
                    graph.add_edge(u, v, weight=weight)
    return graph


@dataclass(frozen=True)
class StructuralFeatures:
    """Graph-level structure measures of a formula's VIG."""

    num_vig_nodes: int
    num_vig_edges: int
    density: float
    mean_degree: float
    degree_assortativity: float
    clustering_coefficient: float
    modularity: float
    num_communities: int
    largest_component_fraction: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "num_vig_nodes": self.num_vig_nodes,
            "num_vig_edges": self.num_vig_edges,
            "density": self.density,
            "mean_degree": self.mean_degree,
            "degree_assortativity": self.degree_assortativity,
            "clustering_coefficient": self.clustering_coefficient,
            "modularity": self.modularity,
            "num_communities": self.num_communities,
            "largest_component_fraction": self.largest_component_fraction,
        }


def structural_features(cnf: CNF, max_clause_size: int = 10) -> StructuralFeatures:
    """Compute :class:`StructuralFeatures` (total on degenerate inputs)."""
    graph = variable_incidence_graph(cnf, max_clause_size=max_clause_size)
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n == 0:
        return StructuralFeatures(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)

    degrees = [d for _, d in graph.degree()]
    mean_degree = sum(degrees) / n
    density = nx.density(graph)
    try:
        import numpy as np

        with np.errstate(invalid="ignore", divide="ignore"):
            assortativity = float(nx.degree_assortativity_coefficient(graph))
        if assortativity != assortativity:  # NaN for regular graphs
            assortativity = 0.0
    except (ValueError, ZeroDivisionError):
        assortativity = 0.0
    clustering = float(nx.average_clustering(graph)) if m else 0.0

    if m:
        communities = nx.algorithms.community.greedy_modularity_communities(
            graph, weight="weight"
        )
        modularity = float(
            nx.algorithms.community.modularity(graph, communities, weight="weight")
        )
        num_communities = len(communities)
    else:
        modularity = 0.0
        num_communities = n

    components = list(nx.connected_components(graph))
    largest = max((len(c) for c in components), default=0)

    return StructuralFeatures(
        num_vig_nodes=n,
        num_vig_edges=m,
        density=density,
        mean_degree=mean_degree,
        degree_assortativity=assortativity,
        clustering_coefficient=clustering,
        modularity=modularity,
        num_communities=num_communities,
        largest_component_fraction=largest / n,
    )


def community_labels(cnf: CNF, max_clause_size: int = 10) -> List[int]:
    """Greedy-modularity community id per variable (index 0 unused)."""
    graph = variable_incidence_graph(cnf, max_clause_size=max_clause_size)
    labels = [0] * (cnf.num_vars + 1)
    if graph.number_of_edges() == 0:
        return labels
    communities = nx.algorithms.community.greedy_modularity_communities(
        graph, weight="weight"
    )
    for community_id, members in enumerate(communities):
        for var in members:
            labels[var] = community_id
    return labels
