"""Seeded CNF instance generators.

These families stand in for the SAT Competition 2016-2022 main-track
benchmarks used by the paper (unavailable offline).  The mix deliberately
spans the axes that make clause-deletion-policy choice instance-dependent:

* **random k-SAT** near the phase transition — low structure, glue-driven
  deletion works well;
* **pigeonhole** — provably hard unsatisfiable instances with dense
  symmetric conflicts;
* **graph colouring** — structured constraints over sparse graphs;
* **parity (XOR) chains** — long propagation chains where the paper's
  propagation-frequency metric is most informative;
* **community-structured SAT** — modular "industrial-like" formulas with
  skewed variable participation;
* **cardinality conflicts** — sequential-counter encodings with heavy unit
  propagation.

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cnf.formula import CNF
from repro.cnf.encodings import at_most_k


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


# ---------------------------------------------------------------------------
# Random k-SAT
# ---------------------------------------------------------------------------

def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int = 0,
) -> CNF:
    """Uniform random k-SAT: each clause draws ``k`` distinct variables and
    independent random polarities.  At clause/variable ratio ~4.26 (k=3) the
    instances sit at the satisfiability phase transition.
    """
    if num_vars < k:
        raise ValueError(f"need at least k={k} variables, got {num_vars}")
    rng = _rng(seed)
    variables = range(1, num_vars + 1)
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, k)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    cnf = CNF(clauses, num_vars=num_vars)
    cnf.comments.append(f"random_ksat n={num_vars} m={num_clauses} k={k} seed={seed}")
    return cnf


# ---------------------------------------------------------------------------
# Pigeonhole principle PHP(holes+1, holes): unsatisfiable
# ---------------------------------------------------------------------------

def pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): ``holes+1`` pigeons into ``holes`` holes.

    Variable ``x(p, h)`` means pigeon ``p`` sits in hole ``h``.  Each pigeon
    must sit somewhere and no two pigeons share a hole — unsatisfiable, with
    resolution proofs exponential in ``holes``.
    """
    if holes < 1:
        raise ValueError("need at least one hole")
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses: List[List[int]] = []
    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    cnf = CNF(clauses, num_vars=pigeons * holes)
    cnf.comments.append(f"pigeonhole holes={holes}")
    return cnf


# ---------------------------------------------------------------------------
# Graph colouring
# ---------------------------------------------------------------------------

def graph_coloring(
    num_nodes: int,
    num_colors: int,
    edge_prob: float = 0.5,
    seed: int = 0,
    mode: str = "gnp",
) -> CNF:
    """k-colourability of a random graph.

    Variable ``x(v, c)`` means node ``v`` gets colour ``c``.  Each node gets
    at least one colour, at most one colour, and adjacent nodes differ.

    Two graph models:

    * ``"gnp"`` — Erdős–Rényi G(n, p) with ``p = edge_prob``.  Near the
      colourability threshold these are usually *easy* for CDCL (small
      uncolourable subgraphs appear quickly).
    * ``"flat"`` — DIMACS-style *flat* graphs: nodes are secretly
      partitioned into ``num_colors`` classes and edges are only drawn
      between classes, so the instance is guaranteed colourable but the
      hidden colouring is hard to find.  ``edge_prob`` is interpreted as
      edges-per-node (e.g. 2.3 for hard flat 3-colouring).
    """
    if num_colors < 1:
        raise ValueError("need at least one colour")
    if mode not in ("gnp", "flat"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = _rng(seed)

    def var(v: int, c: int) -> int:
        return v * num_colors + c + 1

    clauses: List[List[int]] = []
    for v in range(num_nodes):
        clauses.append([var(v, c) for c in range(num_colors)])
        for c1 in range(num_colors):
            for c2 in range(c1 + 1, num_colors):
                clauses.append([-var(v, c1), -var(v, c2)])

    edges: List[Tuple[int, int]] = []
    if mode == "gnp":
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                if rng.random() < edge_prob:
                    edges.append((u, v))
    else:
        hidden = [v % num_colors for v in range(num_nodes)]
        num_edges = int(edge_prob * num_nodes)
        seen = set()
        attempts = 0
        while len(edges) < num_edges and attempts < 50 * num_edges:
            attempts += 1
            u = rng.randrange(num_nodes)
            v = rng.randrange(num_nodes)
            if u == v or hidden[u] == hidden[v]:
                continue
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            edges.append(key)

    for u, v in edges:
        for c in range(num_colors):
            clauses.append([-var(u, c), -var(v, c)])
    cnf = CNF(clauses, num_vars=num_nodes * num_colors)
    cnf.comments.append(
        f"graph_coloring nodes={num_nodes} colors={num_colors} "
        f"p={edge_prob} mode={mode} seed={seed}"
    )
    return cnf


# ---------------------------------------------------------------------------
# Parity (XOR) chains
# ---------------------------------------------------------------------------

def _xor_clauses(literals: Sequence[int], parity: int) -> List[List[int]]:
    """CNF clauses asserting XOR of ``literals`` equals ``parity`` (0/1).

    Direct expansion: every sign pattern with the wrong parity of negations
    is excluded.  Only used on small literal groups (<= 4).
    """
    n = len(literals)
    clauses = []
    for mask in range(1 << n):
        # mask bit i set -> literal i is TRUE in the assignment we exclude.
        ones = bin(mask).count("1")
        if ones % 2 != parity:
            clause = []
            for i, lit in enumerate(literals):
                truthy = bool(mask >> i & 1)
                # exclude the assignment: add negation of each fixed literal
                clause.append(-lit if truthy else lit)
            clauses.append(clause)
    return clauses


def parity_chain(
    num_vars: int,
    chain_length: int = 3,
    parity: int = 1,
    seed: int = 0,
    contradiction: Optional[bool] = None,
) -> CNF:
    """Chained XOR (parity) constraints — Tseitin-style instances.

    Builds *two* parity chains over the same ``num_vars`` inputs, each
    folding the inputs (in an independent shuffled order) into a running
    accumulator via ``chain_length``-ary XOR blocks with fresh auxiliary
    variables.  With ``contradiction`` the second chain asserts the
    *opposite* global parity — the instance is unsatisfiable and the
    refutation must implicitly derive the parity argument, which is hard
    for resolution-based solvers.  Without it both chains agree and the
    instance is satisfiable.  Either way, the XOR blocks create the long
    unit-propagation cascades and skewed per-variable propagation
    frequencies motivating Figure 3.

    ``contradiction=None`` picks randomly (seeded) with probability 1/2.
    """
    if num_vars < 2:
        raise ValueError("need at least two variables")
    if parity not in (0, 1):
        raise ValueError("parity must be 0 or 1")
    rng = _rng(seed)
    if contradiction is None:
        contradiction = rng.random() < 0.5
    next_var = num_vars + 1
    clauses: List[List[int]] = []

    def add_chain(target_parity: int) -> None:
        nonlocal next_var
        inputs = list(range(1, num_vars + 1))
        rng.shuffle(inputs)
        acc = inputs[0]
        idx = 1
        while idx < len(inputs):
            group = inputs[idx : idx + max(1, chain_length - 1)]
            idx += len(group)
            aux = next_var
            next_var += 1
            # aux <-> XOR(acc, *group)  ==  XOR(acc, *group, aux) = 0
            clauses.extend(_xor_clauses([acc] + group + [aux], 0))
            acc = aux
        clauses.append([acc if target_parity == 1 else -acc])

    add_chain(parity)
    add_chain(1 - parity if contradiction else parity)

    cnf = CNF(clauses, num_vars=next_var - 1)
    cnf.comments.append(
        f"parity_chain n={num_vars} len={chain_length} parity={parity} "
        f"contradiction={contradiction} seed={seed}"
    )
    return cnf


# ---------------------------------------------------------------------------
# Community-structured ("industrial-like") SAT
# ---------------------------------------------------------------------------

def community_sat(
    num_communities: int,
    vars_per_community: int,
    clauses_per_community: int,
    inter_clause_fraction: float = 0.1,
    k: int = 3,
    seed: int = 0,
) -> CNF:
    """Modular random SAT with community structure.

    Most clauses draw all variables from a single community; a fraction
    bridges two communities.  Industrial instances exhibit exactly this
    modularity, and it produces the skewed variable-participation profile
    that distinguishes the two deletion policies.
    """
    if vars_per_community < k:
        raise ValueError(f"each community needs at least k={k} variables")
    rng = _rng(seed)
    total_vars = num_communities * vars_per_community

    def community_vars(c: int) -> range:
        start = c * vars_per_community + 1
        return range(start, start + vars_per_community)

    clauses: List[List[int]] = []
    for c in range(num_communities):
        local = list(community_vars(c))
        for _ in range(clauses_per_community):
            if rng.random() < inter_clause_fraction and num_communities > 1:
                other = rng.randrange(num_communities - 1)
                if other >= c:
                    other += 1
                pool = local + list(community_vars(other))
            else:
                pool = local
            chosen = rng.sample(pool, k)
            clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    cnf = CNF(clauses, num_vars=total_vars)
    cnf.comments.append(
        f"community_sat comms={num_communities} vpc={vars_per_community} "
        f"cpc={clauses_per_community} inter={inter_clause_fraction} seed={seed}"
    )
    return cnf


# ---------------------------------------------------------------------------
# Cardinality conflict (sequential counter encoding)
# ---------------------------------------------------------------------------

def cardinality_conflict(
    num_vars: int,
    bound: Optional[int] = None,
    overconstrained: bool = True,
    seed: int = 0,
) -> CNF:
    """At-most-``bound`` via sequential counters, plus at-least constraints.

    With ``overconstrained`` the at-least side demands ``bound + 1`` true
    inputs, yielding an unsatisfiable instance whose refutation exercises
    long unit-propagation chains through the counter registers.  Without it
    the instance is satisfiable but propagation-heavy.
    """
    if num_vars < 3:
        raise ValueError("need at least three variables")
    rng = _rng(seed)
    if bound is None:
        bound = max(1, num_vars // 3)
    bound = min(bound, num_vars - 1)
    inputs = list(range(1, num_vars + 1))
    clauses, next_var = at_most_k(inputs, bound, num_vars + 1)

    demand = bound + 1 if overconstrained else max(1, bound - 1)
    # at-least-demand == at-most-(n - demand) over the negations
    neg_inputs = [-v for v in inputs]
    more, next_var = at_most_k(neg_inputs, num_vars - demand, next_var)
    clauses.extend(more)

    # A sprinkling of random ternary clauses to break symmetry.
    for _ in range(num_vars):
        chosen = rng.sample(inputs, 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])

    cnf = CNF(clauses, num_vars=next_var - 1)
    cnf.comments.append(
        f"cardinality_conflict n={num_vars} bound={bound} "
        f"over={overconstrained} seed={seed}"
    )
    return cnf


# ---------------------------------------------------------------------------
# Family registry and dataset synthesis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorSpec:
    """A named, parameterized generator call (reproducible via ``seed``)."""

    family: str
    params: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)
    seed: int = 0

    def build(self) -> CNF:
        factory = GENERATOR_FAMILIES[self.family]
        kwargs = dict(self.params)
        if self.family != "pigeonhole":
            kwargs["seed"] = self.seed
        return factory(**kwargs)

    @property
    def name(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inner})#s{self.seed}"


GENERATOR_FAMILIES: Dict[str, Callable[..., CNF]] = {
    "random_ksat": random_ksat,
    "pigeonhole": pigeonhole,
    "graph_coloring": graph_coloring,
    "parity_chain": parity_chain,
    "community_sat": community_sat,
    "cardinality_conflict": cardinality_conflict,
}


def generate_family(
    family: str,
    count: int,
    base_seed: int = 0,
    **params: object,
) -> List[CNF]:
    """Generate ``count`` instances of one family with consecutive seeds."""
    specs = [
        GeneratorSpec(family, tuple(sorted(params.items())), base_seed + i)
        for i in range(count)
    ]
    return [spec.build() for spec in specs]
