"""Formula transformations: renaming, shuffling, polarity flips, compaction.

Satisfiability is invariant under (a) permuting clause order, (b)
renaming variables, and (c) flipping the polarity of any variable subset
— the classic symmetries of CNF.  These transforms serve two purposes:

* **data augmentation** for the learning pipeline (a classifier should
  not change its answer under any of them);
* **metamorphic testing** of the solver (status must be preserved; a
  model of the transformed formula must map back to the original).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.cnf.formula import CNF


def shuffle_clauses(cnf: CNF, seed: int = 0) -> CNF:
    """Permute clause order (literal order inside clauses is kept)."""
    rng = random.Random(seed)
    clauses = [list(c.literals) for c in cnf.clauses]
    rng.shuffle(clauses)
    return CNF(clauses, num_vars=cnf.num_vars, comments=list(cnf.comments))


def rename_variables(cnf: CNF, mapping: Optional[Dict[int, int]] = None, seed: int = 0) -> CNF:
    """Apply a variable permutation; a random one is drawn when omitted.

    ``mapping`` must be a bijection on ``1..num_vars``.
    """
    if mapping is None:
        rng = random.Random(seed)
        targets = list(range(1, cnf.num_vars + 1))
        rng.shuffle(targets)
        mapping = {v: targets[v - 1] for v in range(1, cnf.num_vars + 1)}
    else:
        domain = set(mapping)
        image = set(mapping.values())
        expected = set(range(1, cnf.num_vars + 1))
        if domain != expected or image != expected:
            raise ValueError("mapping must be a permutation of 1..num_vars")
    clauses = [
        [mapping[abs(lit)] * (1 if lit > 0 else -1) for lit in c.literals]
        for c in cnf.clauses
    ]
    return CNF(clauses, num_vars=cnf.num_vars, comments=list(cnf.comments))


def flip_polarity(cnf: CNF, variables: Optional[Sequence[int]] = None, seed: int = 0) -> CNF:
    """Negate every occurrence of the given variables (random half if omitted).

    A model of the flipped formula maps back by inverting the flipped
    variables' values.
    """
    if variables is None:
        rng = random.Random(seed)
        variables = [v for v in range(1, cnf.num_vars + 1) if rng.random() < 0.5]
    flipped = set(variables)
    if any(v < 1 or v > cnf.num_vars for v in flipped):
        raise ValueError("variables out of range")
    clauses = [
        [-lit if abs(lit) in flipped else lit for lit in c.literals]
        for c in cnf.clauses
    ]
    out = CNF(clauses, num_vars=cnf.num_vars, comments=list(cnf.comments))
    return out


def duplicate_clauses(cnf: CNF, fraction: float = 0.25, seed: int = 0) -> CNF:
    """Append copies of a random clause subset (satisfiability invariant).

    Conjunction is idempotent, so repeating clauses never changes the
    set of models — but it does perturb watch-list layout, clause-db
    ordering, and deletion-policy scores, which makes duplication a
    useful metamorphic mutation for differential fuzzing.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = random.Random(seed)
    clauses = [list(c.literals) for c in cnf.clauses]
    extras = [list(c) for c in clauses if rng.random() < fraction]
    return CNF(clauses + extras, num_vars=cnf.num_vars, comments=list(cnf.comments))


def compact_variables(cnf: CNF) -> CNF:
    """Renumber so that used variables become 1..k (gaps removed)."""
    used = sorted(cnf.variables())
    mapping = {old: new for new, old in enumerate(used, start=1)}
    clauses = [
        [mapping[abs(lit)] * (1 if lit > 0 else -1) for lit in c.literals]
        for c in cnf.clauses
    ]
    return CNF(clauses, num_vars=len(used), comments=list(cnf.comments))


def augment(cnf: CNF, seed: int = 0) -> CNF:
    """One random symmetry-preserving augmentation (rename+flip+shuffle)."""
    step1 = rename_variables(cnf, seed=seed)
    step2 = flip_polarity(step1, seed=seed + 1)
    return shuffle_clauses(step2, seed=seed + 2)


def map_model_back(
    model: List[Optional[bool]],
    mapping: Dict[int, int],
    flipped: Sequence[int] = (),
) -> List[Optional[bool]]:
    """Invert :func:`rename_variables` (+ optional flips) on a model.

    ``mapping`` maps original variable -> transformed variable;
    ``flipped`` lists *transformed* variables whose polarity was negated
    after renaming.  Returns a model indexed by original variables.
    """
    flipped_set = set(flipped)
    out: List[Optional[bool]] = [None] * (len(model))
    for original, transformed in mapping.items():
        value = model[transformed]
        if value is not None and transformed in flipped_set:
            value = not value
        out[original] = value
    return out
