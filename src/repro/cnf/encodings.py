"""Tseitin encoding of Boolean circuits to CNF.

The paper motivates SAT by circuit verification; this module provides
the bridge: build a circuit from gates, get an equisatisfiable CNF via
the Tseitin transformation, and (for the classic verification workload)
generate *miter* instances that check the equivalence of two circuits —
UNSAT iff the circuits agree on every input.

Example::

    c = Circuit()
    a, b = c.input("a"), c.input("b")
    s = c.xor(a, b)
    c.set_output(s)
    cnf = c.to_cnf(assert_output=True)   # SAT iff some input makes s true
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cnf.formula import CNF


@dataclass(frozen=True)
class Gate:
    """One gate: an operator over already-defined signal literals."""

    kind: str  # "and" | "or" | "xor" | "not" | "ite"
    output: int  # positive variable id of the gate output
    inputs: Tuple[int, ...]  # signed literals


class Circuit:
    """A combinational circuit with named inputs and one output."""

    def __init__(self) -> None:
        self._next_var = 1
        self._inputs: Dict[str, int] = {}
        self._gates: List[Gate] = []
        self._output: Optional[int] = None

    # -- construction -----------------------------------------------------

    def input(self, name: str) -> int:
        """Declare (or fetch) a named input; returns its positive literal."""
        if name in self._inputs:
            return self._inputs[name]
        var = self._fresh()
        self._inputs[name] = var
        return var

    def _fresh(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    def _gate(self, kind: str, inputs: Sequence[int]) -> int:
        for lit in inputs:
            if lit == 0 or abs(lit) >= self._next_var:
                raise ValueError(f"undefined signal {lit}")
        out = self._fresh()
        self._gates.append(Gate(kind=kind, output=out, inputs=tuple(inputs)))
        return out

    def and_(self, *inputs: int) -> int:
        """AND of two or more signals."""
        if len(inputs) < 2:
            raise ValueError("and_ needs at least two inputs")
        return self._gate("and", inputs)

    def or_(self, *inputs: int) -> int:
        """OR of two or more signals."""
        if len(inputs) < 2:
            raise ValueError("or_ needs at least two inputs")
        return self._gate("or", inputs)

    def xor(self, a: int, b: int) -> int:
        return self._gate("xor", (a, b))

    def not_(self, a: int) -> int:
        """Negation is free: just flip the literal."""
        if a == 0 or abs(a) >= self._next_var:
            raise ValueError(f"undefined signal {a}")
        return -a

    def ite(self, cond: int, then: int, otherwise: int) -> int:
        """If-then-else (multiplexer)."""
        return self._gate("ite", (cond, then, otherwise))

    def set_output(self, literal: int) -> None:
        if literal == 0 or abs(literal) >= self._next_var:
            raise ValueError(f"undefined signal {literal}")
        self._output = literal

    # -- properties ---------------------------------------------------------

    @property
    def inputs(self) -> Dict[str, int]:
        return dict(self._inputs)

    @property
    def output(self) -> int:
        if self._output is None:
            raise ValueError("circuit output not set")
        return self._output

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    # -- encoding ----------------------------------------------------------

    def to_cnf(self, assert_output: bool = True) -> CNF:
        """Tseitin-encode the circuit.

        With ``assert_output`` the output literal is asserted true, so
        the CNF is satisfiable iff some input assignment activates the
        output.
        """
        clauses: List[List[int]] = []
        for gate in self._gates:
            clauses.extend(_gate_clauses(gate))
        if assert_output:
            clauses.append([self.output])
        return CNF(clauses, num_vars=self.num_vars)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Simulate the circuit on named input values."""
        values: Dict[int, bool] = {}
        for name, var in self._inputs.items():
            if name not in assignment:
                raise ValueError(f"missing input {name!r}")
            values[var] = assignment[name]

        def value_of(lit: int) -> bool:
            v = values[abs(lit)]
            return v if lit > 0 else not v

        for gate in self._gates:
            ins = [value_of(lit) for lit in gate.inputs]
            if gate.kind == "and":
                out = all(ins)
            elif gate.kind == "or":
                out = any(ins)
            elif gate.kind == "xor":
                out = ins[0] != ins[1]
            elif gate.kind == "ite":
                out = ins[1] if ins[0] else ins[2]
            else:  # pragma: no cover - constructor prevents this
                raise AssertionError(f"unknown gate {gate.kind}")
            values[gate.output] = out
        return value_of(self.output)


def _gate_clauses(gate: Gate) -> List[List[int]]:
    """Tseitin clauses asserting ``gate.output <-> kind(inputs)``."""
    out = gate.output
    ins = gate.inputs
    if gate.kind == "and":
        clauses = [[-out, lit] for lit in ins]
        clauses.append([out] + [-lit for lit in ins])
        return clauses
    if gate.kind == "or":
        clauses = [[out, -lit] for lit in ins]
        clauses.append([-out] + list(ins))
        return clauses
    if gate.kind == "xor":
        a, b = ins
        return [
            [-out, a, b],
            [-out, -a, -b],
            [out, -a, b],
            [out, a, -b],
        ]
    if gate.kind == "ite":
        c, t, e = ins
        return [
            [-out, -c, t],
            [-out, c, e],
            [out, -c, -t],
            [out, c, -e],
        ]
    raise AssertionError(f"unknown gate {gate.kind}")


# ---------------------------------------------------------------------------
# Verification workloads
# ---------------------------------------------------------------------------

def miter(circuit_a: Circuit, circuit_b: Circuit) -> CNF:
    """Equivalence-checking miter of two circuits over the same inputs.

    The result is satisfiable iff some input assignment makes the two
    outputs differ — i.e. UNSAT certifies equivalence.  Input names must
    match exactly; variables of ``circuit_b`` are shifted past
    ``circuit_a``'s and its inputs unified with ``circuit_a``'s.
    """
    if set(circuit_a.inputs) != set(circuit_b.inputs):
        raise ValueError("circuits must share the same input names")

    offset = circuit_a.num_vars
    remap: Dict[int, int] = {}
    for name, var_b in circuit_b.inputs.items():
        remap[var_b] = circuit_a.inputs[name]

    def map_lit(lit: int) -> int:
        var = abs(lit)
        mapped = remap.get(var, var + offset)
        return mapped if lit > 0 else -mapped

    clauses: List[List[int]] = []
    for gate in circuit_a._gates:
        clauses.extend(_gate_clauses(gate))
    for gate in circuit_b._gates:
        shifted = Gate(
            kind=gate.kind,
            output=map_lit(gate.output),
            inputs=tuple(map_lit(lit) for lit in gate.inputs),
        )
        clauses.extend(_gate_clauses(shifted))

    # XOR the two outputs and assert the difference.
    out_a = circuit_a.output
    out_b = map_lit(circuit_b.output)
    diff = offset + circuit_b.num_vars + 1
    clauses.extend(
        _gate_clauses(Gate(kind="xor", output=diff, inputs=(out_a, out_b)))
    )
    clauses.append([diff])
    return CNF(clauses, num_vars=diff)


# ---------------------------------------------------------------------------
# Cardinality constraints (sequential counter / Sinz encoding)
# ---------------------------------------------------------------------------

def at_most_k(
    literals: Sequence[int], k: int, next_var: int
) -> Tuple[List[List[int]], int]:
    """Sinz's sequential-counter encoding of ``sum(literals) <= k``.

    ``next_var`` is the first free auxiliary variable; returns the
    clauses plus the next free variable after the encoding.  ``k >= n``
    needs no clauses; ``k == 0`` forces every literal false.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if next_var <= max((abs(lit) for lit in literals), default=0):
        raise ValueError("next_var must be beyond all input variables")
    n = len(literals)
    if k >= n:
        return [], next_var
    if k == 0:
        return [[-lit] for lit in literals], next_var

    def register(i: int, j: int) -> int:
        # s(i, j): "at least j of the first i+1 literals are true".
        return next_var + i * k + (j - 1)

    x = list(literals)
    clauses: List[List[int]] = [[-x[0], register(0, 1)]]
    for j in range(2, k + 1):
        clauses.append([-register(0, j)])
    for i in range(1, n - 1):
        clauses.append([-x[i], register(i, 1)])
        clauses.append([-register(i - 1, 1), register(i, 1)])
        for j in range(2, k + 1):
            clauses.append([-x[i], -register(i - 1, j - 1), register(i, j)])
            clauses.append([-register(i - 1, j), register(i, j)])
        clauses.append([-x[i], -register(i - 1, k)])
    clauses.append([-x[n - 1], -register(n - 2, k)])
    return clauses, next_var + (n - 1) * k


def at_least_k(
    literals: Sequence[int], k: int, next_var: int
) -> Tuple[List[List[int]], int]:
    """``sum(literals) >= k`` via at-most-(n-k) over the negations."""
    n = len(literals)
    if k <= 0:
        return [], next_var
    if k > n:
        return [[]], next_var  # unsatisfiable: empty clause
    if k == 1:
        return [list(literals)], next_var
    return at_most_k([-lit for lit in literals], n - k, next_var)


def exactly_k(
    literals: Sequence[int], k: int, next_var: int
) -> Tuple[List[List[int]], int]:
    """``sum(literals) == k`` — the conjunction of the two bounds."""
    upper, next_var = at_most_k(literals, k, next_var)
    lower, next_var = at_least_k(literals, k, next_var)
    return upper + lower, next_var


def at_most_one(literals: Sequence[int]) -> List[List[int]]:
    """Pairwise at-most-one (no auxiliaries; quadratic but tiny for small n)."""
    out: List[List[int]] = []
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            out.append([-literals[i], -literals[j]])
    return out


def ripple_carry_adder(bits: int, seed_name: str = "") -> Circuit:
    """An n-bit ripple-carry adder circuit (output = MSB carry-out).

    A standard verification benchmark component; two structurally
    different adders make a classic equivalence-checking miter.
    """
    if bits < 1:
        raise ValueError("need at least one bit")
    circuit = Circuit()
    a = [circuit.input(f"a{i}") for i in range(bits)]
    b = [circuit.input(f"b{i}") for i in range(bits)]
    carry: Optional[int] = None
    for i in range(bits):
        axb = circuit.xor(a[i], b[i])
        if carry is None:
            carry = circuit.and_(a[i], b[i])
        else:
            circuit_sum = circuit.xor(axb, carry)  # noqa: F841 (sum unused)
            carry = circuit.or_(
                circuit.and_(a[i], b[i]), circuit.and_(axb, carry)
            )
    circuit.set_output(carry)
    return circuit
