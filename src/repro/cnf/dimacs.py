"""DIMACS CNF reader and writer.

Implements the standard ``p cnf <vars> <clauses>`` format used by SAT
competitions and every mainstream solver, including multi-line clauses,
comment lines, and lenient handling of a missing or inconsistent header.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

from repro.cnf.formula import CNF


class DimacsError(ValueError):
    """Raised when a DIMACS document is malformed."""


def parse_dimacs(text: str, strict: bool = False) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    A clause is any run of non-zero integers terminated by ``0``; clauses
    may span multiple lines.  When ``strict`` is true, the header must be
    present and the declared clause count must match the parsed count.
    """
    comments: List[str] = []
    header_vars = 0
    header_clauses = -1
    clauses: List[List[int]] = []
    current: List[int] = []
    saw_header = False

    for line_no, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            comments.append(line[1:].lstrip())
            continue
        if line.startswith("p"):
            if saw_header:
                raise DimacsError(f"line {line_no}: duplicate header")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_no}: malformed header {line!r}")
            try:
                header_vars = int(parts[2])
                header_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {line_no}: non-integer header field") from exc
            if header_vars < 0 or header_clauses < 0:
                raise DimacsError(f"line {line_no}: negative header field")
            saw_header = True
            continue
        if line.startswith("%"):
            # Some competition files end with "%\n0"; stop parsing there.
            break
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"line {line_no}: bad token {token!r}") from exc
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)

    if current:
        if strict:
            raise DimacsError("final clause not terminated by 0")
        clauses.append(current)

    if strict:
        if not saw_header:
            raise DimacsError("missing 'p cnf' header")
        if header_clauses != len(clauses):
            raise DimacsError(
                f"header declares {header_clauses} clauses, parsed {len(clauses)}"
            )

    return CNF(clauses, num_vars=header_vars, comments=comments)


def parse_dimacs_file(path: Union[str, Path], strict: bool = False) -> CNF:
    """Read and parse a DIMACS file from disk."""
    return parse_dimacs(Path(path).read_text(), strict=strict)


def to_dimacs(cnf: CNF, include_comments: bool = True) -> str:
    """Serialize a :class:`CNF` to DIMACS text."""
    lines: List[str] = []
    if include_comments:
        lines.extend(f"c {comment}" for comment in cnf.comments)
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause.literals) + " 0")
    return "\n".join(lines) + "\n"


def write_dimacs_file(cnf: CNF, path: Union[str, Path]) -> None:
    """Write a :class:`CNF` to a DIMACS file."""
    Path(path).write_text(to_dimacs(cnf))
