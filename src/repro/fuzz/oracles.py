"""Pluggable oracle bank for differential solver testing.

An *oracle* cross-checks one solve result against an independent source
of truth and reports every disagreement as a structured
:class:`Discrepancy`.  The bank bundles the repository's full set of
cross-checks:

* :class:`ModelCheckOracle` — a SAT answer must come with a model that
  actually satisfies the formula;
* :class:`BruteForceOracle` — exhaustive enumeration on small formulas;
* :class:`DPLLOracle` — the plain recursive DPLL reference;
* :class:`PolicyAgreementOracle` — both clause-deletion policies must
  agree on the verdict (the label-poisoning guard: a policy that flips
  SAT/UNSAT corrupts every Sec. 5.1 training label downstream);
* :class:`PreprocessingOracle` — simplification must be
  equisatisfiable and its reconstructed models must check out;
* :class:`DratOracle` — UNSAT answers must come with a checkable DRAT
  refutation;
* :class:`MetamorphicOracle` — satisfiability-preserving transforms
  (variable renaming, polarity flips, clause permutation and
  duplication) must not flip the verdict.

All solving goes through an :class:`OracleContext`, which memoizes
results per (formula, policy) and lets tests inject a deliberately
buggy solver via ``solve_fn`` — the hook the shrinker tests use to
prove that an injected soundness fault is found, minimized, and
replayed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cnf.dimacs import to_dimacs
from repro.cnf.formula import CNF
from repro.cnf.transforms import (
    duplicate_clauses,
    flip_polarity,
    rename_variables,
    shuffle_clauses,
)
from repro.policies.registry import get_policy
from repro.solver.drat import DratError, check_drat
from repro.solver.proof import ProofLog
from repro.solver.reference import brute_force_status, dpll_solve
from repro.solver.session import SolverSession
from repro.solver.solver import Solver, SolverConfig
from repro.solver.types import Model, Status

#: Default per-solve conflict budget (deterministic, unlike wall clock).
DEFAULT_BUDGET = 2000

#: ``solve_fn`` signature: (cnf, policy_name, max_conflicts, proof) ->
#: (status, model).  The ``proof`` argument is an optional
#: :class:`~repro.solver.proof.ProofLog` the callee should log into.
SolveFn = Callable[[CNF, str, int, Optional[ProofLog]], Tuple[Status, Optional[Model]]]


def formula_key(cnf: CNF) -> str:
    """Content hash of a formula (stable across object identity)."""
    return hashlib.sha256(to_dimacs(cnf).encode("utf-8")).hexdigest()


def default_solve_fn(
    cnf: CNF,
    policy: str = "default",
    max_conflicts: int = DEFAULT_BUDGET,
    proof: Optional[ProofLog] = None,
) -> Tuple[Status, Optional[Model]]:
    """Solve with the real CDCL engine (the production subject)."""
    result = Solver(cnf, policy=get_policy(policy), proof=proof).solve(
        max_conflicts=max_conflicts
    )
    return result.status, result.model


def make_solve_fn(core: str) -> SolveFn:
    """A :data:`SolveFn` pinned to one solver core (``object``/``arena``).

    Campaigns use this to fuzz a specific core; the returned callable
    has the exact subject-solver signature, so shrink predicates and
    corpus replays reproduce the same configuration.
    """

    def solve_fn(
        cnf: CNF,
        policy: str = "default",
        max_conflicts: int = DEFAULT_BUDGET,
        proof: Optional[ProofLog] = None,
    ) -> Tuple[Status, Optional[Model]]:
        result = Solver(
            cnf,
            policy=get_policy(policy),
            proof=proof,
            config=SolverConfig(core=core),
        ).solve(max_conflicts=max_conflicts)
        return result.status, result.model

    return solve_fn


@dataclass(frozen=True)
class Discrepancy:
    """One observed disagreement between the subject and an oracle.

    ``kind`` is a stable machine-readable label (``status-mismatch``,
    ``model-invalid``, ``proof-invalid``, ``metamorphic-flip``,
    ``oracle-crash``) used by the shrinker's failure predicate and by
    corpus manifests; ``detail`` is the human-readable explanation.
    """

    oracle: str
    kind: str
    case: str
    expected: str
    observed: str
    detail: str = ""

    def summary(self) -> str:
        """One-line rendering for CLI output and trace events."""
        line = (
            f"[{self.oracle}] {self.kind} on {self.case}: "
            f"expected {self.expected}, observed {self.observed}"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line

    def matches(self, other: "Discrepancy") -> bool:
        """True when ``other`` is the same failure mode (oracle + kind)."""
        return self.oracle == other.oracle and self.kind == other.kind


class OracleContext:
    """Solve memoization + configuration shared by one case's checks.

    ``solve_fn`` defaults to the real solver; tests inject buggy
    wrappers here.  ``prefill`` seeds the memo table with results
    computed elsewhere (the campaign's :class:`ParallelRunner` fan-out),
    keyed by ``(formula_key(cnf), policy)``.
    """

    def __init__(
        self,
        case: str = "",
        budget: int = DEFAULT_BUDGET,
        solve_fn: Optional[SolveFn] = None,
        prefill: Optional[Dict[Tuple[str, str], Tuple[Status, Optional[Model]]]] = None,
        brute_force_max_vars: int = 13,
        dpll_max_vars: int = 30,
    ):
        self.case = case
        self.budget = budget
        self.solve_fn: SolveFn = solve_fn or default_solve_fn
        self.brute_force_max_vars = brute_force_max_vars
        self.dpll_max_vars = dpll_max_vars
        self.solves = 0
        self._memo: Dict[Tuple[str, str], Tuple[Status, Optional[Model]]] = dict(
            prefill or {}
        )

    def solve(self, cnf: CNF, policy: str = "default") -> Tuple[Status, Optional[Model]]:
        """Memoized subject solve of ``cnf`` under ``policy``."""
        key = (formula_key(cnf), policy)
        if key not in self._memo:
            self._memo[key] = self.solve_fn(cnf, policy, self.budget, None)
            self.solves += 1
        return self._memo[key]

    def solve_core(
        self, cnf: CNF, core: str, assumptions: Sequence[int] = ()
    ) -> Tuple[Status, Optional[Model]]:
        """Memoized solve pinned to one solver core (default policy).

        Bypasses ``solve_fn`` deliberately: the core-agreement check
        compares the two real engines against each other, independent of
        whatever subject (possibly a fault-injected wrapper) the rest of
        the bank is exercising.  Memo keys are namespaced (``core:``,
        plus the assumption literals when given) so they never collide
        with per-policy subject results.
        """
        assumed = tuple(int(lit) for lit in assumptions)
        tag = f"core:{core}"
        if assumed:
            tag += ":" + ",".join(map(str, assumed))
        key = (formula_key(cnf), tag)
        if key not in self._memo:
            result = Solver(cnf, config=SolverConfig(core=core)).solve(
                assumptions=assumed, max_conflicts=self.budget
            )
            self._memo[key] = (result.status, result.model)
            self.solves += 1
        return self._memo[key]


class Oracle:
    """Base class: one independent cross-check of a solve result."""

    #: Stable oracle identifier used in discrepancies and manifests.
    name = "oracle"

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Return every disagreement found on ``cnf`` (empty when clean)."""
        raise NotImplementedError

    def _mismatch(
        self,
        ctx: OracleContext,
        kind: str,
        expected: str,
        observed: str,
        detail: str = "",
    ) -> Discrepancy:
        """Shorthand constructor stamping this oracle's name and case."""
        return Discrepancy(
            oracle=self.name,
            kind=kind,
            case=ctx.case,
            expected=expected,
            observed=observed,
            detail=detail,
        )


class ModelCheckOracle(Oracle):
    """A SAT verdict must carry a model that satisfies the formula."""

    name = "model-check"

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Validate the subject's model whenever it claims SAT."""
        status, model = ctx.solve(cnf)
        if status is not Status.SATISFIABLE:
            return []
        if model is None:
            return [self._mismatch(ctx, "model-invalid", "model", "None",
                                   "SAT verdict without a model")]
        if not cnf.check_model(model):
            return [self._mismatch(ctx, "model-invalid", "satisfying model",
                                   "falsified clause",
                                   "reported model does not satisfy the formula")]
        return []


class BruteForceOracle(Oracle):
    """Exhaustive enumeration on small formulas — the ground truth."""

    name = "brute-force"

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Compare a decided subject verdict against full enumeration."""
        if len(cnf.variables()) > ctx.brute_force_max_vars:
            return []
        status, _ = ctx.solve(cnf)
        if not status.decided:
            return []
        truth = brute_force_status(cnf, max_vars=ctx.brute_force_max_vars)
        if truth is not status:
            return [self._mismatch(ctx, "status-mismatch", truth.value, status.value)]
        return []


class DPLLOracle(Oracle):
    """Plain recursive DPLL as an independent complete procedure."""

    name = "dpll"

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Compare a decided subject verdict against the DPLL reference."""
        if len(cnf.variables()) > ctx.dpll_max_vars:
            return []
        status, _ = ctx.solve(cnf)
        if not status.decided:
            return []
        truth, _ = dpll_solve(cnf)
        if truth is not status:
            return [self._mismatch(ctx, "status-mismatch", truth.value, status.value)]
        return []


def derive_schedule(
    cnf: CNF, steps: int = 6, seed_key: Optional[str] = None
) -> List[Tuple[str, List[int]]]:
    """A deterministic incremental schedule derived from the formula.

    Returns ``("add", lits)`` / ``("solve", assumptions)`` steps (the
    format :func:`repro.solver.session.replay_schedule` consumes),
    seeded from the formula's content hash, so every independent caller
    — campaign, corpus replay, the session-smoke job — drives the exact
    same schedule for a given CNF.  The schedule always begins with an
    unassumed solve (the base verdict) and ends with an assumed one.
    """
    variables = sorted(cnf.variables())
    if not variables:
        return []
    rng = random.Random(int((seed_key or formula_key(cnf))[:16], 16))

    def assumption_set() -> List[int]:
        count = rng.randint(1, min(3, len(variables)))
        chosen = rng.sample(variables, count)
        return [var if rng.random() < 0.5 else -var for var in chosen]

    schedule: List[Tuple[str, List[int]]] = [("solve", [])]
    for _ in range(max(0, steps)):
        if rng.random() < 0.4:
            size = rng.randint(1, min(3, len(variables)))
            clause = [
                var if rng.random() < 0.5 else -var
                for var in rng.sample(variables, size)
            ]
            schedule.append(("add", clause))
        else:
            schedule.append(("solve", assumption_set()))
    schedule.append(("solve", assumption_set()))
    return schedule


class PolicyAgreementOracle(Oracle):
    """Two solver configurations must return the same verdict.

    ``mode="policies"`` (the default) solves under both clause-deletion
    policies: deletion changes *effort*, never *truth*, and a
    disagreement here is the exact soundness bug that silently poisons
    the paper's dual-policy labels.  ``mode="cores"`` instead solves
    with the object core and the arena core directly — the differential
    check that pins the flat-arena BCP engine to the reference
    object-graph engine.  Verdicts are only compared when both runs
    decided within budget — configuration legitimately shifts how far a
    budget reaches.

    In ``cores`` mode the one-shot comparison is followed by an
    *incremental* one: a deterministic add-clause/assumption schedule
    (:func:`derive_schedule`) is driven through a warm
    :class:`~repro.solver.session.SolverSession` on each core, and at
    every solve step the oracle demands

    * identical decided statuses across the two cores,
    * an arena status bit-identical to a fresh re-solve of the
      accumulated formula under the same assumptions (the warm state
      must never change an answer), and
    * a *consistent* failed-assumption core for every
      UNSAT-under-assumptions answer: the core is a subset of the
      assumptions, and the accumulated formula is still UNSAT under
      the core alone (``analyzeFinal`` cores are sound but not
      guaranteed subset-minimal, so minimality is not asserted).
    """

    MODES = ("policies", "cores")

    #: Formulas with more variables than this skip the incremental
    #: schedule (the one-shot comparison still runs) — schedules
    #: re-solve several times per case and fuzz formulas are small.
    schedule_max_vars = 120

    #: Random steps per derived schedule (plus the fixed first/last solve).
    schedule_steps = 6

    def __init__(self, mode: str = "policies"):
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.mode = mode
        self.name = "policy-agreement" if mode == "policies" else "core-agreement"
        #: Test hook: builds the per-core warm session the schedule
        #: drives.  Replacing it with a factory that returns a corrupted
        #: session proves the incremental checks actually detect bugs.
        self.session_factory: Callable[[CNF, str], SolverSession] = (
            lambda formula, core: SolverSession(
                formula.copy(), config=SolverConfig(core=core)
            )
        )

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Solve both configurations and compare decided verdicts."""
        if self.mode == "policies":
            left_name, right_name = "default", "frequency"
            left, _ = ctx.solve(cnf, "default")
            right, _ = ctx.solve(cnf, "frequency")
            detail = "deletion policies disagree on satisfiability"
        else:
            left_name, right_name = "object", "arena"
            left, _ = ctx.solve_core(cnf, "object")
            right, _ = ctx.solve_core(cnf, "arena")
            detail = "solver cores disagree on satisfiability"
        found: List[Discrepancy] = []
        if left.decided and right.decided and left is not right:
            found.append(self._mismatch(
                ctx, "status-mismatch",
                f"{left_name}={left.value}",
                f"{right_name}={right.value}",
                detail,
            ))
        if self.mode == "cores" and len(cnf.variables()) <= self.schedule_max_vars:
            found.extend(self._check_schedule(cnf, ctx))
        return found

    # -- the incremental cross-core battery --------------------------------

    def _check_schedule(
        self, cnf: CNF, ctx: OracleContext
    ) -> List[Discrepancy]:
        """Drive one derived schedule through both cores and cross-check."""
        schedule = derive_schedule(cnf, steps=self.schedule_steps)
        if not schedule:
            return []
        sessions = {
            core: self.session_factory(cnf, core)
            for core in ("object", "arena")
        }
        accumulated = cnf.copy()
        found: List[Discrepancy] = []
        for index, (op, lits) in enumerate(schedule):
            if op == "add":
                accumulated.add_clause(lits)
                for session in sessions.values():
                    session.add(*lits)
                continue
            results = {
                core: session.solve(
                    assumptions=lits, max_conflicts=ctx.budget
                )
                for core, session in sessions.items()
            }
            where = f"schedule step {index} (assumptions {lits})"
            left, right = results["object"].status, results["arena"].status
            if left.decided and right.decided and left is not right:
                found.append(self._mismatch(
                    ctx, "status-mismatch",
                    f"object={left.value}", f"arena={right.value}",
                    f"incremental cores disagree at {where}",
                ))
            fresh, _ = ctx.solve_core(accumulated, "arena", assumptions=lits)
            incremental = results["arena"].status
            if (
                fresh.decided
                and incremental.decided
                and fresh is not incremental
            ):
                found.append(self._mismatch(
                    ctx, "status-mismatch",
                    f"fresh={fresh.value}",
                    f"incremental={incremental.value}",
                    f"warm arena session diverged from a fresh re-solve "
                    f"at {where}",
                ))
            for core, result in results.items():
                found.extend(self._check_core_soundness(
                    ctx, accumulated, core, lits, result, where
                ))
        return found

    def _check_core_soundness(
        self,
        ctx: OracleContext,
        accumulated: CNF,
        core: str,
        assumptions: List[int],
        result,
        where: str,
    ) -> List[Discrepancy]:
        """Failed-assumption cores must be assumption subsets that still
        make the formula UNSAT (consistency; minimality not guaranteed)."""
        if result.status is not Status.UNSATISFIABLE or result.core is None:
            return []
        found: List[Discrepancy] = []
        if not set(result.core) <= set(assumptions):
            found.append(self._mismatch(
                ctx, "core-not-assumptions",
                f"subset of {assumptions}",
                f"{core} core {result.core}",
                f"failed-assumption core contains non-assumption "
                f"literals at {where}",
            ))
            return found
        status, _ = ctx.solve_core(
            accumulated, "arena", assumptions=result.core
        )
        if status is Status.SATISFIABLE:
            found.append(self._mismatch(
                ctx, "core-insufficient",
                "UNSAT under the failed-assumption core",
                "SATISFIABLE",
                f"{core} core {result.core} does not preserve "
                f"unsatisfiability at {where}",
            ))
        return found


class PreprocessingOracle(Oracle):
    """Simplification must be equisatisfiable with the input formula."""

    name = "preprocessing"

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Compare plain solving against preprocess-then-solve."""
        from repro.simplify import solve_with_preprocessing

        status, _ = ctx.solve(cnf)
        if not status.decided:
            return []
        pre = solve_with_preprocessing(cnf, max_conflicts=ctx.budget)
        if not pre.status.decided:
            return []
        if pre.status is not status:
            return [self._mismatch(
                ctx, "status-mismatch",
                f"plain={status.value}", f"preprocessed={pre.status.value}",
                "simplification changed satisfiability",
            )]
        if pre.status is Status.SATISFIABLE and (
            pre.model is None or not cnf.check_model(pre.model)
        ):
            return [self._mismatch(
                ctx, "model-invalid", "reconstructed satisfying model",
                "falsified clause",
                "model reconstruction after preprocessing failed",
            )]
        return []


class DratOracle(Oracle):
    """UNSAT answers must come with a checkable DRAT refutation."""

    name = "drat"

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Re-solve with proof logging and verify the refutation."""
        status, _ = ctx.solve(cnf)
        if status is not Status.UNSATISFIABLE:
            return []
        proof = ProofLog()
        proved_status, _ = ctx.solve_fn(cnf, "default", ctx.budget, proof)
        if proved_status is not Status.UNSATISFIABLE:
            return [self._mismatch(
                ctx, "status-mismatch", Status.UNSATISFIABLE.value,
                proved_status.value,
                "verdict changed between identical proof-logged runs",
            )]
        try:
            check_drat(cnf, proof.text())
        except DratError as exc:
            return [self._mismatch(
                ctx, "proof-invalid", "valid DRAT refutation", "DratError",
                str(exc),
            )]
        return []


class MetamorphicOracle(Oracle):
    """Satisfiability-preserving transforms must not flip the verdict.

    The mutation schedule is derived deterministically from the
    mutation seed, so a campaign that fanned the same mutants out
    through the parallel runner pre-fills the context's memo table and
    this oracle re-solves nothing.
    """

    name = "metamorphic"

    def __init__(self, mutants: int = 2, seed: int = 0):
        if mutants < 0:
            raise ValueError("mutants must be >= 0")
        self.mutants = mutants
        self.seed = seed

    def check(self, cnf: CNF, ctx: OracleContext) -> List[Discrepancy]:
        """Solve each derived mutant and compare decided verdicts."""
        status, _ = ctx.solve(cnf)
        if not status.decided:
            return []
        found: List[Discrepancy] = []
        for mutant_name, mutant in derive_mutants(cnf, self.seed, self.mutants):
            mutant_status, _ = ctx.solve(mutant)
            if mutant_status.decided and mutant_status is not status:
                found.append(self._mismatch(
                    ctx, "metamorphic-flip", status.value, mutant_status.value,
                    f"mutation {mutant_name} flipped the verdict",
                ))
        return found


#: The deterministic mutation cycle shared by campaigns and the
#: metamorphic oracle (order matters: both sides must derive the same
#: mutants for runner pre-fill to hit).
_MUTATION_KINDS: Tuple[str, ...] = ("rename", "flip", "shuffle", "duplicate")


def derive_mutants(
    cnf: CNF, seed: int, count: int
) -> List[Tuple[str, CNF]]:
    """Derive ``count`` satisfiability-preserving mutants of ``cnf``.

    Cycles through variable renaming, polarity flips, clause shuffling,
    and clause duplication with seeds derived from ``seed`` — fully
    deterministic, so independent callers agree on the exact mutants.
    """
    mutants: List[Tuple[str, CNF]] = []
    for i in range(count):
        kind = _MUTATION_KINDS[i % len(_MUTATION_KINDS)]
        sub_seed = seed * 1009 + i
        if kind == "rename":
            mutant = rename_variables(cnf, seed=sub_seed)
        elif kind == "flip":
            mutant = flip_polarity(cnf, seed=sub_seed)
        elif kind == "shuffle":
            mutant = shuffle_clauses(cnf, seed=sub_seed)
        else:
            mutant = duplicate_clauses(cnf, seed=sub_seed)
        mutants.append((f"{kind}#{i}", mutant))
    return mutants


def default_oracles(mutants: int = 2, mutation_seed: int = 0) -> List[Oracle]:
    """The full cross-check set, cheapest first."""
    return [
        ModelCheckOracle(),
        BruteForceOracle(),
        DPLLOracle(),
        PolicyAgreementOracle(),
        PolicyAgreementOracle(mode="cores"),
        MetamorphicOracle(mutants=mutants, seed=mutation_seed),
        PreprocessingOracle(),
        DratOracle(),
    ]


@dataclass
class OracleBank:
    """Runs a configurable oracle set and never lets one crash the hunt.

    An oracle that raises is itself a finding — soundness bugs often
    surface as assertion failures deep inside a cross-check — so
    exceptions become ``oracle-crash`` discrepancies instead of
    aborting the campaign.
    """

    oracles: List[Oracle] = field(default_factory=default_oracles)

    def names(self) -> List[str]:
        """Registered oracle names, in execution order."""
        return [oracle.name for oracle in self.oracles]

    def check(
        self,
        cnf: CNF,
        ctx: OracleContext,
        checks: Optional[Dict[str, int]] = None,
    ) -> List[Discrepancy]:
        """Run every oracle on ``cnf``; returns all discrepancies found.

        ``checks`` (optional) accumulates a per-oracle invocation count
        for campaign reports.
        """
        found: List[Discrepancy] = []
        for oracle in self.oracles:
            if checks is not None:
                checks[oracle.name] = checks.get(oracle.name, 0) + 1
            try:
                found.extend(oracle.check(cnf, ctx))
            except Exception as exc:  # noqa: BLE001 - a crash IS a finding
                found.append(Discrepancy(
                    oracle=oracle.name,
                    kind="oracle-crash",
                    case=ctx.case,
                    expected="clean check",
                    observed=type(exc).__name__,
                    detail=str(exc),
                ))
        return found
