"""Delta-debugging CNF minimizer and the replayable failure corpus.

When a fuzz campaign finds a discrepancy, the raw formula is rarely the
best artifact — a 400-clause community instance hides the six clauses
that actually trigger the bug.  :func:`shrink` runs ddmin-style clause
removal (Zeller's delta debugging specialized to CNF, the cnfdd
approach) followed by whole-variable removal, keeping every reduction
step only while the caller's *failure predicate* still holds, and is
fully deterministic.

:class:`FailureCorpus` turns a shrunk failure into a permanent,
replayable regression: a minimal DIMACS file plus a JSON manifest
recording the generator provenance, oracle, budget, and the exact CLI
replay command.  :func:`replay_entry` is that command's engine — it
re-runs the full oracle bank on the stored formula, so a fixed bug
stays fixed and a still-live bug reproduces from nothing but the
corpus directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cnf.dimacs import parse_dimacs_file, write_dimacs_file
from repro.cnf.formula import CNF
from repro.cnf.transforms import compact_variables
from repro.fuzz.oracles import (
    DEFAULT_BUDGET,
    Discrepancy,
    OracleBank,
    OracleContext,
    SolveFn,
    formula_key,
)

#: Corpus manifest schema version.
CORPUS_FORMAT_VERSION = 1

#: A failure predicate: True while the (shrunk) formula still fails.
Predicate = Callable[[CNF], bool]

ClauseList = List[List[int]]


@dataclass
class ShrinkResult:
    """Outcome of one :func:`shrink` call."""

    cnf: CNF
    original_clauses: int
    original_vars: int
    predicate_calls: int = 0
    rounds: int = 0

    @property
    def clauses(self) -> int:
        """Clause count of the minimized formula."""
        return self.cnf.num_clauses


def _clauses_of(cnf: CNF) -> ClauseList:
    return [list(c.literals) for c in cnf.clauses]


def _rebuild(clauses: ClauseList, num_vars: int) -> CNF:
    return CNF(clauses, num_vars=num_vars)


class _PredicateCounter:
    """Wraps the failure predicate, counting and memoizing evaluations."""

    def __init__(self, predicate: Predicate, num_vars: int):
        self.predicate = predicate
        self.num_vars = num_vars
        self.calls = 0
        self._memo: Dict[str, bool] = {}

    def holds(self, clauses: ClauseList) -> bool:
        """True when the candidate clause list still triggers the failure."""
        cnf = _rebuild(clauses, self.num_vars)
        key = formula_key(cnf)
        if key not in self._memo:
            self.calls += 1
            self._memo[key] = bool(self.predicate(cnf))
        return self._memo[key]


def _ddmin(clauses: ClauseList, holds: _PredicateCounter) -> Tuple[ClauseList, int]:
    """Classic ddmin over clauses: remove complement chunks, refine.

    Returns the 1-minimal-by-chunks clause list and the number of
    granularity rounds performed.
    """
    rounds = 0
    granularity = 2
    while len(clauses) >= 2:
        rounds += 1
        chunk = max(1, len(clauses) // granularity)
        reduced = False
        start = 0
        while start < len(clauses):
            candidate = clauses[:start] + clauses[start + chunk:]
            if candidate and holds.holds(candidate):
                clauses = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(clauses):
                break
            granularity = min(len(clauses), granularity * 2)
    return clauses, rounds


def _drop_variables(clauses: ClauseList, holds: _PredicateCounter) -> ClauseList:
    """Try removing every clause mentioning one variable, per variable."""
    for var in sorted({abs(lit) for clause in clauses for lit in clause}):
        candidate = [c for c in clauses if all(abs(lit) != var for lit in c)]
        if candidate and len(candidate) < len(clauses) and holds.holds(candidate):
            clauses = candidate
    return clauses


def shrink(
    cnf: CNF,
    predicate: Predicate,
    max_rounds: int = 50,
) -> ShrinkResult:
    """Minimize ``cnf`` while ``predicate`` keeps holding.

    The input must itself satisfy the predicate (raises ``ValueError``
    otherwise — a predicate that never held would "minimize" to
    garbage).  Clause-level ddmin runs to a fixpoint (bounded by
    ``max_rounds``), then whole variables are dropped, then variables
    are compacted to ``1..k`` when the renumbered formula still fails.
    """
    counter = _PredicateCounter(predicate, cnf.num_vars)
    clauses = _clauses_of(cnf)
    if not counter.holds(clauses):
        raise ValueError("predicate does not hold on the input formula")

    total_rounds = 0
    while total_rounds < max_rounds:
        before = len(clauses)
        clauses, rounds = _ddmin(clauses, counter)
        total_rounds += max(rounds, 1)
        clauses = _drop_variables(clauses, counter)
        if len(clauses) == before:
            break

    shrunk = _rebuild(clauses, cnf.num_vars)
    compacted = compact_variables(shrunk)
    if predicate(compacted):
        shrunk = compacted
    return ShrinkResult(
        cnf=shrunk,
        original_clauses=cnf.num_clauses,
        original_vars=cnf.num_vars,
        predicate_calls=counter.calls,
        rounds=total_rounds,
    )


def discrepancy_predicate(
    bank: OracleBank,
    target: Discrepancy,
    budget: int = DEFAULT_BUDGET,
    solve_fn: Optional[SolveFn] = None,
) -> Predicate:
    """Predicate: the bank still reports ``target``'s failure mode.

    Matching is by (oracle, kind) — the literal expected/observed
    strings legitimately change as the formula shrinks.
    """

    def predicate(cnf: CNF) -> bool:
        ctx = OracleContext(case="shrink", budget=budget, solve_fn=solve_fn)
        return any(found.matches(target) for found in bank.check(cnf, ctx))

    return predicate


class FailureCorpus:
    """A directory of minimized, replayable failure cases.

    Every entry is a pair of sibling files: ``<name>.cnf`` (minimal
    DIMACS) and ``<name>.json`` (the repro manifest: provenance,
    oracle, budget, replay command).  Names are content-addressed, so
    re-finding the same minimal failure never duplicates an entry.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def add(
        self,
        cnf: CNF,
        discrepancy: Discrepancy,
        budget: int = DEFAULT_BUDGET,
        generator: Optional[Dict[str, Any]] = None,
        original_clauses: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Path:
        """Write one corpus entry; returns the manifest path.

        ``name`` overrides the content-addressed default — used for
        hand-curated entries whose file names should stay descriptive.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if name is None:
            name = f"{discrepancy.oracle}-{formula_key(cnf)[:10]}"
        cnf_path = self.root / f"{name}.cnf"
        manifest_path = self.root / f"{name}.json"
        write_dimacs_file(cnf, cnf_path)
        manifest = {
            "schema": CORPUS_FORMAT_VERSION,
            "name": name,
            "oracle": discrepancy.oracle,
            "kind": discrepancy.kind,
            "case": discrepancy.case,
            "expected": discrepancy.expected,
            "observed": discrepancy.observed,
            "detail": discrepancy.detail,
            "budget": budget,
            "generator": generator or {},
            "clauses": cnf.num_clauses,
            "variables": cnf.num_vars,
            "original_clauses": (
                cnf.num_clauses if original_clauses is None else original_clauses
            ),
            "replay": f"python -m repro fuzz --replay {manifest_path}",
        }
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        self._register_artifacts(cnf_path, manifest_path)
        return manifest_path

    @staticmethod
    def _register_artifacts(cnf_path: Path, manifest_path: Path) -> None:
        """Index the repro pair in ``$REPRO_STORE`` (best effort, opt-in).

        Corpus entries outlive the campaign that found them, so the
        store records them as standalone content-addressed artifacts —
        ``repro query traces --role fuzz-repro`` lists every minimized
        failure ever captured.  Only an explicit ``REPRO_STORE`` target
        is honored, and failures never break the shrink path.
        """
        import os

        if not os.environ.get("REPRO_STORE", "").strip():
            return
        try:
            from repro.store import RunStore, resolve_auto_store

            store_path = resolve_auto_store(None)
            if store_path is None:
                return  # REPRO_STORE held an off-value
            with RunStore(store_path) as store:
                store.register_artifact(cnf_path, "fuzz-repro")
                store.register_artifact(manifest_path, "fuzz-repro-manifest")
        except Exception as exc:  # never take the campaign down
            import sys

            print(
                f"warning: run-store artifact registration failed ({exc})",
                file=sys.stderr,
            )

    def entries(self) -> List[Path]:
        """All manifest paths in the corpus, sorted by name."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))


def load_entry(manifest_path: Union[str, Path]) -> Tuple[Dict[str, Any], CNF]:
    """Load one corpus entry: (manifest dict, parsed formula)."""
    manifest_path = Path(manifest_path)
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    cnf_path = manifest_path.with_suffix(".cnf")
    if not cnf_path.is_file():
        raise FileNotFoundError(f"corpus entry missing DIMACS file: {cnf_path}")
    return manifest, parse_dimacs_file(cnf_path)


def replay_entry(
    manifest_path: Union[str, Path],
    bank: Optional[OracleBank] = None,
    solve_fn: Optional[SolveFn] = None,
) -> List[Discrepancy]:
    """Re-run the full oracle bank on one stored corpus entry.

    Returns whatever the bank finds *today*: empty for a fixed (or
    hand-built trap) entry, the original failure mode for a still-live
    bug.  ``solve_fn`` lets tests replay against an injected-bug solver.
    """
    manifest, cnf = load_entry(manifest_path)
    bank = bank or OracleBank()
    ctx = OracleContext(
        case=str(manifest.get("name", Path(manifest_path).stem)),
        budget=int(manifest.get("budget", DEFAULT_BUDGET)),
        solve_fn=solve_fn,
    )
    return bank.check(cnf, ctx)
