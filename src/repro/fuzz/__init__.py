"""Differential fuzzing and delta debugging for the solver stack.

The correctness harness every solver/policy change is checked against:

* :mod:`repro.fuzz.oracles` — a pluggable bank of cross-checks (brute
  force, DPLL, both deletion policies, preprocessing on/off, DRAT
  proofs, metamorphic transforms) that turn a solve result into either
  silence or a structured :class:`Discrepancy`;
* :mod:`repro.fuzz.campaign` — seeded, deterministic campaigns over
  the generator registry, fanned out through the fault-tolerant
  parallel runner;
* :mod:`repro.fuzz.shrink` — a ddmin-style CNF minimizer plus the
  replayable :class:`FailureCorpus` of DIMACS + manifest repro pairs.

CLI entry point: ``python -m repro fuzz --seeds 200 --shrink``.
"""

from repro.fuzz.oracles import (
    DEFAULT_BUDGET,
    BruteForceOracle,
    Discrepancy,
    DPLLOracle,
    DratOracle,
    MetamorphicOracle,
    ModelCheckOracle,
    Oracle,
    OracleBank,
    OracleContext,
    PolicyAgreementOracle,
    PreprocessingOracle,
    default_oracles,
    default_solve_fn,
    derive_mutants,
    formula_key,
)
from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignReport,
    FuzzCase,
    build_cases,
    draw_spec,
    render_report,
    run_campaign,
)
from repro.fuzz.shrink import (
    FailureCorpus,
    ShrinkResult,
    discrepancy_predicate,
    load_entry,
    replay_entry,
    shrink,
)

__all__ = [
    "DEFAULT_BUDGET",
    "BruteForceOracle",
    "CampaignConfig",
    "CampaignReport",
    "Discrepancy",
    "DPLLOracle",
    "DratOracle",
    "FailureCorpus",
    "FuzzCase",
    "MetamorphicOracle",
    "ModelCheckOracle",
    "Oracle",
    "OracleBank",
    "OracleContext",
    "PolicyAgreementOracle",
    "PreprocessingOracle",
    "ShrinkResult",
    "build_cases",
    "default_oracles",
    "default_solve_fn",
    "derive_mutants",
    "discrepancy_predicate",
    "draw_spec",
    "formula_key",
    "load_entry",
    "render_report",
    "replay_entry",
    "run_campaign",
    "shrink",
]
