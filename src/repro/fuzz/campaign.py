"""Seeded, deterministic differential fuzz campaigns.

A campaign draws small instances from every registered generator
family (:data:`~repro.cnf.generators.GENERATOR_FAMILIES`), derives
satisfiability-preserving mutants for each, fans the subject solves out
through the existing fault-tolerant
:class:`~repro.parallel.runner.ParallelRunner` (budgets, supervision,
caching, trace events all apply), and then runs the full
:class:`~repro.fuzz.oracles.OracleBank` over every case.  Everything is
keyed off ``base_seed``: the same seed produces the same instances,
the same mutants, the same checks, and therefore the same
:class:`CampaignReport` fingerprint — determinism is what turns "the
fuzzer failed once" into a replayable fact.

With ``shrink`` enabled, each failing case is minimized by
:func:`~repro.fuzz.shrink.shrink` and persisted to a
:class:`~repro.fuzz.shrink.FailureCorpus` as a DIMACS + manifest pair
whose recorded command replays the discrepancy from scratch.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.cnf.formula import CNF
from repro.cnf.generators import GENERATOR_FAMILIES, GeneratorSpec
from repro.fuzz.oracles import (
    DEFAULT_BUDGET,
    Discrepancy,
    OracleBank,
    OracleContext,
    SolveFn,
    default_oracles,
    derive_mutants,
    formula_key,
    make_solve_fn,
)
from repro.fuzz.shrink import FailureCorpus, discrepancy_predicate, shrink
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel.runner import ParallelRunner, SolveTask
from repro.solver.solver import SOLVER_CORES, SolverConfig
from repro.solver.types import Model, Status


@dataclass
class CampaignConfig:
    """Everything that determines a campaign (and its fingerprint)."""

    #: Number of fuzz cases (one generator draw each).
    seeds: int = 50
    #: Root seed: same value -> identical campaign, byte for byte.
    base_seed: int = 0
    #: Per-solve conflict budget (deterministic, unlike wall clock).
    budget: int = DEFAULT_BUDGET
    #: Worker processes for the subject-solve fan-out.
    workers: int = 1
    #: Generator families to draw from (default: all registered).
    families: Sequence[str] = ()
    #: Metamorphic mutants derived per case.
    mutants: int = 2
    #: Minimize failures and write them to ``corpus_dir``.
    shrink: bool = False
    corpus_dir: Optional[Union[str, Path]] = None
    #: Optional supervision: wall-clock seconds per solve attempt.
    task_timeout: Optional[float] = None
    #: Optional cross-run result cache directory.
    cache_dir: Optional[Union[str, Path]] = None
    #: Oracle gating thresholds (see :class:`OracleContext`).
    brute_force_max_vars: int = 13
    dpll_max_vars: int = 30
    #: Engine representation for every subject solve ("arena"/"object").
    #: The core-agreement oracle always compares both cores regardless.
    solver_core: str = "arena"

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        unknown = set(self.families) - set(GENERATOR_FAMILIES)
        if unknown:
            raise ValueError(f"unknown generator families: {sorted(unknown)}")
        if self.solver_core not in SOLVER_CORES:
            raise ValueError(f"unknown solver core {self.solver_core!r}")


@dataclass
class FuzzCase:
    """One drawn instance plus its derived metamorphic mutants."""

    spec: GeneratorSpec
    cnf: CNF
    mutants: List[Tuple[str, CNF]] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Replayable case identifier (family, params, and seed)."""
        return self.spec.name


@dataclass
class CampaignReport:
    """Deterministic summary of one campaign run.

    Everything except ``wall_seconds`` is a pure function of the
    configuration, which :meth:`fingerprint` certifies: two runs with
    the same config hash to the same value, on any machine.
    """

    seeds: int
    base_seed: int
    budget: int
    mutants: int
    families: List[str]
    solver_core: str = "arena"
    cases: int = 0
    solves: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    checks: Dict[str, int] = field(default_factory=dict)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    corpus_entries: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        """True when no oracle disagreed with the subject solver."""
        return not self.discrepancies

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (used by the CLI's ``--json`` style output)."""
        return {
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "budget": self.budget,
            "mutants": self.mutants,
            "families": list(self.families),
            "solver_core": self.solver_core,
            "cases": self.cases,
            "solves": self.solves,
            "statuses": dict(sorted(self.statuses.items())),
            "checks": dict(sorted(self.checks.items())),
            "discrepancies": [d.summary() for d in self.discrepancies],
            "corpus_entries": list(self.corpus_entries),
            "wall_seconds": self.wall_seconds,
        }

    def fingerprint(self) -> str:
        """Hash of the deterministic report content (wall clock excluded)."""
        payload = self.to_dict()
        payload.pop("wall_seconds")
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def draw_spec(rng: random.Random, family: str, seed: int) -> GeneratorSpec:
    """One small, oracle-checkable parameter draw for ``family``.

    Sizes are deliberately tiny: brute force needs <= ~13 variables and
    DPLL <= ~30, and a campaign's power comes from *many* diverse small
    cases, not a few big ones (small-scope hypothesis).
    """
    if family == "random_ksat":
        num_vars = rng.randint(6, 13)
        ratio = rng.uniform(3.0, 5.2)
        params: Tuple[Tuple[str, Any], ...] = (
            ("k", 3),
            ("num_clauses", max(6, int(num_vars * ratio))),
            ("num_vars", num_vars),
        )
    elif family == "pigeonhole":
        params = (("holes", rng.randint(2, 3)),)
    elif family == "graph_coloring":
        params = (
            ("edge_prob", round(rng.uniform(0.25, 0.7), 2)),
            ("num_colors", rng.randint(2, 3)),
            ("num_nodes", rng.randint(4, 6)),
        )
    elif family == "parity_chain":
        params = (
            ("chain_length", 3),
            ("num_vars", rng.randint(4, 8)),
        )
    elif family == "community_sat":
        params = (
            ("clauses_per_community", rng.randint(10, 16)),
            ("inter_clause_fraction", 0.2),
            ("num_communities", 2),
            ("vars_per_community", rng.randint(4, 6)),
        )
    elif family == "cardinality_conflict":
        params = (
            ("num_vars", rng.randint(4, 7)),
            ("overconstrained", rng.random() < 0.5),
        )
    else:
        raise ValueError(f"no fuzz parameter ranges for family {family!r}")
    return GeneratorSpec(family, params, seed)


def build_cases(config: CampaignConfig) -> List[FuzzCase]:
    """Draw the campaign's cases — pure function of the configuration."""
    rng = random.Random(config.base_seed)
    families = sorted(config.families) if config.families else sorted(GENERATOR_FAMILIES)
    cases: List[FuzzCase] = []
    for i in range(config.seeds):
        family = rng.choice(families)
        spec = draw_spec(rng, family, config.base_seed + i)
        cnf = spec.build()
        mutants = derive_mutants(cnf, spec.seed, config.mutants)
        cases.append(FuzzCase(spec=spec, cnf=cnf, mutants=mutants))
    return cases


def _prefill_from_runner(
    cases: Sequence[FuzzCase],
    config: CampaignConfig,
    observer: Observer,
) -> Tuple[Dict[Tuple[str, str], Tuple[Status, Optional[Model]]], int]:
    """Fan every (formula, policy) subject solve out through the runner.

    Returns the memo-table prefill plus the number of solves performed.
    Supervision failures (TIMEOUT / ERROR / MEMOUT) keep their failure
    status — ``Status.decided`` is False for them, so every oracle
    treats the case as undecided rather than trusting a dead worker.
    """
    tasks: List[SolveTask] = []
    solver_config = SolverConfig(core=config.solver_core)
    for case in cases:
        formulas = [("subject", case.cnf)] + list(case.mutants)
        for variant, cnf in formulas:
            for policy in ("default", "frequency"):
                tasks.append(SolveTask(
                    cnf=cnf,
                    policy=policy,
                    max_conflicts=config.budget,
                    tag=f"{case.name}/{variant}/{policy}",
                    config=solver_config,
                ))
    runner = ParallelRunner(
        workers=config.workers,
        cache_dir=config.cache_dir,
        task_timeout=config.task_timeout,
        observer=observer,
    )
    outcomes = runner.run(tasks)
    prefill: Dict[Tuple[str, str], Tuple[Status, Optional[Model]]] = {}
    for task, outcome in zip(tasks, outcomes):
        prefill[(formula_key(task.cnf), task.policy)] = (
            outcome.status, outcome.model
        )
    return prefill, len(tasks)


def run_campaign(
    config: CampaignConfig,
    observer: Optional[Observer] = None,
    solve_hook: Optional[SolveFn] = None,
) -> CampaignReport:
    """Run one deterministic campaign; returns the structured report.

    ``solve_hook`` replaces the subject solver for *every* check — the
    fault-injection hook the shrinker tests use.  With a hook attached
    the runner fan-out is skipped (a hook cannot cross process
    boundaries) and all solving happens inline through the hook.
    """
    observer = observer if observer is not None else NULL_OBSERVER
    started = time.perf_counter()
    cases = build_cases(config)
    families = sorted(config.families) if config.families else sorted(GENERATOR_FAMILIES)
    # Any oracle solve not covered by the runner prefill (preprocessed
    # formulas, shrink replays) must use the same core as the fan-out,
    # or a core-specific bug would hide behind a mixed-engine campaign.
    solve_fn = solve_hook if solve_hook is not None else make_solve_fn(config.solver_core)
    report = CampaignReport(
        seeds=config.seeds,
        base_seed=config.base_seed,
        budget=config.budget,
        mutants=config.mutants,
        families=families,
        solver_core=config.solver_core,
        cases=len(cases),
    )
    observer.event(
        "fuzz-start",
        seeds=config.seeds,
        base_seed=config.base_seed,
        budget=config.budget,
        workers=config.workers,
        families=families,
        solver_core=config.solver_core,
    )

    prefill: Dict[Tuple[str, str], Tuple[Status, Optional[Model]]] = {}
    if solve_hook is None:
        prefill, fanned_out = _prefill_from_runner(cases, config, observer)
        report.solves += fanned_out

    corpus = (
        FailureCorpus(config.corpus_dir)
        if config.shrink and config.corpus_dir is not None
        else None
    )

    for case in cases:
        ctx = OracleContext(
            case=case.name,
            budget=config.budget,
            solve_fn=solve_fn,
            prefill=prefill,
            brute_force_max_vars=config.brute_force_max_vars,
            dpll_max_vars=config.dpll_max_vars,
        )
        bank = OracleBank(default_oracles(
            mutants=config.mutants, mutation_seed=case.spec.seed
        ))
        found = bank.check(case.cnf, ctx, checks=report.checks)
        report.solves += ctx.solves
        status, _ = ctx.solve(case.cnf)
        report.statuses[status.value] = report.statuses.get(status.value, 0) + 1
        observer.event(
            "fuzz-case",
            case=case.name,
            status=status.value,
            discrepancies=len(found),
        )
        for discrepancy in found:
            report.discrepancies.append(discrepancy)
            observer.event("fuzz-discrepancy", summary=discrepancy.summary())

        if corpus is not None and found:
            # One corpus entry per failing case: minimizing the first
            # discrepancy almost always pins the others too, and a
            # bounded corpus stays reviewable.
            target = found[0]
            predicate = discrepancy_predicate(
                bank, target, budget=config.budget, solve_fn=solve_fn
            )
            result = shrink(case.cnf, predicate)
            entry = corpus.add(
                result.cnf,
                target,
                budget=config.budget,
                generator={
                    "family": case.spec.family,
                    "params": dict(case.spec.params),
                    "seed": case.spec.seed,
                },
                original_clauses=result.original_clauses,
            )
            report.corpus_entries.append(entry.name)
            observer.event(
                "fuzz-shrink",
                case=case.name,
                entry=entry.name,
                original_clauses=result.original_clauses,
                shrunk_clauses=result.clauses,
                predicate_calls=result.predicate_calls,
            )

    report.wall_seconds = round(time.perf_counter() - started, 6)
    observer.event(
        "fuzz-end",
        cases=report.cases,
        solves=report.solves,
        discrepancies=len(report.discrepancies),
        fingerprint=report.fingerprint(),
    )
    return report


def render_report(report: CampaignReport) -> str:
    """Human-readable campaign summary for the CLI."""
    lines = [
        f"fuzz campaign: {report.cases} cases, {report.solves} solves, "
        f"budget {report.budget} conflicts, base seed {report.base_seed}, "
        f"{report.solver_core} core",
        "statuses: " + ", ".join(
            f"{count} {name}" for name, count in sorted(report.statuses.items())
        ),
        "checks:   " + ", ".join(
            f"{name}={count}" for name, count in sorted(report.checks.items())
        ),
    ]
    if report.discrepancies:
        lines.append(f"DISCREPANCIES ({len(report.discrepancies)}):")
        lines.extend(f"  {d.summary()}" for d in report.discrepancies)
    else:
        lines.append("no discrepancies found")
    for entry in report.corpus_entries:
        lines.append(f"  shrunk repro written: {entry}")
    lines.append(
        f"fingerprint {report.fingerprint()}  ({report.wall_seconds:.2f}s)"
    )
    return "\n".join(lines)
