"""Asyncio HTTP front door for the solve service (stdlib only).

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams —
no web framework, one connection per request (``Connection: close``),
JSON bodies.  Endpoints:

``POST /solve``
    Body ``{"dimacs": "...", "max_conflicts": N?, "deadline": S?,
    "wait": true?}``.  With ``wait`` (the default) the connection is
    held until the solve finishes and the response carries the full
    result under the failure-taxonomy status code (200 / 504 / 507 /
    500 — see :mod:`repro.serve.protocol`).  With ``"wait": false``
    the request is accepted and ``202 {"id": ...}`` returns
    immediately.  ``deadline`` (seconds) is the client's end-to-end
    budget: an infeasible one is shed at admission.  A full queue or a
    shed deadline is ``429``, a draining service ``503`` — both with a
    ``Retry-After`` hint.  Closing the connection while waiting
    cancels the request — it is dropped from its inference batch and
    never reaches a solver.

``GET /jobs/<id>``
    Current request snapshot (``200``), or ``404``.

``GET /jobs/<id>/events``
    NDJSON stream: the current snapshot, then one line per lifecycle
    transition, closing after the terminal state.

``POST /sessions``
    Open a sticky incremental session.  Body ``{"num_vars": N}`` or
    ``{"dimacs": "..."}`` (the seed formula), plus optional ``"ttl"``
    (idle seconds before eviction) and ``"drift_threshold"``.
    Responds ``201 {"id": ...}``; at capacity ``429``.

``POST /sessions/<id>/solve``
    One incremental call on a session: body ``{"add": [[...], ...]?,
    "assume": [...]?, "max_conflicts": N?}``.  Clauses in ``add`` are
    added first, then the solver runs under the ``assume`` literals.
    The response carries the status, a model (SAT) or the
    failed-assumption core (UNSAT under assumptions), the policy the
    drift-aware selector picked, and whether the cached embedding was
    reused.  ``404`` for an unknown or TTL-evicted session.

``GET /sessions/<id>`` / ``DELETE /sessions/<id>``
    Session snapshot / explicit close.

``GET /healthz``
    Service counters: queue depth, totals, inference passes, sessions.

``GET /metrics``
    Prometheus text exposition format (version 0.0.4): the metrics
    registry's counters/gauges/histograms plus the service counters as
    gauges, ready for a scrape target.  ``GET /metrics?format=json``
    keeps the historical JSON payload ``{"service": {...},
    "registry": {...}}``.

The server binds localhost by default; it is a trusted-network service,
not an internet-facing one (no TLS, no auth — put a real proxy in
front for anything beyond the local machine).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.cnf.dimacs import parse_dimacs
from repro.obs.metrics import render_prometheus
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.serve.protocol import AdmissionError, ServeRequest
from repro.serve.service import SolveService

#: Largest accepted request body (a DIMACS formula), in bytes.
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    507: "Insufficient Storage",
}


def _head(
    code: int,
    content_type: str,
    length: Optional[int],
    extra: Optional[Dict[str, str]] = None,
) -> bytes:
    lines = [
        f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":"), default=str).encode(
        "utf-8"
    )


async def _send_json(
    writer: asyncio.StreamWriter,
    code: int,
    payload: Any,
    extra: Optional[Dict[str, str]] = None,
) -> None:
    body = _json_bytes(payload)
    writer.write(
        _head(code, "application/json", len(body), extra) + body
    )
    await writer.drain()


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP request: (method, path, headers, body)."""
    raw = await asyncio.wait_for(
        reader.readuntil(b"\r\n\r\n"), timeout=30.0
    )
    head_lines = raw.decode("latin-1").split("\r\n")
    parts = head_lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {head_lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in head_lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _BodyTooLarge(length)
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class _BodyTooLarge(Exception):
    def __init__(self, length: int):
        super().__init__(f"request body of {length} bytes exceeds cap")
        self.length = length


class HttpFrontDoor:
    """Routes HTTP connections onto one :class:`SolveService`."""

    def __init__(
        self, service: SolveService, observer: Observer = NULL_OBSERVER
    ):
        self.service = service
        self.observer = observer

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind and start serving; ``port=0`` picks a free port."""
        return await asyncio.start_server(self.handle, host, port)

    # -- connection handler ------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
            except _BodyTooLarge as exc:
                await _send_json(writer, 413, {"error": str(exc)})
                return
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ValueError,
            ):
                return  # torn or abandoned connection: nothing to answer
            await self._route(method, path, body, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        path, _, query = path.partition("?")
        if path == "/solve":
            if method != "POST":
                await _send_json(writer, 405, {"error": "POST /solve"})
                return
            await self._solve(body, reader, writer)
        elif path == "/healthz" and method == "GET":
            await _send_json(writer, 200, self.service.stats())
        elif path == "/metrics" and method == "GET":
            if "format=json" in query.split("&"):
                await _send_json(
                    writer,
                    200,
                    {
                        "service": self.service.stats(),
                        "registry": self.observer.registry.snapshot(),
                    },
                )
            else:
                await self._metrics_text(writer)
        elif path == "/sessions":
            if method != "POST":
                await _send_json(writer, 405, {"error": "POST /sessions"})
                return
            await self._session_create(body, writer)
        elif path.startswith("/sessions/"):
            await self._session_route(method, path, body, writer)
        elif path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._stream(rest[: -len("/events")].rstrip("/"), writer)
            else:
                request = self.service.get(rest)
                if request is None:
                    await _send_json(writer, 404, {"error": "no such job"})
                else:
                    await _send_json(writer, 200, request.snapshot())
        else:
            await _send_json(writer, 404, {"error": f"no route {path}"})

    async def _metrics_text(self, writer: asyncio.StreamWriter) -> None:
        """Prometheus text exposition: registry + service counters."""
        extra: Dict[str, Any] = {}
        for key, value in self.service.stats().items():
            if isinstance(value, dict):  # the nested breaker block
                extra.update(
                    {f"serve.{key}.{k}": v for k, v in value.items()}
                )
            else:
                extra[f"serve.{key}"] = value
        body = render_prometheus(
            self.observer.registry.snapshot(), extra_gauges=extra
        ).encode("utf-8")
        writer.write(
            _head(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                len(body),
            )
            + body
        )
        await writer.drain()

    # -- POST /solve -------------------------------------------------------

    async def _solve(
        self,
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            cnf = parse_dimacs(payload["dimacs"])
            max_conflicts = payload.get("max_conflicts")
            if max_conflicts is not None:
                max_conflicts = int(max_conflicts)
            deadline = payload.get("deadline")
            if deadline is not None:
                deadline = float(deadline)
            wait = bool(payload.get("wait", True))
        except KeyError as exc:
            await _send_json(
                writer, 400, {"error": f"missing field {exc.args[0]!r}"}
            )
            return
        except Exception as exc:  # malformed JSON or DIMACS
            await _send_json(
                writer, 400, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        try:
            request = self.service.submit(
                cnf, max_conflicts=max_conflicts, deadline_seconds=deadline
            )
        except AdmissionError as exc:
            retry_after = getattr(exc, "retry_after", 1.0)
            await _send_json(
                writer,
                exc.http_code,
                {"error": str(exc), "reason": getattr(exc, "reason", "")},
                extra={"Retry-After": f"{retry_after:g}"},
            )
            return
        if not wait:
            await _send_json(writer, 202, request.snapshot())
            return
        await self._wait_and_respond(request, reader, writer)

    async def _wait_and_respond(
        self,
        request: ServeRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Hold the connection until done; a disconnect cancels the job.

        The client sends nothing after its request, so any read
        completing early (EOF, stray bytes, reset) means the client is
        gone — the request is cancelled before it costs inference or
        solver time.
        """
        done = asyncio.ensure_future(request.done.wait())
        gone = asyncio.ensure_future(reader.read(1))
        try:
            await asyncio.wait(
                {done, gone}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for waiter in (done, gone):
                if not waiter.done():
                    waiter.cancel()
            await asyncio.gather(done, gone, return_exceptions=True)
        if not request.done.is_set():
            self.service.cancel(request.id)
            await request.done.wait()
            return  # nobody is listening for the response
        await _send_json(writer, request.http_code(), request.snapshot())

    # -- /sessions ---------------------------------------------------------

    async def _session_create(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """POST /sessions: open one sticky incremental session."""
        if not self.service.accepting:
            await _send_json(
                writer,
                503,
                {"error": "service is not accepting requests"},
                extra={"Retry-After": "5"},
            )
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            cnf = None
            if "dimacs" in payload:
                cnf = parse_dimacs(payload["dimacs"])
            num_vars = int(payload.get("num_vars", 0))
            if cnf is None and num_vars <= 0:
                raise ValueError("provide 'dimacs' or a positive 'num_vars'")
            ttl = payload.get("ttl")
            if ttl is not None:
                ttl = float(ttl)
                if ttl <= 0:
                    raise ValueError("ttl must be positive")
            drift = payload.get("drift_threshold")
            if drift is not None:
                drift = float(drift)
                if drift < 0:
                    raise ValueError("drift_threshold must be >= 0")
        except Exception as exc:  # malformed JSON, DIMACS, or fields
            await _send_json(
                writer, 400, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        try:
            session = self.service.sessions.create(
                cnf=cnf, num_vars=num_vars, ttl=ttl, drift_threshold=drift
            )
        except AdmissionError as exc:
            await _send_json(
                writer,
                exc.http_code,
                {"error": str(exc), "reason": getattr(exc, "reason", "")},
                extra={"Retry-After": f"{getattr(exc, 'retry_after', 1.0):g}"},
            )
            return
        await _send_json(writer, 201, session.snapshot())

    async def _session_route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Dispatch /sessions/<id>[...] paths."""
        rest = path[len("/sessions/"):]
        if rest.endswith("/solve"):
            session_id = rest[: -len("/solve")].rstrip("/")
            if method != "POST":
                await _send_json(
                    writer, 405, {"error": "POST /sessions/<id>/solve"}
                )
                return
            await self._session_solve(session_id, body, writer)
            return
        session_id = rest.rstrip("/")
        session = self.service.sessions.get(session_id)
        if method == "GET":
            if session is None:
                await _send_json(writer, 404, {"error": "no such session"})
            else:
                await _send_json(writer, 200, session.snapshot())
        elif method == "DELETE":
            if not self.service.sessions.close(session_id):
                await _send_json(writer, 404, {"error": "no such session"})
            else:
                await _send_json(writer, 200, {"id": session_id, "closed": True})
        else:
            await _send_json(
                writer, 405, {"error": "GET or DELETE /sessions/<id>"}
            )

    async def _session_solve(
        self, session_id: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """POST /sessions/<id>/solve: one incremental call."""
        session = self.service.sessions.get(session_id)
        if session is None:
            await _send_json(writer, 404, {"error": "no such session"})
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            add = payload.get("add", [])
            if not isinstance(add, list) or not all(
                isinstance(c, list) for c in add
            ):
                raise ValueError("'add' must be a list of clauses")
            assume = payload.get("assume", [])
            if not isinstance(assume, list):
                raise ValueError("'assume' must be a list of literals")
            max_conflicts = payload.get("max_conflicts")
            if max_conflicts is not None:
                max_conflicts = int(max_conflicts)
        except Exception as exc:
            await _send_json(
                writer, 400, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        try:
            result = await self.service.sessions.solve(
                session,
                add=add,
                assumptions=assume,
                max_conflicts=max_conflicts,
            )
        except ValueError as exc:
            # Out-of-range variables, zero literals: the session stays
            # usable; the bad call is the client's to fix.
            await _send_json(
                writer, 400, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        await _send_json(writer, 200, result)

    # -- GET /jobs/<id>/events ---------------------------------------------

    async def _stream(
        self, request_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """NDJSON lifecycle stream: snapshot now, then every transition."""
        request = self.service.get(request_id)
        if request is None:
            await _send_json(writer, 404, {"error": "no such job"})
            return
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        request.watchers.append(queue)
        try:
            writer.write(_head(200, "application/x-ndjson", None))
            snapshot = request.snapshot()
            writer.write(_json_bytes(snapshot) + b"\n")
            await writer.drain()
            state = snapshot["state"]
            while state not in ("DONE", "CANCELLED"):
                snapshot = await queue.get()
                writer.write(_json_bytes(snapshot) + b"\n")
                await writer.drain()
                state = snapshot["state"]
        finally:
            if queue in request.watchers:
                request.watchers.remove(queue)


async def start_service(
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 0,
    observer: Observer = NULL_OBSERVER,
) -> Tuple[asyncio.AbstractServer, HttpFrontDoor]:
    """Start the service pipeline and its HTTP listener in one call."""
    await service.start()
    door = HttpFrontDoor(service, observer=observer)
    server = await door.serve(host, port)
    return server, door


def bound_address(server: asyncio.AbstractServer) -> Tuple[str, int]:
    """(host, port) the server actually bound (resolves ``port=0``)."""
    sock = server.sockets[0]
    host, port = sock.getsockname()[:2]
    return host, port
