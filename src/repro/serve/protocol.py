"""Service wire protocol: request lifecycle, failure taxonomy mapping.

One :class:`ServeRequest` is one solve job from admission to response.
Its lifecycle is linear::

    QUEUED -> INFERRING -> SOLVING -> DONE
       \\          \\           \\
        +-----------+-----------+--> CANCELLED   (client disconnect)

and every terminal job carries a :class:`~repro.parallel.runner.SolveOutcome`
whose :class:`~repro.solver.types.Status` maps onto an HTTP response code
through :data:`STATUS_HTTP` — the service's failure taxonomy *is* the
supervised runner's taxonomy, surfaced over the wire:

==============  ====  =============================================
solver status   HTTP  meaning
==============  ====  =============================================
SATISFIABLE      200  decided; ``model`` holds the satisfying assignment
UNSATISFIABLE    200  decided; no model
UNKNOWN          200  conflict budget exhausted (deterministic)
TIMEOUT          504  per-request wall-clock budget exceeded
MEMOUT           507  per-request memory budget exceeded
ERROR            500  worker crashed; ``error`` holds the detail
==============  ====  =============================================

Admission rejections never become requests: a full queue — or a
deadline the queue wait already makes infeasible — is 429 with a
``Retry-After`` hint; a draining service is 503 (retrying elsewhere or
later is correct, retrying immediately is not).
"""

from __future__ import annotations

import asyncio
import enum
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cnf.formula import CNF
from repro.parallel.runner import SolveOutcome
from repro.solver.types import Status


class RequestState(enum.Enum):
    """Where a request currently sits in the service pipeline."""

    QUEUED = "QUEUED"          # admitted, waiting for an inference batch
    INFERRING = "INFERRING"    # coalesced into a forward pass in flight
    SOLVING = "SOLVING"        # policy picked, waiting on / inside a solver
    DONE = "DONE"              # terminal: outcome recorded
    CANCELLED = "CANCELLED"    # terminal: client disconnected mid-flight

    @property
    def terminal(self) -> bool:
        return self in (RequestState.DONE, RequestState.CANCELLED)


#: Solver / supervision status -> HTTP response code (see module docs).
STATUS_HTTP: Dict[Status, int] = {
    Status.SATISFIABLE: 200,
    Status.UNSATISFIABLE: 200,
    Status.UNKNOWN: 200,
    Status.TIMEOUT: 504,
    Status.MEMOUT: 507,
    Status.ERROR: 500,
}

#: Admission-control rejection (queue depth cap reached, or the request's
#: deadline is already infeasible).  Retryable; carries ``Retry-After``.
HTTP_QUEUE_FULL = 429

#: The service is draining (graceful shutdown): no new requests.
HTTP_NOT_ACCEPTING = 503


def http_code_for(status: Status) -> int:
    """HTTP response code for a terminal solve status."""
    return STATUS_HTTP[status]


def new_request_id() -> str:
    """Fresh request identifier (``q-`` + 12 hex chars)."""
    return "q-" + uuid.uuid4().hex[:12]


@dataclass
class ServeRequest:
    """One admitted solve job and everything learned about it since.

    The ``done`` event fires exactly once, at the DONE/CANCELLED
    transition; ``watchers`` receive every state transition as a
    snapshot dict (the NDJSON streaming endpoint feeds from one).
    """

    cnf: CNF
    max_conflicts: int
    id: str = field(default_factory=new_request_id)
    state: RequestState = RequestState.QUEUED
    submitted: float = field(default_factory=time.perf_counter)
    #: Client end-to-end deadline, seconds from admission (None: none).
    deadline_seconds: Optional[float] = None
    #: ``perf_counter`` instant the deadline expires (derived at admission).
    deadline_at: Optional[float] = None
    # -- filled in by the inference batch --------------------------------
    label: Optional[int] = None
    policy: str = ""
    probability: Optional[float] = None
    used_model: bool = False
    #: True when inference was bypassed by the circuit breaker or a
    #: failed/timed-out forward pass — the answer is still correct (the
    #: default policy is sound), only selection quality degraded.
    degraded: bool = False
    batch_size: int = 0
    queue_wait_seconds: float = 0.0
    # -- filled in at completion -----------------------------------------
    outcome: Optional[SolveOutcome] = None
    wall_seconds: float = 0.0
    done: asyncio.Event = field(default_factory=asyncio.Event)
    watchers: List["asyncio.Queue[Dict[str, Any]]"] = field(
        default_factory=list
    )

    def http_code(self) -> int:
        """Response code for the current (terminal) state."""
        if self.state is RequestState.CANCELLED or self.outcome is None:
            return 200
        return http_code_for(self.outcome.status)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of the request for status and stream responses."""
        record: Dict[str, Any] = {
            "id": self.id,
            "state": self.state.value,
            "max_conflicts": self.max_conflicts,
        }
        if self.deadline_seconds is not None:
            record["deadline_seconds"] = self.deadline_seconds
        if self.label is not None:
            record["label"] = self.label
            record["policy"] = self.policy
            record["probability"] = self.probability
            record["used_model"] = self.used_model
            record["degraded"] = self.degraded
            record["batch_size"] = self.batch_size
        if self.outcome is not None:
            record["status"] = self.outcome.status.value
            record["model"] = self.outcome.model
            record["propagations"] = self.outcome.propagations
            record["conflicts"] = self.outcome.conflicts
            record["cached"] = self.outcome.cached
            record["resumed"] = self.outcome.resumed
            record["wall_seconds"] = round(self.wall_seconds, 6)
            record["queue_wait_seconds"] = round(self.queue_wait_seconds, 6)
            if self.deadline_seconds is not None:
                record["deadline_missed"] = (
                    self.wall_seconds > self.deadline_seconds
                )
            if self.outcome.error:
                record["error"] = self.outcome.error
        return record

    def transition(self, state: RequestState) -> None:
        """Advance the lifecycle and notify every attached watcher."""
        self.state = state
        if state.terminal:
            self.done.set()
        if self.watchers:
            snap = self.snapshot()
            for queue in self.watchers:
                queue.put_nowait(snap)


class AdmissionError(Exception):
    """Request rejected at the front door, never admitted.

    ``http_code`` distinguishes the retryable cases (429: queue full or
    deadline infeasible, with a ``retry_after`` hint in seconds) from
    the draining service (503).  ``reason`` is a stable machine-readable
    tag (``queue-full`` / ``deadline-infeasible`` / ``not-accepting``)
    carried into the ``serve-request`` trace event.
    """

    def __init__(
        self,
        message: str,
        http_code: int = HTTP_QUEUE_FULL,
        retry_after: float = 1.0,
        reason: str = "queue-full",
    ):
        super().__init__(message)
        self.http_code = http_code
        self.retry_after = retry_after
        self.reason = reason
