"""Resilience primitives for the solve service: circuit breaker, deadlines.

The service's learned component — the batched HGT forward pass — is the
one stage with no soundness obligation: the paper's selector chooses
between two *always-correct* deletion policies, so skipping inference
degrades solve **effort**, never solve **answers**.  This module makes
that guarantee operational:

* :class:`CircuitBreaker` guards the inference path with the classic
  CLOSED → OPEN → HALF_OPEN state machine.  Failures (raised forward
  passes, timed-out passes, optionally *slow* passes) are counted over
  a rolling sample window; past a failure-rate threshold the breaker
  opens and every request bypasses inference, receiving the default
  policy immediately with ``degraded=true``.  After a cooldown the
  breaker admits a bounded number of half-open *probe* batches — a
  probe failure reopens, enough probe successes close.

* Deadline helpers translate a per-request client deadline into the
  budgets the execution layer actually enforces: the remaining wall
  clock clamps the supervisor's per-attempt budget (so no worker
  outlives its request) and — via a configured conflicts-per-second
  rate — the solver's conflict budget.

Both pieces take an injectable monotonic clock so the full state
machine is unit-testable without a single ``sleep``.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.observer import NULL_OBSERVER, Observer


class BreakerState(enum.Enum):
    """Where the breaker currently sits (see module docs)."""

    CLOSED = "CLOSED"        # normal operation; failures are counted
    OPEN = "OPEN"            # inference bypassed; cooling down
    HALF_OPEN = "HALF_OPEN"  # bounded probes decide recovery vs reopen


#: Gauge encoding of the breaker state (``serve.breaker_state``):
#: healthy states are low, the tripped state is the peak.
BREAKER_STATE_GAUGE: Dict[BreakerState, int] = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of one :class:`CircuitBreaker`.

    ``slow_seconds`` is the latency threshold: a forward pass slower
    than it counts as a failure even though it returned — a stalling
    model is as harmful to tail latency as a crashing one.
    """

    #: Rolling sample window (most recent forward-pass outcomes).
    window: int = 16
    #: Minimum samples in the window before the rate is trusted.
    min_samples: int = 4
    #: Failure rate in the window at which the breaker opens.
    failure_threshold: float = 0.5
    #: Latency past which a *successful* pass still counts as a failure.
    slow_seconds: Optional[float] = None
    #: Seconds the breaker stays OPEN before admitting probes.
    cooldown_seconds: float = 5.0
    #: Probe batches allowed in flight while HALF_OPEN.
    half_open_probes: int = 1
    #: Consecutive probe successes required to close again.
    recovery_successes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1 or self.min_samples > self.window:
            raise ValueError("min_samples must be in [1, window]")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.slow_seconds is not None and self.slow_seconds <= 0:
            raise ValueError("slow_seconds must be positive")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.recovery_successes < 1:
            raise ValueError("recovery_successes must be >= 1")


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN breaker over a rolling failure window.

    The caller's contract is three calls:

    * :meth:`allow` before attempting the guarded operation — ``False``
      means bypass it (serve the degraded fallback);
    * :meth:`record_success` / :meth:`record_failure` after each
      attempt that :meth:`allow` admitted.

    Every transition is appended to :attr:`transitions`, emitted as a
    ``breaker-transition`` trace event, and mirrored into the
    ``serve.breaker_state`` gauge (0 closed, 1 half-open, 2 open).
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        observer: Observer = NULL_OBSERVER,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self.observer = observer
        self.clock = clock
        self.state = BreakerState.CLOSED
        #: (from_state, to_state, reason) history, oldest first.
        self.transitions: List[Tuple[str, str, str]] = []
        #: Requests turned away by :meth:`allow` (OPEN or probe-budget).
        self.short_circuits = 0
        self._samples: Deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._gauge = observer.gauge("serve.breaker_state")
        self._gauge.set(BREAKER_STATE_GAUGE[self.state])

    # -- the guard ---------------------------------------------------------

    def allow(self) -> bool:
        """True when the guarded operation may be attempted now."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (
                self.clock() - self._opened_at
                >= self.config.cooldown_seconds
            ):
                self._transition(BreakerState.HALF_OPEN, "cooldown elapsed")
            else:
                self.short_circuits += 1
                return False
        # HALF_OPEN: admit a bounded number of concurrent probes.
        if self._probes_in_flight < self.config.half_open_probes:
            self._probes_in_flight += 1
            return True
        self.short_circuits += 1
        return False

    # -- outcome reporting -------------------------------------------------

    def record_success(self, seconds: float = 0.0) -> None:
        """Report one admitted attempt that returned a result."""
        slow = self.config.slow_seconds
        if slow is not None and seconds > slow:
            self._record_failure(f"slow ({seconds:.3g}s > {slow:.3g}s)")
            return
        if self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.config.recovery_successes:
                self._samples.clear()
                self._transition(
                    BreakerState.CLOSED,
                    f"{self._probe_successes} probe successes",
                )
            return
        if self.state is BreakerState.CLOSED:
            self._samples.append(False)

    def record_failure(self, seconds: float = 0.0, reason: str = "") -> None:
        """Report one admitted attempt that raised, hung, or timed out."""
        self._record_failure(reason or "failure")

    def _record_failure(self, reason: str) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # One failed probe is enough: the dependency is still sick.
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._open(f"probe failed: {reason}")
            return
        if self.state is BreakerState.OPEN:
            return  # a straggler finishing after the trip; nothing new
        self._samples.append(True)
        if len(self._samples) >= self.config.min_samples:
            rate = sum(self._samples) / len(self._samples)
            if rate >= self.config.failure_threshold:
                self._open(
                    f"failure rate {rate:.2f} >= "
                    f"{self.config.failure_threshold:.2f} "
                    f"over {len(self._samples)} samples ({reason})"
                )

    # -- state plumbing ----------------------------------------------------

    def _open(self, reason: str) -> None:
        self._opened_at = self.clock()
        self._transition(BreakerState.OPEN, reason)

    def _transition(self, state: BreakerState, reason: str) -> None:
        previous = self.state
        self.state = state
        if state is BreakerState.HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
        self.transitions.append((previous.value, state.value, reason))
        self._gauge.set(BREAKER_STATE_GAUGE[state])
        self.observer.event(
            "breaker-transition",
            from_state=previous.value,
            to_state=state.value,
            reason=reason,
        )

    # -- introspection -----------------------------------------------------

    def failure_rate(self) -> float:
        """Failure fraction of the current rolling window (0 if empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/healthz`` and chaos reports."""
        return {
            "state": self.state.value,
            "failure_rate": round(self.failure_rate(), 4),
            "samples": len(self._samples),
            "short_circuits": self.short_circuits,
            "transitions": len(self.transitions),
        }


# ---------------------------------------------------------------------------
# Deadline propagation


def remaining_deadline(
    deadline_at: Optional[float], now: Optional[float] = None
) -> Optional[float]:
    """Seconds left before ``deadline_at`` (perf_counter-based); None = no deadline.

    A non-positive return means the deadline already passed.
    """
    if deadline_at is None:
        return None
    return deadline_at - (time.perf_counter() if now is None else now)


def clamp_conflicts_to_deadline(
    max_conflicts: int,
    remaining_seconds: float,
    conflicts_per_second: float,
) -> int:
    """Conflict budget affordable within the remaining wall clock.

    The rate is a service-level calibration knob, not a measurement —
    the point is that a request with 100 ms left never receives a
    million-conflict budget whose attempt the supervisor would only
    kill later.  The result is floored at 1 (a budget of 0 is not a
    legal solver input).
    """
    if remaining_seconds <= 0:
        return 1
    affordable = int(remaining_seconds * conflicts_per_second)
    return max(1, min(max_conflicts, affordable))
