"""The solve service: admission, batched inference, supervised solving.

:class:`SolveService` is the long-lived core behind ``repro serve``.
The pipeline per request::

    submit() --admission--> [inference queue] --flush--> HGT forward pass
                                                             |
    response <-- journal/cache or ParallelRunner <-- [solve queue]

Three asyncio components, mirroring the executor/orchestrator split of
job-runner systems:

* the **front door** (:meth:`submit`) applies admission control — a hard
  queue-depth cap (reject with 429 rather than building unbounded
  backlog), per-request conflict budgets clamped to a service cap, and
  deadline shedding: a client deadline the smoothed queue wait already
  makes infeasible is refused up front with a ``Retry-After`` hint;
* the :class:`~repro.serve.batcher.InferenceBatcher` coalesces queued
  requests into one batched HGT forward pass (size- or deadline-
  triggered), amortizing selection cost across concurrent traffic;
* the **solve pool** drains classified requests and fans each group out
  through one shared :class:`~repro.parallel.runner.ParallelRunner` —
  supervised worker processes with wall-clock/memory budgets, the
  on-disk result cache, and the append-only journal.  Groups run
  serially through the runner (the journal is single-writer by
  design); parallelism lives *inside* a group, across its worker
  processes.

Restart survival comes from the journal: a service restarted with the
same journal path answers already-completed (formula, policy, budget)
triples from disk without re-solving — the same ``--resume`` contract
sweeps rely on.  Graceful shutdown (``stop(drain=True)``) stops
admissions (new submissions get 503), then drains both queues to empty
before exiting, so an orderly restart loses nothing at all.

Resilience (all opt-in via :class:`ServeConfig`; see
:mod:`repro.serve.resilience` and ``docs/serving.md``): a circuit
breaker over the inference path serves default-policy answers tagged
``degraded`` while the model is sick, and per-request deadlines are
propagated into the conflict and supervisor wall budgets so no worker
outlives its request.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cnf.formula import CNF
from repro.obs.metrics import TIME_BUCKETS
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel.runner import ParallelRunner, SolveOutcome, SolveTask
from repro.selection.dataset import DEFAULT_MAX_NODES
from repro.serve.batcher import InferenceBatcher
from repro.serve.protocol import (
    HTTP_NOT_ACCEPTING,
    AdmissionError,
    RequestState,
    ServeRequest,
)
from repro.serve.resilience import (
    BreakerConfig,
    CircuitBreaker,
    clamp_conflicts_to_deadline,
)
from repro.serve.sessions import SessionManager
from repro.solver.solver import SolverConfig
from repro.solver.types import Status


@dataclass
class ServeConfig:
    """Tunables of one service instance (see ``repro serve --help``)."""

    # -- inference batching ----------------------------------------------
    max_batch: int = 16            # size-triggered flush threshold
    flush_window: float = 0.05     # deadline-triggered flush, seconds
    max_nodes: int = DEFAULT_MAX_NODES  # node cap: larger graphs skip inference
    threshold: Optional[float] = None   # decision threshold (None: model's)
    # -- admission control and budgets -----------------------------------
    max_queue_depth: int = 64      # in-flight request cap; beyond is 429
    default_max_conflicts: int = 100_000  # budget when the request names none
    max_conflicts_cap: int = 1_000_000    # hard per-request budget ceiling
    # -- solve execution --------------------------------------------------
    solver_core: str = "arena"
    workers: int = 1               # processes per solve group
    task_timeout: Optional[float] = None   # per-request wall budget, seconds
    memory_limit_mb: Optional[float] = None
    cache_dir: Optional[str] = None
    journal: Optional[str] = None  # restart-survival ledger
    #: Terminal requests kept queryable via ``GET /jobs/<id>``.
    history_limit: int = 1024
    # -- resilience (all off by default: zero overhead) -------------------
    #: Circuit breaker over the inference path (None: unguarded).
    breaker: Optional[BreakerConfig] = None
    #: Hard cap on one batched forward pass, seconds (None: uncapped).
    inference_timeout: Optional[float] = None
    #: Calibration rate turning a request's remaining deadline into an
    #: affordable conflict budget (see resilience module docs).
    conflicts_per_second: float = 25_000.0
    # -- sticky sessions (repro.serve.sessions) ---------------------------
    #: Idle seconds before a session is evicted.
    session_ttl: float = 300.0
    #: Concurrent live sessions; beyond it ``POST /sessions`` is 429.
    max_sessions: int = 64
    #: Expert-feature drift past which a session re-runs HGT inference.
    session_drift_threshold: float = 0.1


_STOP = object()


class SolveService:
    """Asynchronous solve service with batched policy inference."""

    def __init__(
        self,
        model=None,
        config: Optional[ServeConfig] = None,
        observer: Observer = NULL_OBSERVER,
    ):
        self.config = config or ServeConfig()
        self.model = model
        self.observer = observer
        cfg = self.config
        self.breaker = (
            CircuitBreaker(cfg.breaker, observer=observer)
            if cfg.breaker is not None
            else None
        )
        self.batcher = InferenceBatcher(
            model,
            max_batch=cfg.max_batch,
            flush_window=cfg.flush_window,
            max_nodes=cfg.max_nodes,
            threshold=cfg.threshold,
            breaker=self.breaker,
            inference_timeout=cfg.inference_timeout,
            observer=observer,
        )
        self.runner = ParallelRunner(
            workers=cfg.workers,
            cache_dir=cfg.cache_dir,
            task_timeout=cfg.task_timeout,
            memory_limit_mb=cfg.memory_limit_mb,
            journal=cfg.journal,
            observer=observer,
        )
        self.solver_config = SolverConfig(core=cfg.solver_core)
        self.sessions = SessionManager(
            model,
            solver_config=self.solver_config,
            session_ttl=cfg.session_ttl,
            max_sessions=cfg.max_sessions,
            drift_threshold=cfg.session_drift_threshold,
            max_nodes=cfg.max_nodes,
            threshold=cfg.threshold,
            default_max_conflicts=cfg.default_max_conflicts,
            max_conflicts_cap=cfg.max_conflicts_cap,
            observer=observer,
        )
        self.requests: Dict[str, ServeRequest] = {}
        self.accepting = False
        # Plain-int totals: always live, even with observability off
        # (the registry's null instruments read 0 forever).
        self.total_requests = 0
        self.total_responses = 0
        self.total_rejected = 0
        self.total_cancelled = 0
        self.total_degraded = 0
        self.total_shed = 0
        self.total_deadline_missed = 0
        # Smoothed submit->flush wait, the admission-time feasibility
        # estimate for deadline shedding (None until the first response).
        self._wait_ewma: Optional[float] = None
        self._tasks: Dict[str, asyncio.Task] = {}
        self._terminal_order: Deque[str] = deque()
        self._solve_queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._solve_task: Optional[asyncio.Task] = None
        # Pre-resolved instruments (null when observability is disabled).
        self._requests_counter = observer.counter("serve.requests")
        self._rejected_counter = observer.counter("serve.rejected")
        self._responses_counter = observer.counter("serve.responses")
        self._cancelled_counter = observer.counter("serve.cancelled")
        self._depth_gauge = observer.gauge("serve.queue_depth")
        self._wall_hist = observer.histogram(
            "serve.request_wall_seconds", TIME_BUCKETS
        )
        self._wait_hist = observer.histogram(
            "serve.queue_wait_seconds", TIME_BUCKETS
        )
        self._degraded_counter = observer.counter("serve.degraded")
        self._shed_counter = observer.counter("serve.shed")
        self._deadline_miss_hist = observer.histogram(
            "serve.deadline_miss_seconds", TIME_BUCKETS
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the batcher and the solve pool; begin accepting."""
        await self.batcher.start()
        if self._solve_task is None:
            self._solve_task = asyncio.create_task(self._solve_loop())
        self.accepting = True

    async def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` every admitted request completes.

        ``drain=True`` (graceful): stop admissions, wait for all
        in-flight requests to reach a terminal state, then stop the
        pipeline loops.  ``drain=False``: cancel in-flight requests
        (they report CANCELLED) and stop immediately.
        """
        self.accepting = False
        active = [
            task for task in self._tasks.values() if not task.done()
        ]
        if not drain:
            for task in active:
                task.cancel()
        if active:
            await asyncio.gather(*active, return_exceptions=True)
        self.sessions.close_all()
        await self.batcher.stop()
        if self._solve_task is not None:
            await self._solve_queue.put(_STOP)
            await self._solve_task
            self._solve_task = None
        self.observer.event(
            "serve-stop",
            drained=drain,
            requests=self.total_requests,
            responses=self.total_responses,
            rejected=self.total_rejected,
            cancelled=self.total_cancelled,
            degraded=self.total_degraded,
            shed=self.total_shed,
        )
        self.observer.flush()

    @property
    def active(self) -> int:
        """Requests admitted but not yet terminal (the queue depth)."""
        return sum(
            1 for r in self.requests.values() if not r.state.terminal
        )

    # -- front door --------------------------------------------------------

    def submit(
        self,
        cnf: CNF,
        max_conflicts: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> ServeRequest:
        """Admit one solve request, or raise :class:`AdmissionError`.

        Budgets: a request naming no conflict budget gets
        ``default_max_conflicts``; every budget is clamped to
        ``max_conflicts_cap``.  The wall-clock budget is the service's
        ``task_timeout``, enforced by the supervisor per attempt —
        further clamped by ``deadline_seconds`` when the client set one,
        so no worker outlives its request.

        A deadline the current queue wait already makes infeasible is
        *shed* here (429 with ``retry_after``) rather than admitted to
        time out — the client learns immediately, and the queue carries
        only requests that can still be answered in time.
        """
        depth = self.active
        if not self.accepting:
            self._reject(
                depth, "not-accepting",
                AdmissionError(
                    "service is not accepting requests",
                    http_code=HTTP_NOT_ACCEPTING,
                    retry_after=5.0,
                    reason="not-accepting",
                ),
            )
        if depth >= self.config.max_queue_depth:
            self._reject(
                depth, "queue-full",
                AdmissionError(
                    f"queue full ({depth}/{self.config.max_queue_depth})",
                    retry_after=1.0,
                    reason="queue-full",
                ),
            )
        if deadline_seconds is not None:
            estimate = self._wait_ewma or 0.0
            if deadline_seconds <= 0 or estimate >= deadline_seconds:
                self.total_shed += 1
                self._shed_counter.inc()
                self._reject(
                    depth, "deadline-infeasible",
                    AdmissionError(
                        f"deadline {deadline_seconds:.3g}s infeasible "
                        f"(estimated queue wait {estimate:.3g}s)",
                        retry_after=max(1.0, round(estimate, 1)),
                        reason="deadline-infeasible",
                    ),
                )
        budget = (
            self.config.default_max_conflicts
            if max_conflicts is None
            else max_conflicts
        )
        budget = max(1, min(budget, self.config.max_conflicts_cap))
        request = ServeRequest(
            cnf=cnf,
            max_conflicts=budget,
            deadline_seconds=deadline_seconds,
        )
        if deadline_seconds is not None:
            request.deadline_at = request.submitted + deadline_seconds
        self.requests[request.id] = request
        self.total_requests += 1
        self._requests_counter.inc()
        self._depth_gauge.set(depth + 1)
        fields: Dict[str, object] = dict(
            admitted=True,
            id=request.id,
            queue_depth=depth + 1,
            num_vars=cnf.num_vars,
            num_clauses=cnf.num_clauses,
            max_conflicts=budget,
        )
        if deadline_seconds is not None:
            fields["deadline_seconds"] = deadline_seconds
        self.observer.event("serve-request", **fields)
        self._tasks[request.id] = asyncio.create_task(self._run(request))
        return request

    def _reject(
        self, depth: int, reason: str, error: AdmissionError
    ) -> None:
        """Count, trace, and raise one admission rejection."""
        self.total_rejected += 1
        self._rejected_counter.inc()
        self.observer.event(
            "serve-request",
            admitted=False,
            queue_depth=depth,
            accepting=self.accepting,
            reason=reason,
        )
        raise error

    def get(self, request_id: str) -> Optional[ServeRequest]:
        """Look up a live or recently terminal request."""
        return self.requests.get(request_id)

    def cancel(self, request_id: str) -> bool:
        """Cancel an in-flight request (client disconnect); True if cut."""
        request = self.requests.get(request_id)
        if request is None or request.state.terminal:
            return False
        task = self._tasks.get(request_id)
        if task is None or task.done():
            return False
        task.cancel()
        return True

    async def wait(self, request_id: str) -> ServeRequest:
        """Block until the request reaches a terminal state."""
        request = self.requests[request_id]
        await request.done.wait()
        return request

    # -- request pipeline --------------------------------------------------

    async def _run(self, request: ServeRequest) -> None:
        try:
            choice = await self.batcher.submit(
                request.cnf,
                on_flush=lambda: request.transition(RequestState.INFERRING),
            )
            request.label = choice.label
            request.policy = choice.policy
            request.probability = choice.probability
            request.used_model = choice.used_model
            request.degraded = choice.degraded
            request.batch_size = choice.batch_size
            request.queue_wait_seconds = choice.queue_wait_seconds
            self._wait_hist.observe(choice.queue_wait_seconds)
            wait = choice.queue_wait_seconds
            self._wait_ewma = (
                wait
                if self._wait_ewma is None
                else 0.8 * self._wait_ewma + 0.2 * wait
            )
            if choice.degraded:
                self.total_degraded += 1
                self._degraded_counter.inc()
            request.transition(RequestState.SOLVING)
            if (
                request.deadline_at is not None
                and time.perf_counter() >= request.deadline_at
            ):
                # Already too late: spend nothing further on it.
                outcome = SolveOutcome.from_failure(
                    self._task_for(request),
                    Status.TIMEOUT,
                    f"deadline ({request.deadline_seconds:.3g}s) expired "
                    "before solving began",
                    attempts=0,
                )
            else:
                outcome = await self._dispatch_solve(request)
            self._complete(request, outcome)
        except asyncio.CancelledError:
            self.total_cancelled += 1
            self._cancelled_counter.inc()
            request.transition(RequestState.CANCELLED)
            self.observer.event(
                "serve-response",
                id=request.id,
                status="CANCELLED",
                code=request.http_code(),
                wall_seconds=round(
                    time.perf_counter() - request.submitted, 6
                ),
            )
            raise
        except Exception as exc:  # noqa: BLE001 - terminal, never a hang
            # A pipeline bug must still produce a terminal response:
            # watchers and held connections are waiting on `done`.
            if not request.state.terminal:
                self._complete(
                    request,
                    SolveOutcome.from_failure(
                        self._task_for(request),
                        Status.ERROR,
                        f"service pipeline error: "
                        f"{type(exc).__name__}: {exc}",
                        attempts=1,
                    ),
                )
        finally:
            self._depth_gauge.set(self.active)
            self._retire(request)

    def _complete(self, request: ServeRequest, outcome: SolveOutcome) -> None:
        """Record one terminal outcome and emit its response event."""
        request.outcome = outcome
        request.wall_seconds = time.perf_counter() - request.submitted
        self._wall_hist.observe(request.wall_seconds)
        deadline_missed = False
        if (
            request.deadline_seconds is not None
            and request.wall_seconds > request.deadline_seconds
        ):
            deadline_missed = True
            self.total_deadline_missed += 1
            self._deadline_miss_hist.observe(
                request.wall_seconds - request.deadline_seconds
            )
        self.total_responses += 1
        self._responses_counter.inc()
        request.transition(RequestState.DONE)
        fields: Dict[str, object] = dict(
            id=request.id,
            status=outcome.status.value,
            code=request.http_code(),
            policy=request.policy,
            label=request.label,
            batch_size=request.batch_size,
            cached=outcome.cached,
            resumed=outcome.resumed,
            wall_seconds=round(request.wall_seconds, 6),
            queue_wait_seconds=round(request.queue_wait_seconds, 6),
        )
        if request.degraded:
            fields["degraded"] = True
        if deadline_missed:
            fields["deadline_missed"] = True
        self.observer.event("serve-response", **fields)

    def _retire(self, request: ServeRequest) -> None:
        """Bound the terminal-request history at ``history_limit``."""
        self._tasks.pop(request.id, None)
        self._terminal_order.append(request.id)
        while len(self._terminal_order) > self.config.history_limit:
            stale = self._terminal_order.popleft()
            self.requests.pop(stale, None)

    async def _dispatch_solve(self, request: ServeRequest) -> SolveOutcome:
        future: "asyncio.Future[SolveOutcome]" = (
            asyncio.get_running_loop().create_future()
        )
        await self._solve_queue.put((request, future))
        return await future

    def _task_for(self, request: ServeRequest) -> SolveTask:
        """Build the solve task, deadline-clamped at build time.

        The remaining deadline (measured *now*, after queueing and
        inference already spent part of it) clamps both budgets: the
        conflict budget via the calibrated rate, and the supervisor's
        per-attempt wall budget via ``wall_budget_seconds`` — so a
        worker is killed no later than its request's deadline.  The
        wall budget stays out of the task's cache key (it depends on
        queue timing, not on the problem).
        """
        max_conflicts = request.max_conflicts
        wall_budget = self.config.task_timeout
        if request.deadline_at is not None:
            remaining = max(
                0.001, request.deadline_at - time.perf_counter()
            )
            max_conflicts = clamp_conflicts_to_deadline(
                max_conflicts, remaining, self.config.conflicts_per_second
            )
            wall_budget = (
                remaining
                if wall_budget is None
                else min(wall_budget, remaining)
            )
        return SolveTask(
            cnf=request.cnf,
            policy=request.policy,
            config=self.solver_config,
            max_conflicts=max_conflicts,
            tag=request.id,
            wall_budget_seconds=wall_budget,
        )

    async def _solve_loop(self) -> None:
        """Drain classified requests in groups through the shared runner.

        One group = everything queued at pickup time; requests that
        finished inference together are solved by one ``runner.run``
        call, so the journal/cache lookups and the supervised fan-out
        amortize the same way the inference does.  Groups are serial —
        the journal has exactly one writer.
        """
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await self._solve_queue.get()
            if item is _STOP:
                break
            group: List[Tuple[ServeRequest, asyncio.Future]] = [item]
            while not self._solve_queue.empty():
                extra = self._solve_queue.get_nowait()
                if extra is _STOP:
                    stopping = True
                    break
                group.append(extra)
            # Cancelled futures (client gone) never reach the solver.
            group = [(req, fut) for req, fut in group if not fut.done()]
            if not group:
                continue
            tasks = [self._task_for(req) for req, _ in group]
            try:
                outcomes = await loop.run_in_executor(
                    None, self.runner.run, tasks
                )
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                # The runner's contract is outcomes-never-exceptions,
                # so this is a dispatch-layer bug — but the futures of
                # this group (and all future groups) must not hang on it.
                outcomes = [
                    SolveOutcome.from_failure(
                        task,
                        Status.ERROR,
                        f"solve dispatch failed: "
                        f"{type(exc).__name__}: {exc}",
                        attempts=1,
                    )
                    for task in tasks
                ]
            for (req, fut), outcome in zip(group, outcomes):
                if not fut.done():
                    fut.set_result(outcome)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Point-in-time service counters (the ``/healthz`` payload)."""
        stats: Dict[str, object] = {
            "accepting": self.accepting,
            "queue_depth": self.active,
            "requests": self.total_requests,
            "responses": self.total_responses,
            "rejected": self.total_rejected,
            "cancelled": self.total_cancelled,
            "degraded": self.total_degraded,
            "shed": self.total_shed,  # deadline sheds (subset of rejected)
            "deadline_missed": self.total_deadline_missed,
            "inference_passes": self.batcher.passes,
            "inference_served": self.batcher.served,
            "inference_failures": self.batcher.failures,
            "sessions": self.sessions.stats(),
        }
        if self.breaker is not None:
            stats["breaker"] = self.breaker.stats()
        return stats
