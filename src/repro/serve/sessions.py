"""Sticky solve sessions for the service: warm solvers, cached policy.

One :class:`ServeSession` owns a long-lived
:class:`~repro.solver.session.SolverSession` (warm learned clauses,
phases, and clause arena) plus a
:class:`~repro.selection.session.SelectorSession` (drift-gated policy
inference), so correlated traffic — a client solving a family of
closely related formulas — skips both graph construction and the HGT
forward pass on most calls, and every solve after the first starts from
the previous call's learned state.

The :class:`SessionManager` is the service-side registry:

* ``create`` admits a new session (capacity-capped like the request
  queue: beyond ``max_sessions`` it rejects with 429);
* sessions are evicted after ``session_ttl`` idle seconds — eviction is
  lazy (checked on every create/lookup) plus a sweep from the service's
  stats path, so an abandoned session costs memory only until the next
  touch of the manager;
* ``solve`` serializes calls *within* a session behind an
  ``asyncio.Lock`` (incremental state is inherently sequential) while
  distinct sessions solve concurrently on the executor.

Unlike one-shot ``/solve`` requests, session solves run **in-process**
(on the event loop's thread pool), not through the supervised
:class:`~repro.parallel.runner.ParallelRunner`: warm solver state
cannot cross a process boundary, so sessions trade per-request process
isolation for state reuse.  Budgets are still clamped to the service's
conflict caps, and the caps are *per call* (the session facade
translates them on top of counters already spent).

Trace events: ``session-start`` / ``session-solve`` /
``session-select`` / ``session-evict`` / ``session-end``, all carrying
the session id, plus ``session.*`` counters — the embedding-reuse
amortization is measured from these in the CI session-smoke job.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from typing import Dict, List, Optional, Sequence

from repro.cnf.formula import CNF
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.registry import get_policy
from repro.selection.session import SelectorSession
from repro.serve.protocol import AdmissionError
from repro.solver.session import SolverSession
from repro.solver.solver import SolverConfig
from repro.solver.types import Status


def new_serve_session_id() -> str:
    """Service session identifier (``s-`` + 12 hex chars)."""
    return "s-" + uuid.uuid4().hex[:12]


class ServeSession:
    """One client's sticky session: warm solver + cached policy choice."""

    def __init__(
        self,
        session_id: str,
        solver: SolverSession,
        selector: SelectorSession,
        ttl: float,
    ):
        self.id = session_id
        self.solver = solver
        self.selector = selector
        self.ttl = ttl
        self.created = time.monotonic()
        self.last_used = self.created
        self.solves = 0
        self.lock = asyncio.Lock()

    def touch(self) -> None:
        self.last_used = time.monotonic()

    @property
    def idle_seconds(self) -> float:
        return time.monotonic() - self.last_used

    @property
    def expired(self) -> bool:
        return self.idle_seconds > self.ttl

    def snapshot(self) -> Dict[str, object]:
        """The ``GET /sessions/<id>`` payload."""
        last = self.solver.last_status
        return {
            "id": self.id,
            "num_vars": self.solver.num_vars,
            "num_clauses": self.solver.cnf.num_clauses,
            "solves": self.solves,
            "policy": self.solver.policy_name,
            "core": self.solver.core,
            "ttl": self.ttl,
            "idle_seconds": round(self.idle_seconds, 3),
            "last_status": last.value if last is not None else None,
            "selector": self.selector.stats(),
        }


class SessionManager:
    """Registry, TTL eviction, and solve path for sticky sessions."""

    def __init__(
        self,
        model,
        solver_config: Optional[SolverConfig] = None,
        session_ttl: float = 300.0,
        max_sessions: int = 64,
        drift_threshold: float = 0.1,
        max_nodes: Optional[int] = None,
        threshold: Optional[float] = None,
        default_max_conflicts: int = 100_000,
        max_conflicts_cap: int = 1_000_000,
        observer: Observer = NULL_OBSERVER,
    ):
        if session_ttl <= 0:
            raise ValueError("session_ttl must be positive")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.model = model
        self.solver_config = solver_config or SolverConfig()
        self.session_ttl = session_ttl
        self.max_sessions = max_sessions
        self.drift_threshold = drift_threshold
        self.max_nodes = max_nodes
        self.threshold = threshold
        self.default_max_conflicts = default_max_conflicts
        self.max_conflicts_cap = max_conflicts_cap
        self.observer = observer
        self.sessions: Dict[str, ServeSession] = {}
        self.total_created = 0
        self.total_evicted = 0
        self.total_closed = 0
        self.total_solves = 0
        self._created_counter = observer.counter("session.created")
        self._evicted_counter = observer.counter("session.evicted")
        self._solves_counter = observer.counter("session.solves")

    # -- lifecycle ---------------------------------------------------------

    def create(
        self,
        cnf: Optional[CNF] = None,
        num_vars: Optional[int] = None,
        ttl: Optional[float] = None,
        drift_threshold: Optional[float] = None,
    ) -> ServeSession:
        """Open a session over ``cnf`` (or an empty ``num_vars``-variable
        formula); raises :class:`AdmissionError` at capacity."""
        self.evict_expired()
        if len(self.sessions) >= self.max_sessions:
            raise AdmissionError(
                f"session capacity reached "
                f"({len(self.sessions)}/{self.max_sessions})",
                retry_after=self.session_ttl / 10.0,
                reason="sessions-full",
            )
        if cnf is None:
            cnf = CNF(clauses=[], num_vars=int(num_vars or 0))
        session_id = new_serve_session_id()
        drift = (
            self.drift_threshold
            if drift_threshold is None
            else float(drift_threshold)
        )
        selector_kwargs = {}
        if self.max_nodes is not None:
            selector_kwargs["max_nodes"] = self.max_nodes
        selector = SelectorSession(
            self.model,
            drift_threshold=drift,
            threshold=self.threshold,
            observer=self.observer,
            session_id=session_id,
            **selector_kwargs,
        )
        solver = SolverSession(
            cnf,
            config=self.solver_config,
            observer=self.observer,
            session_id=session_id,
        )
        session = ServeSession(
            session_id,
            solver,
            selector,
            float(ttl) if ttl is not None else self.session_ttl,
        )
        self.sessions[session_id] = session
        self.total_created += 1
        self._created_counter.inc()
        self.observer.event(
            "session-start",
            session=session_id,
            num_vars=solver.num_vars,
            num_clauses=solver.cnf.num_clauses,
            ttl=session.ttl,
            core=solver.core,
            drift_threshold=drift,
        )
        return session

    def get(self, session_id: str) -> Optional[ServeSession]:
        """Look up a live session (evicting anything already expired)."""
        self.evict_expired()
        return self.sessions.get(session_id)

    def close(self, session_id: str) -> bool:
        """Explicitly end a session; True if it existed."""
        session = self.sessions.pop(session_id, None)
        if session is None:
            return False
        self.total_closed += 1
        self.observer.event(
            "session-end",
            session=session_id,
            reason="closed",
            solves=session.solves,
            selections=session.selector.selections,
            embedding_reuses=session.selector.reuses,
        )
        return True

    def evict_expired(self) -> int:
        """Drop every session idle past its TTL; returns the count."""
        expired = [s for s in self.sessions.values() if s.expired]
        for session in expired:
            self.sessions.pop(session.id, None)
            self.total_evicted += 1
            self._evicted_counter.inc()
            self.observer.event(
                "session-evict",
                session=session.id,
                reason="idle",
                idle_seconds=round(session.idle_seconds, 3),
                solves=session.solves,
            )
        return len(expired)

    def close_all(self, reason: str = "shutdown") -> None:
        """End every live session (service stop path)."""
        for session_id in list(self.sessions):
            session = self.sessions.pop(session_id)
            self.total_closed += 1
            self.observer.event(
                "session-end",
                session=session_id,
                reason=reason,
                solves=session.solves,
                selections=session.selector.selections,
                embedding_reuses=session.selector.reuses,
            )

    # -- the solve path ----------------------------------------------------

    async def solve(
        self,
        session: ServeSession,
        add: Sequence[Sequence[int]] = (),
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Dict[str, object]:
        """One incremental solve call: add clauses, (re)select the
        policy, solve under assumptions.  Serialized per session."""
        loop = asyncio.get_running_loop()
        async with session.lock:
            session.touch()
            payload = await loop.run_in_executor(
                None,
                self._solve_sync,
                session,
                [list(c) for c in add],
                [int(lit) for lit in assumptions],
                max_conflicts,
            )
            session.touch()
        return payload

    def _solve_sync(
        self,
        session: ServeSession,
        add: List[List[int]],
        assumptions: List[int],
        max_conflicts: Optional[int],
    ) -> Dict[str, object]:
        start = time.perf_counter()
        for clause in add:
            session.solver.add(*clause)
        selection = session.selector.select(session.solver.cnf)
        if selection.policy != session.solver.policy_name:
            session.solver.set_policy(get_policy(selection.policy))
        budget = (
            self.default_max_conflicts
            if max_conflicts is None
            else int(max_conflicts)
        )
        budget = max(1, min(budget, self.max_conflicts_cap))
        result = session.solver.solve(
            assumptions=assumptions, max_conflicts=budget
        )
        session.solves += 1
        self.total_solves += 1
        self._solves_counter.inc()
        payload: Dict[str, object] = {
            "session": session.id,
            "call": session.solves,
            "status": result.status.value,
            "policy": selection.policy,
            "label": selection.label,
            "reused_embedding": selection.reused,
            "drift_distance": round(selection.distance, 6),
            "num_clauses": session.solver.cnf.num_clauses,
            "wall_seconds": round(time.perf_counter() - start, 6),
        }
        if result.status is Status.SATISFIABLE and result.model is not None:
            payload["model"] = [
                v if result.model[v] else -v
                for v in range(1, session.solver.num_vars + 1)
            ]
        if result.core is not None:
            payload["failed"] = list(result.core)
        return payload

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Session counters for ``/healthz`` (sweeps expired first)."""
        self.evict_expired()
        reuses = sum(s.selector.reuses for s in self.sessions.values())
        passes = sum(
            s.selector.inference_passes for s in self.sessions.values()
        )
        return {
            "active": len(self.sessions),
            "created": self.total_created,
            "evicted": self.total_evicted,
            "closed": self.total_closed,
            "solves": self.total_solves,
            "live_embedding_reuses": reuses,
            "live_inference_passes": passes,
        }
