"""Inference batcher: coalesce queued requests into one HGT forward pass.

NeuroSelect's selection cost is one model inference per instance; at
service scale that forward pass dominates the cheap formulas that make
up most traffic.  The batcher amortizes it: requests submitted within a
*flush window* are collected into one
:class:`~repro.graph.batching.BatchedBipartiteGraph` and classified by a
single :meth:`~repro.models.neuroselect.NeuroSelect.predict_proba_batch`
call, whose segmented attention makes the batched probabilities exactly
the per-instance ones.

Flush triggers, in priority order:

* **size** — the batch reached ``max_batch`` members; flush immediately
  (latency never waits on a full batch);
* **deadline** — ``flush_window`` seconds elapsed since the *first*
  member of the batch was picked up; flush whatever accumulated (a lone
  request pays at most the window, never an unbounded wait);
* **drain** — the batcher is stopping; residual queued requests are
  flushed in ``max_batch``-sized chunks so shutdown loses nothing.

Requests whose future was cancelled (client disconnect) are dropped at
flush time, before any graph construction or inference is spent on
them.  Instances whose graph exceeds ``max_nodes`` skip inference and
fall back to the default policy, exactly like
:class:`~repro.selection.selector.NeuroSelectSolver` (the paper's
>400k-node handling).

**Failure contract**: the forward pass has no soundness obligation
(both candidate policies are correct), so nothing it can do — raise,
stall past ``inference_timeout``, or be short-circuited by an open
:class:`~repro.serve.resilience.CircuitBreaker` — is allowed to lose a
request.  Every live member of a failed batch resolves to a
default-policy :class:`PolicyChoice` tagged ``degraded=True``, and the
flush loop itself is exception-proof: a bug anywhere in the flush path
still resolves every member rather than wedging the queue.

Instrumentation: each forward pass increments
``serve.inference_passes`` and records the number of coalesced requests
in the ``serve.batch_size`` histogram — the amortization claim is
``count(serve.batch_size) < serve.requests``, measured, not asserted —
plus one ``serve-batch`` trace event per flush.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.cnf.formula import CNF
from repro.graph.batching import batch_graphs
from repro.graph.bipartite import BipartiteGraph
from repro.obs.metrics import BATCH_BUCKETS
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.registry import LABEL_TO_POLICY
from repro.selection.dataset import DEFAULT_MAX_NODES


@dataclass
class PolicyChoice:
    """Result of one batched policy inference, for one request."""

    label: int
    policy: str
    probability: Optional[float]
    used_model: bool          # False: node cap (or no model) forced default
    batch_size: int           # live requests coalesced into this flush
    trigger: str              # "size" | "deadline" | "drain"
    inference_seconds: float  # forward-pass cost of the whole batch
    queue_wait_seconds: float  # submit -> flush wait for this request
    #: True when this request *would* have used the model but inference
    #: was bypassed (open breaker) or failed (raise / timeout).
    degraded: bool = False


class _Pending:
    """One queued submission: the formula and the future awaiting it."""

    __slots__ = ("cnf", "future", "enqueued", "on_flush")

    def __init__(
        self,
        cnf: CNF,
        future: "asyncio.Future[PolicyChoice]",
        on_flush=None,
    ):
        self.cnf = cnf
        self.future = future
        self.enqueued = time.perf_counter()
        self.on_flush = on_flush


_STOP = object()


class InferenceBatcher:
    """Size- or deadline-triggered batching of policy inference."""

    def __init__(
        self,
        model,
        *,
        max_batch: int = 16,
        flush_window: float = 0.05,
        max_nodes: int = DEFAULT_MAX_NODES,
        threshold: Optional[float] = None,
        breaker=None,
        inference_timeout: Optional[float] = None,
        observer: Observer = NULL_OBSERVER,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_window < 0:
            raise ValueError("flush_window must be >= 0")
        if inference_timeout is not None and inference_timeout <= 0:
            raise ValueError("inference_timeout must be positive")
        self.model = model
        self.max_batch = max_batch
        self.flush_window = flush_window
        self.max_nodes = max_nodes
        if threshold is None:
            threshold = getattr(model, "decision_threshold", 0.5)
        self.threshold = threshold
        #: Optional :class:`~repro.serve.resilience.CircuitBreaker`
        #: guarding the forward pass (None: no guard, zero overhead).
        self.breaker = breaker
        #: Hard cap on one forward pass, seconds.  A pass past it is a
        #: failure: the batch degrades to the default policy (the
        #: orphaned executor thread finishes into the void; the breaker
        #: is what prevents such threads piling up).
        self.inference_timeout = inference_timeout
        self.observer = observer
        #: Forward passes performed (one per non-empty eligible batch).
        self.passes = 0
        #: Requests that received a choice (incl. node-cap fallbacks).
        self.served = 0
        #: Forward passes that raised or timed out.
        self.failures = 0
        #: Requests resolved with a degraded (fallback) choice.
        self.degraded = 0
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._passes_counter = observer.counter("serve.inference_passes")
        self._batch_hist = observer.histogram(
            "serve.batch_size", BATCH_BUCKETS
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the flush loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.create_task(self._loop())

    async def stop(self) -> None:
        """Stop the flush loop, draining anything still queued first."""
        if self._task is None:
            return
        await self._queue.put(_STOP)
        await self._task
        self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None

    @property
    def queued(self) -> int:
        """Submissions waiting for a flush (approximate, for gauges)."""
        return self._queue.qsize()

    # -- submission --------------------------------------------------------

    async def submit(self, cnf: CNF, on_flush=None) -> PolicyChoice:
        """Queue one instance; resolves when its batch is flushed.

        ``on_flush`` (no-arg callable) fires when the request's batch
        begins its forward pass — the service uses it for the
        QUEUED→INFERRING lifecycle transition.  Cancelling the awaiting
        task drops the request from its batch — no graph is built and
        no inference slot is spent on it.
        """
        if self._task is None:
            raise RuntimeError("batcher is not running; call start() first")
        pending = _Pending(
            cnf, asyncio.get_running_loop().create_future(), on_flush
        )
        await self._queue.put(pending)
        return await pending.future

    # -- flush loop --------------------------------------------------------

    async def _loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch: List[_Pending] = [first]
            # The window opens when the first member is picked up; later
            # members only ever shorten the wait, never extend it.
            deadline = loop.time() + self.flush_window
            stopping = False
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            trigger = "size" if len(batch) >= self.max_batch else "deadline"
            await self._safe_flush(batch, trigger)
            if stopping:
                await self._drain()
                break

    async def _drain(self) -> None:
        """Flush submissions that raced in behind the stop sentinel."""
        residue: List[_Pending] = []
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not _STOP:
                residue.append(item)
        while residue:
            chunk, residue = (
                residue[: self.max_batch],
                residue[self.max_batch:],
            )
            await self._safe_flush(chunk, "drain")

    async def _safe_flush(self, batch: List[_Pending], trigger: str) -> None:
        """Flush with a last-resort net: a bug never wedges the queue.

        ``_flush`` already converts every *expected* failure (raising
        or slow forward pass, open breaker) into degraded fallback
        choices.  This wrapper covers the unexpected: if the flush path
        itself raises, every still-pending member is resolved with a
        degraded default choice instead of hanging its submitter and
        killing the loop task.
        """
        try:
            await self._flush(batch, trigger)
        except Exception:
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_result(
                        self._fallback_choice(
                            batch_size=len(batch),
                            trigger=trigger,
                            queue_wait=time.perf_counter()
                            - pending.enqueued,
                            degraded=self.model is not None,
                        )
                    )
                    self.served += 1

    def _fallback_choice(
        self,
        batch_size: int,
        trigger: str,
        queue_wait: float,
        degraded: bool,
        inference_seconds: float = 0.0,
    ) -> PolicyChoice:
        """Default-policy choice for a request that skipped inference."""
        if degraded:
            self.degraded += 1
        return PolicyChoice(
            label=0,
            policy=LABEL_TO_POLICY[0],
            probability=None,
            used_model=False,
            batch_size=batch_size,
            trigger=trigger,
            inference_seconds=inference_seconds,
            queue_wait_seconds=queue_wait,
            degraded=degraded,
        )

    async def _flush(self, batch: List[_Pending], trigger: str) -> None:
        """Classify one batch and resolve every live member's future."""
        live = [p for p in batch if not p.future.done()]
        if not live:
            return
        for pending in live:
            if pending.on_flush is not None:
                pending.on_flush()
        loop = asyncio.get_running_loop()
        flushed_at = time.perf_counter()
        degraded_reason = ""
        graphs: Optional[List[BipartiteGraph]] = None
        if self.model is not None:
            try:
                # Graph construction is numpy-heavy; keep it off the
                # event loop.
                graphs = await loop.run_in_executor(
                    None, lambda: [BipartiteGraph(p.cnf) for p in live]
                )
            except Exception as exc:
                degraded_reason = (
                    f"graph-construction: {type(exc).__name__}: {exc}"
                )
        eligible = (
            [
                i
                for i, g in enumerate(graphs)
                if g.num_nodes <= self.max_nodes
            ]
            if graphs is not None
            else []
        )
        if eligible and self.breaker is not None and not self.breaker.allow():
            degraded_reason = "breaker-open"
        inference_seconds = 0.0
        probabilities: dict = {}
        if eligible and not degraded_reason:
            member_graphs = [graphs[i] for i in eligible]

            def _forward() -> List[float]:
                return self.model.predict_proba_batch(
                    batch_graphs(member_graphs)
                )

            start = time.perf_counter()
            try:
                forward = loop.run_in_executor(None, _forward)
                if self.inference_timeout is not None:
                    values = await asyncio.wait_for(
                        forward, self.inference_timeout
                    )
                else:
                    values = await forward
            except asyncio.TimeoutError:
                inference_seconds = time.perf_counter() - start
                degraded_reason = (
                    f"inference-timeout ({self.inference_timeout:.3g}s)"
                )
                self.failures += 1
                if self.breaker is not None:
                    self.breaker.record_failure(
                        inference_seconds, reason="timeout"
                    )
            except Exception as exc:
                inference_seconds = time.perf_counter() - start
                degraded_reason = (
                    f"inference-error: {type(exc).__name__}: {exc}"
                )
                self.failures += 1
                if self.breaker is not None:
                    self.breaker.record_failure(
                        inference_seconds, reason=f"{type(exc).__name__}"
                    )
            else:
                inference_seconds = time.perf_counter() - start
                probabilities = dict(zip(eligible, values))
                self.passes += 1
                self._passes_counter.inc()
                self._batch_hist.observe(len(live))
                if self.breaker is not None:
                    self.breaker.record_success(inference_seconds)
        # Members that would have gone through the model but could not
        # (failed pass, open breaker, failed graph build) are *degraded*;
        # node-cap fallbacks with a healthy pipeline are not — skipping
        # oversized graphs is the paper's intended behaviour.
        eligible_set = set(eligible)
        degraded_members = 0
        for index, pending in enumerate(live):
            probability = probabilities.get(index)
            if probability is None:
                degraded = bool(degraded_reason) and (
                    index in eligible_set or graphs is None
                ) and self.model is not None
                if degraded:
                    degraded_members += 1
                choice = self._fallback_choice(
                    batch_size=len(live),
                    trigger=trigger,
                    queue_wait=flushed_at - pending.enqueued,
                    degraded=degraded,
                    inference_seconds=inference_seconds,
                )
            else:
                label = int(probability >= self.threshold)
                choice = PolicyChoice(
                    label=label,
                    policy=LABEL_TO_POLICY[label],
                    probability=probability,
                    used_model=True,
                    batch_size=len(live),
                    trigger=trigger,
                    inference_seconds=inference_seconds,
                    queue_wait_seconds=flushed_at - pending.enqueued,
                )
            if not pending.future.done():
                pending.future.set_result(choice)
                self.served += 1
        event_fields = dict(
            size=len(live),
            eligible=len(eligible),
            trigger=trigger,
            inference_seconds=round(inference_seconds, 6),
        )
        if degraded_reason:
            event_fields["degraded"] = degraded_members
            event_fields["reason"] = degraded_reason
        self.observer.event("serve-batch", **event_fields)
