"""Inference batcher: coalesce queued requests into one HGT forward pass.

NeuroSelect's selection cost is one model inference per instance; at
service scale that forward pass dominates the cheap formulas that make
up most traffic.  The batcher amortizes it: requests submitted within a
*flush window* are collected into one
:class:`~repro.graph.batching.BatchedBipartiteGraph` and classified by a
single :meth:`~repro.models.neuroselect.NeuroSelect.predict_proba_batch`
call, whose segmented attention makes the batched probabilities exactly
the per-instance ones.

Flush triggers, in priority order:

* **size** — the batch reached ``max_batch`` members; flush immediately
  (latency never waits on a full batch);
* **deadline** — ``flush_window`` seconds elapsed since the *first*
  member of the batch was picked up; flush whatever accumulated (a lone
  request pays at most the window, never an unbounded wait);
* **drain** — the batcher is stopping; residual queued requests are
  flushed in ``max_batch``-sized chunks so shutdown loses nothing.

Requests whose future was cancelled (client disconnect) are dropped at
flush time, before any graph construction or inference is spent on
them.  Instances whose graph exceeds ``max_nodes`` skip inference and
fall back to the default policy, exactly like
:class:`~repro.selection.selector.NeuroSelectSolver` (the paper's
>400k-node handling).

Instrumentation: each forward pass increments
``serve.inference_passes`` and records the number of coalesced requests
in the ``serve.batch_size`` histogram — the amortization claim is
``count(serve.batch_size) < serve.requests``, measured, not asserted —
plus one ``serve-batch`` trace event per flush.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.cnf.formula import CNF
from repro.graph.batching import batch_graphs
from repro.graph.bipartite import BipartiteGraph
from repro.obs.metrics import BATCH_BUCKETS
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.registry import LABEL_TO_POLICY
from repro.selection.dataset import DEFAULT_MAX_NODES


@dataclass
class PolicyChoice:
    """Result of one batched policy inference, for one request."""

    label: int
    policy: str
    probability: Optional[float]
    used_model: bool          # False: node cap (or no model) forced default
    batch_size: int           # live requests coalesced into this flush
    trigger: str              # "size" | "deadline" | "drain"
    inference_seconds: float  # forward-pass cost of the whole batch
    queue_wait_seconds: float  # submit -> flush wait for this request


class _Pending:
    """One queued submission: the formula and the future awaiting it."""

    __slots__ = ("cnf", "future", "enqueued", "on_flush")

    def __init__(
        self,
        cnf: CNF,
        future: "asyncio.Future[PolicyChoice]",
        on_flush=None,
    ):
        self.cnf = cnf
        self.future = future
        self.enqueued = time.perf_counter()
        self.on_flush = on_flush


_STOP = object()


class InferenceBatcher:
    """Size- or deadline-triggered batching of policy inference."""

    def __init__(
        self,
        model,
        *,
        max_batch: int = 16,
        flush_window: float = 0.05,
        max_nodes: int = DEFAULT_MAX_NODES,
        threshold: Optional[float] = None,
        observer: Observer = NULL_OBSERVER,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_window < 0:
            raise ValueError("flush_window must be >= 0")
        self.model = model
        self.max_batch = max_batch
        self.flush_window = flush_window
        self.max_nodes = max_nodes
        if threshold is None:
            threshold = getattr(model, "decision_threshold", 0.5)
        self.threshold = threshold
        self.observer = observer
        #: Forward passes performed (one per non-empty eligible batch).
        self.passes = 0
        #: Requests that received a choice (incl. node-cap fallbacks).
        self.served = 0
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._passes_counter = observer.counter("serve.inference_passes")
        self._batch_hist = observer.histogram(
            "serve.batch_size", BATCH_BUCKETS
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the flush loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.create_task(self._loop())

    async def stop(self) -> None:
        """Stop the flush loop, draining anything still queued first."""
        if self._task is None:
            return
        await self._queue.put(_STOP)
        await self._task
        self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None

    @property
    def queued(self) -> int:
        """Submissions waiting for a flush (approximate, for gauges)."""
        return self._queue.qsize()

    # -- submission --------------------------------------------------------

    async def submit(self, cnf: CNF, on_flush=None) -> PolicyChoice:
        """Queue one instance; resolves when its batch is flushed.

        ``on_flush`` (no-arg callable) fires when the request's batch
        begins its forward pass — the service uses it for the
        QUEUED→INFERRING lifecycle transition.  Cancelling the awaiting
        task drops the request from its batch — no graph is built and
        no inference slot is spent on it.
        """
        if self._task is None:
            raise RuntimeError("batcher is not running; call start() first")
        pending = _Pending(
            cnf, asyncio.get_running_loop().create_future(), on_flush
        )
        await self._queue.put(pending)
        return await pending.future

    # -- flush loop --------------------------------------------------------

    async def _loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch: List[_Pending] = [first]
            # The window opens when the first member is picked up; later
            # members only ever shorten the wait, never extend it.
            deadline = loop.time() + self.flush_window
            stopping = False
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            trigger = "size" if len(batch) >= self.max_batch else "deadline"
            await self._flush(batch, trigger)
            if stopping:
                await self._drain()
                break

    async def _drain(self) -> None:
        """Flush submissions that raced in behind the stop sentinel."""
        residue: List[_Pending] = []
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not _STOP:
                residue.append(item)
        while residue:
            chunk, residue = (
                residue[: self.max_batch],
                residue[self.max_batch:],
            )
            await self._flush(chunk, "drain")

    async def _flush(self, batch: List[_Pending], trigger: str) -> None:
        """Classify one batch and resolve every live member's future."""
        live = [p for p in batch if not p.future.done()]
        if not live:
            return
        for pending in live:
            if pending.on_flush is not None:
                pending.on_flush()
        loop = asyncio.get_running_loop()
        flushed_at = time.perf_counter()
        # Graph construction is numpy-heavy; keep it off the event loop.
        graphs = await loop.run_in_executor(
            None, lambda: [BipartiteGraph(p.cnf) for p in live]
        )
        eligible = (
            [
                i
                for i, g in enumerate(graphs)
                if g.num_nodes <= self.max_nodes
            ]
            if self.model is not None
            else []
        )
        inference_seconds = 0.0
        probabilities: dict = {}
        if eligible:
            member_graphs = [graphs[i] for i in eligible]

            def _forward() -> List[float]:
                return self.model.predict_proba_batch(
                    batch_graphs(member_graphs)
                )

            start = time.perf_counter()
            values = await loop.run_in_executor(None, _forward)
            inference_seconds = time.perf_counter() - start
            probabilities = dict(zip(eligible, values))
            self.passes += 1
            self._passes_counter.inc()
            self._batch_hist.observe(len(live))
        for index, pending in enumerate(live):
            probability = probabilities.get(index)
            if probability is None:
                label, used_model = 0, False
            else:
                label = int(probability >= self.threshold)
                used_model = True
            choice = PolicyChoice(
                label=label,
                policy=LABEL_TO_POLICY[label],
                probability=probability,
                used_model=used_model,
                batch_size=len(live),
                trigger=trigger,
                inference_seconds=inference_seconds,
                queue_wait_seconds=flushed_at - pending.enqueued,
            )
            if not pending.future.done():
                pending.future.set_result(choice)
                self.served += 1
        self.observer.event(
            "serve-batch",
            size=len(live),
            eligible=len(eligible),
            trigger=trigger,
            inference_seconds=round(inference_seconds, 6),
        )
