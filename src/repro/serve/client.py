"""Asyncio client for the solve service (stdlib only).

A thin raw-HTTP counterpart to :mod:`repro.serve.http` — one
connection per call, JSON in and out.  Used by
``examples/serve_client.py``, the service tests, and the CI smoke job;
anything that speaks HTTP (``curl``, ``urllib``) works equally well.

::

    client = ServeClient("127.0.0.1", 8123)
    reply = await client.solve("p cnf 2 2\\n1 2 0\\n-1 2 0\\n")
    assert reply.json["status"] in ("SATISFIABLE", "UNSATISFIABLE")

``solve(wait=True)`` holds the connection until the result is ready;
the HTTP status carries the failure taxonomy (200 decided/UNKNOWN,
504 TIMEOUT, 507 MEMOUT, 500 ERROR, 429 queue full).  ``wait=False``
returns the 202 ticket immediately — poll with :meth:`status` or
follow the lifecycle with :meth:`stream`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Optional


@dataclass
class ServeReply:
    """One HTTP exchange: taxonomy code plus the decoded JSON body."""

    code: int
    json: Any

    @property
    def ok(self) -> bool:
        return 200 <= self.code < 300


async def _read_response(reader: asyncio.StreamReader) -> ServeReply:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    code = int(lines[0].split()[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    else:
        body = await reader.read()  # Connection: close delimits the body
    return ServeReply(code=code, json=json.loads(body) if body else None)


class ServeClient:
    """Talks to one ``repro serve`` instance at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8123):
        self.host = host
        self.port = port

    # -- plumbing ----------------------------------------------------------

    async def _open(self):
        return await asyncio.open_connection(self.host, self.port)

    def _request_bytes(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> bytes:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode("ascii") + body

    async def _call(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> ServeReply:
        reader, writer = await self._open()
        try:
            writer.write(self._request_bytes(method, path, payload))
            await writer.drain()
            return await _read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- endpoints ---------------------------------------------------------

    async def solve(
        self,
        dimacs: str,
        max_conflicts: Optional[int] = None,
        wait: bool = True,
    ) -> ServeReply:
        """Submit one DIMACS formula; see the module docs for ``wait``."""
        payload: Dict[str, Any] = {"dimacs": dimacs, "wait": wait}
        if max_conflicts is not None:
            payload["max_conflicts"] = max_conflicts
        return await self._call("POST", "/solve", payload)

    async def status(self, job_id: str) -> ServeReply:
        """Snapshot of one job (404 when it aged out of the history)."""
        return await self._call("GET", f"/jobs/{job_id}")

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Yield lifecycle snapshots until the job reaches a terminal state.

        The first snapshot is the job's current state, so a stream
        opened late still sees (at least) the terminal record.
        """
        reader, writer = await self._open()
        try:
            writer.write(
                self._request_bytes("GET", f"/jobs/{job_id}/events")
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            code = int(head.decode("latin-1").split("\r\n")[0].split()[1])
            if code != 200:
                body = await reader.read()
                raise LookupError(
                    f"stream for {job_id!r} failed: "
                    f"{code} {body.decode('utf-8', 'replace')}"
                )
            while True:
                line = await reader.readline()
                if not line:
                    break
                yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def health(self) -> ServeReply:
        """Service counters (``GET /healthz``)."""
        return await self._call("GET", "/healthz")

    async def metrics(self) -> ServeReply:
        """Live counters plus the metrics-registry snapshot."""
        return await self._call("GET", "/metrics")

    async def wait_ready(self, timeout: float = 10.0) -> None:
        """Poll ``/healthz`` until the service answers (startup helper)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            try:
                reply = await self.health()
                if reply.ok:
                    return
            except OSError:
                pass
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"service at {self.host}:{self.port} not ready "
                    f"after {timeout:.1f}s"
                )
            await asyncio.sleep(0.05)
