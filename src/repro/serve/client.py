"""Asyncio client for the solve service (stdlib only).

A thin raw-HTTP counterpart to :mod:`repro.serve.http` — one
connection per call, JSON in and out.  Used by
``examples/serve_client.py``, the service tests, and the CI smoke job;
anything that speaks HTTP (``curl``, ``urllib``) works equally well.

::

    client = ServeClient("127.0.0.1", 8123)
    reply = await client.solve("p cnf 2 2\\n1 2 0\\n-1 2 0\\n")
    assert reply.json["status"] in ("SATISFIABLE", "UNSATISFIABLE")

``solve(wait=True)`` holds the connection until the result is ready;
the HTTP status carries the failure taxonomy (200 decided/UNKNOWN,
504 TIMEOUT, 507 MEMOUT, 500 ERROR, 429 queue full / deadline shed,
503 draining).  ``wait=False`` returns the 202 ticket immediately —
poll with :meth:`status` or follow the lifecycle with :meth:`stream`.

Retry: :meth:`solve` retries 429 responses and connection resets with
capped exponential backoff plus deterministic seeded jitter, honoring
the server's ``Retry-After`` hint when it exceeds the computed delay.
Retrying a solve is idempotent by construction — the service's journal
answers a repeated (formula, policy, budget) triple from disk, so a
retried request costs a lookup, not a re-solve.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, Optional, Sequence


@dataclass
class ServeReply:
    """One HTTP exchange: taxonomy code, decoded body, response headers."""

    code: int
    json: Any
    #: Response headers, lower-cased keys (``retry-after`` et al.).
    headers: Dict[str, str] = field(default_factory=dict)
    #: Raw body text for non-JSON responses (Prometheus ``/metrics``).
    text: Optional[str] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.code < 300

    @property
    def retry_after(self) -> Optional[float]:
        """Parsed ``Retry-After`` header, seconds (None when absent)."""
        value = self.headers.get("retry-after")
        if value is None:
            return None
        try:
            return float(value)
        except ValueError:
            return None


async def _read_response(reader: asyncio.StreamReader) -> ServeReply:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    code = int(lines[0].split()[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    else:
        body = await reader.read()  # Connection: close delimits the body
    if body and headers.get("content-type", "").startswith("text/plain"):
        return ServeReply(
            code=code, json=None, headers=headers,
            text=body.decode("utf-8"),
        )
    return ServeReply(
        code=code,
        json=json.loads(body) if body else None,
        headers=headers,
    )


#: Exceptions treated as a retryable transport failure.
_RETRYABLE_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    OSError,
)


class ServeClient:
    """Talks to one ``repro serve`` instance at ``host:port``.

    ``max_retries=0`` (the default) keeps the pre-retry behaviour: one
    attempt, errors propagate.  With retries enabled, the backoff for
    failure ``k`` (1-based) is
    ``min(backoff_seconds * multiplier**(k-1), max_backoff_seconds)``,
    raised to the server's ``Retry-After`` when larger, then jittered
    by ``±jitter`` (relative) from a seeded RNG — deterministic per
    client instance, so tests never sleep on randomness.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8123,
        *,
        max_retries: int = 0,
        backoff_seconds: float = 0.25,
        multiplier: float = 2.0,
        max_backoff_seconds: float = 5.0,
        jitter: float = 0.1,
        retry_seed: int = 0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.host = host
        self.port = port
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.multiplier = multiplier
        self.max_backoff_seconds = max_backoff_seconds
        self.jitter = jitter
        self._rng = random.Random(retry_seed)
        #: Retries actually performed (introspection for tests/metrics).
        self.retries = 0

    # -- plumbing ----------------------------------------------------------

    async def _open(self):
        return await asyncio.open_connection(self.host, self.port)

    def _request_bytes(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> bytes:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode("ascii") + body

    async def _call(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> ServeReply:
        reader, writer = await self._open()
        try:
            writer.write(self._request_bytes(method, path, payload))
            await writer.drain()
            return await _read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- endpoints ---------------------------------------------------------

    def _retry_delay(
        self, failures: int, retry_after: Optional[float]
    ) -> float:
        """Backoff before the next attempt, after ``failures`` failures."""
        raw = self.backoff_seconds * (
            self.multiplier ** max(failures - 1, 0)
        )
        delay = min(raw, self.max_backoff_seconds)
        if retry_after is not None:
            delay = max(delay, retry_after)
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return delay

    async def solve(
        self,
        dimacs: str,
        max_conflicts: Optional[int] = None,
        wait: bool = True,
        deadline: Optional[float] = None,
    ) -> ServeReply:
        """Submit one DIMACS formula; see the module docs for ``wait``.

        ``deadline`` (seconds) is forwarded to the service's admission
        control and budget clamping.  With ``max_retries > 0``, 429
        responses and connection failures are retried (see the class
        docs); the final attempt's response or error surfaces as-is.
        """
        payload: Dict[str, Any] = {"dimacs": dimacs, "wait": wait}
        if max_conflicts is not None:
            payload["max_conflicts"] = max_conflicts
        if deadline is not None:
            payload["deadline"] = deadline
        failures = 0
        while True:
            retry_after: Optional[float] = None
            try:
                reply = await self._call("POST", "/solve", payload)
            except _RETRYABLE_ERRORS:
                if failures >= self.max_retries:
                    raise
            else:
                if reply.code != 429 or failures >= self.max_retries:
                    return reply
                retry_after = reply.retry_after
            failures += 1
            self.retries += 1
            await asyncio.sleep(self._retry_delay(failures, retry_after))

    async def status(self, job_id: str) -> ServeReply:
        """Snapshot of one job (404 when it aged out of the history)."""
        return await self._call("GET", f"/jobs/{job_id}")

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Yield lifecycle snapshots until the job reaches a terminal state.

        The first snapshot is the job's current state, so a stream
        opened late still sees (at least) the terminal record.
        """
        reader, writer = await self._open()
        try:
            writer.write(
                self._request_bytes("GET", f"/jobs/{job_id}/events")
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            code = int(head.decode("latin-1").split("\r\n")[0].split()[1])
            if code != 200:
                body = await reader.read()
                raise LookupError(
                    f"stream for {job_id!r} failed: "
                    f"{code} {body.decode('utf-8', 'replace')}"
                )
            while True:
                line = await reader.readline()
                if not line:
                    break
                yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- sticky sessions ---------------------------------------------------

    async def session_create(
        self,
        dimacs: Optional[str] = None,
        num_vars: Optional[int] = None,
        ttl: Optional[float] = None,
        drift_threshold: Optional[float] = None,
    ) -> ServeReply:
        """Open a sticky incremental session (``POST /sessions``)."""
        payload: Dict[str, Any] = {}
        if dimacs is not None:
            payload["dimacs"] = dimacs
        if num_vars is not None:
            payload["num_vars"] = num_vars
        if ttl is not None:
            payload["ttl"] = ttl
        if drift_threshold is not None:
            payload["drift_threshold"] = drift_threshold
        return await self._call("POST", "/sessions", payload)

    async def session_solve(
        self,
        session_id: str,
        add: Optional[Sequence[Sequence[int]]] = None,
        assumptions: Optional[Sequence[int]] = None,
        max_conflicts: Optional[int] = None,
    ) -> ServeReply:
        """One incremental solve call against a session."""
        payload: Dict[str, Any] = {}
        if add is not None:
            payload["add"] = [list(clause) for clause in add]
        if assumptions is not None:
            payload["assume"] = [int(lit) for lit in assumptions]
        if max_conflicts is not None:
            payload["max_conflicts"] = max_conflicts
        return await self._call(
            "POST", f"/sessions/{session_id}/solve", payload
        )

    async def session_info(self, session_id: str) -> ServeReply:
        """Session snapshot (``GET /sessions/<id>``)."""
        return await self._call("GET", f"/sessions/{session_id}")

    async def session_close(self, session_id: str) -> ServeReply:
        """End a session (``DELETE /sessions/<id>``)."""
        return await self._call("DELETE", f"/sessions/{session_id}")

    async def health(self) -> ServeReply:
        """Service counters (``GET /healthz``)."""
        return await self._call("GET", "/healthz")

    async def metrics(self) -> ServeReply:
        """Live counters plus the metrics-registry snapshot (JSON)."""
        return await self._call("GET", "/metrics?format=json")

    async def metrics_text(self) -> ServeReply:
        """Prometheus text exposition (``reply.text``) from ``/metrics``."""
        return await self._call("GET", "/metrics")

    async def wait_ready(self, timeout: float = 10.0) -> None:
        """Poll ``/healthz`` until the service answers (startup helper)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            try:
                reply = await self.health()
                if reply.ok:
                    return
            except OSError:
                pass
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"service at {self.host}:{self.port} not ready "
                    f"after {timeout:.1f}s"
                )
            await asyncio.sleep(0.05)
