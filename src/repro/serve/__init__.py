"""Async solve service: admission control, batched inference, HTTP door.

``repro.serve`` turns the reproduction into a long-lived service:
:class:`SolveService` admits CNF solve requests, coalesces their policy
inference into batched HGT forward passes
(:class:`InferenceBatcher`), and fans solves out through the
supervised :class:`~repro.parallel.runner.ParallelRunner` with the
journal providing restart survival.  :class:`~repro.serve.http.HttpFrontDoor`
exposes it as JSON over HTTP on localhost (``repro serve``), and
:class:`ServeClient` is the matching asyncio client (with optional
capped-backoff retry).  :mod:`repro.serve.resilience` adds the opt-in
resilience layer: a :class:`CircuitBreaker` guarding the inference
path and per-request deadline propagation; :mod:`repro.chaos` is the
fault-injection harness that continuously verifies it.

See ``docs/serving.md`` for the architecture, request lifecycle, and a
curl-able quickstart.
"""

from repro.serve.batcher import InferenceBatcher, PolicyChoice
from repro.serve.client import ServeClient, ServeReply
from repro.serve.http import HttpFrontDoor, bound_address, start_service
from repro.serve.protocol import (
    HTTP_NOT_ACCEPTING,
    HTTP_QUEUE_FULL,
    STATUS_HTTP,
    AdmissionError,
    RequestState,
    ServeRequest,
    http_code_for,
)
from repro.serve.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.serve.service import ServeConfig, SolveService
from repro.serve.sessions import ServeSession, SessionManager

__all__ = [
    "AdmissionError",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "HTTP_NOT_ACCEPTING",
    "HTTP_QUEUE_FULL",
    "HttpFrontDoor",
    "InferenceBatcher",
    "PolicyChoice",
    "RequestState",
    "STATUS_HTTP",
    "ServeClient",
    "ServeConfig",
    "ServeReply",
    "ServeRequest",
    "ServeSession",
    "SessionManager",
    "SolveService",
    "bound_address",
    "http_code_for",
    "start_service",
]
