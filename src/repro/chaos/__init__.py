"""Chaos harness: deterministic fault injection against the live service.

``repro.chaos`` stress-tests the serving stack's resilience contract by
running scripted failure storms — crashing or stalling inference,
killing workers, failing journal writes, tearing client connections —
against a *real* :class:`~repro.serve.service.SolveService` with its
HTTP front door bound, then judging every response against invariants
(terminal, correct, degraded-honest, fault-delivery, breaker recovery,
journal replay).  Faults key on ordinals, never timestamps, so a
scenario's outcome fingerprint is reproducible: ``repro chaos
--check-determinism`` runs a scenario twice and demands identical
fingerprints.

Entry points: :func:`run_scenario` / the ``repro chaos`` CLI;
:data:`SCENARIOS` is the scripted registry.  See ``docs/serving.md``
for the resilience contract the invariants encode.
"""

from repro.chaos.faults import (
    INFERENCE_FAULT_KINDS,
    ChaoticModel,
    FlakyJournal,
    InferenceFault,
    attach_worker_faults,
    journal_for,
)
from repro.chaos.scenario import (
    SCENARIOS,
    ChaosReport,
    ChaosScenario,
    InvariantResult,
    RequestRecord,
    get_scenario,
    render_report,
    run_scenario,
    scenario_fingerprint,
    scenario_names,
)

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "ChaoticModel",
    "FlakyJournal",
    "INFERENCE_FAULT_KINDS",
    "InferenceFault",
    "InvariantResult",
    "RequestRecord",
    "SCENARIOS",
    "attach_worker_faults",
    "get_scenario",
    "journal_for",
    "render_report",
    "run_scenario",
    "scenario_fingerprint",
    "scenario_names",
]
