"""Deterministic fault injectors for the live solve service.

Each injector wraps one component boundary of the serving pipeline and
fires a scheduled fault at a deterministic point — a forward-pass
ordinal, a per-request worker fault, a journal-write ordinal — never at
a wall-clock time.  Scenarios (:mod:`repro.chaos.scenario`) compose
them into scripted failure storms whose outcome is reproducible enough
to fingerprint.

Injection points, matching the real failure surface:

* **inference** — :class:`ChaoticModel` proxies the NeuroSelect model
  and makes chosen ``predict_proba_batch`` calls raise, stall past the
  batcher's ``inference_timeout`` (hang), or merely dawdle (slow);
* **worker** — :func:`attach_worker_faults` maps request tags onto
  supervisor :class:`~repro.parallel.supervisor.Fault` plans, so a
  chosen request's worker process is killed / OOMs / crashes *inside*
  the supervised boundary;
* **journal** — :class:`FlakyJournal` is a
  :class:`~repro.parallel.journal.RunJournal` whose scheduled appends
  raise ``OSError`` (full disk, yanked volume);
* **client disconnect** is driven from the scenario side (tearing a
  held HTTP connection), not wrapped here — the service under test
  must see a real socket close.

Every triggered fault emits a ``chaos-fault`` trace event, so a trace
of a chaos run records both what was injected and how the service
answered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel.journal import RunJournal
from repro.parallel.supervisor import Fault, FaultPlan

#: Fault kinds :class:`ChaoticModel` understands.
INFERENCE_FAULT_KINDS = ("raise", "hang", "slow")


@dataclass(frozen=True)
class InferenceFault:
    """One scheduled forward-pass fault.

    ``seconds`` is the stall length for ``hang``/``slow``; a *hang* is
    simply a stall the scenario sizes past the batcher's
    ``inference_timeout`` (the model thread keeps running — exactly the
    orphaned-thread shape a real stall produces), while *slow* stays
    under it and merely inflates latency.
    """

    kind: str
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in INFERENCE_FAULT_KINDS:
            raise ValueError(
                f"unknown inference fault {self.kind!r}; "
                f"expected one of {INFERENCE_FAULT_KINDS}"
            )
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")


class ChaoticModel:
    """Model proxy injecting faults at scheduled forward-pass ordinals.

    ``faults`` maps the 1-based ordinal of a ``predict_proba_batch``
    call to the fault it suffers.  Ordinals — not timestamps — keep the
    schedule deterministic under scheduling jitter: the N-th forward
    pass fails no matter when it happens.  Runs inside the batcher's
    executor thread, so stalls block the pass, never the event loop.
    """

    def __init__(
        self,
        model,
        faults: Optional[Dict[int, InferenceFault]] = None,
        observer: Observer = NULL_OBSERVER,
    ):
        self.model = model
        self.faults = dict(faults or {})
        self.observer = observer
        #: Forward passes attempted (including faulted ones).
        self.calls = 0
        #: ``(ordinal, kind)`` of every fault that actually fired.
        self.triggered: List[Tuple[int, str]] = []

    @property
    def decision_threshold(self) -> float:
        return getattr(self.model, "decision_threshold", 0.5)

    def predict_proba_batch(self, batch):
        self.calls += 1
        fault = self.faults.get(self.calls)
        if fault is not None:
            self.triggered.append((self.calls, fault.kind))
            self.observer.event(
                "chaos-fault",
                point="inference",
                kind=fault.kind,
                call=self.calls,
            )
            if fault.kind == "raise":
                raise RuntimeError(
                    f"chaos: injected inference crash (call {self.calls})"
                )
            # hang / slow: stall, then answer normally.  For a hang the
            # batcher's wait_for has long since abandoned this thread
            # and the result vanishes into a cancelled future — the
            # realistic aftermath of a stalled dependency.
            time.sleep(fault.seconds)
        return self.model.predict_proba_batch(batch)


class FlakyJournal(RunJournal):
    """Run journal whose scheduled appends fail with ``OSError``.

    ``fail_writes`` holds 1-based ordinals of :meth:`record` calls that
    raise instead of writing (deduplicated repeat records still count a
    call — the schedule is over *attempts*, which is what the caller's
    error handling sees).
    """

    def __init__(
        self,
        path,
        fail_writes: Iterable[int] = (),
        observer: Observer = NULL_OBSERVER,
    ):
        super().__init__(path)
        self._fail_writes = frozenset(fail_writes)
        self._observer = observer
        #: Record attempts so far (1-based schedule domain).
        self.record_calls = 0
        #: Faults that actually fired.
        self.injected = 0

    def record(self, key, payload) -> None:
        self.record_calls += 1
        if self.record_calls in self._fail_writes:
            self.injected += 1
            self._observer.event(
                "chaos-fault",
                point="journal",
                kind="write-error",
                call=self.record_calls,
            )
            raise OSError(
                f"chaos: injected journal write failure "
                f"(record call {self.record_calls})"
            )
        super().record(key, payload)


def attach_worker_faults(
    runner, schedule: Dict[str, Fault], observer: Observer = NULL_OBSERVER
) -> None:
    """Rebind ``runner.run`` to install per-request worker faults.

    ``schedule`` maps task *tags* (the service uses request ids) to
    supervisor faults; on each ``run`` call the wrapper translates tags
    into that group's task indices and installs a
    :class:`~repro.parallel.supervisor.FaultPlan` for the duration of
    the call.  Keying by tag — not index — keeps the schedule stable
    however the service happens to group requests into solve batches.
    The mapping is consulted live, so a scenario may keep adding
    entries after attaching.
    """
    original = runner.run

    def run_with_faults(tasks):
        faults = {
            index: schedule[task.tag]
            for index, task in enumerate(tasks)
            if task.tag in schedule
        }
        previous = runner.fault_plan
        if faults:
            for index, fault in faults.items():
                observer.event(
                    "chaos-fault",
                    point="worker",
                    kind=fault.kind,
                    tag=tasks[index].tag,
                )
            runner.fault_plan = FaultPlan(faults)
        try:
            return original(tasks)
        finally:
            runner.fault_plan = previous

    runner.run = run_with_faults


def journal_for(
    path, fail_writes: Iterable[int], observer: Observer = NULL_OBSERVER
) -> Union[RunJournal, FlakyJournal]:
    """A journal for ``path``; flaky when any write is scheduled to fail."""
    if fail_writes:
        return FlakyJournal(path, fail_writes=fail_writes, observer=observer)
    return RunJournal(path)
