"""Scripted chaos scenarios against a real, live solve service.

A :class:`ChaosScenario` describes a deterministic failure storm —
which forward passes crash or stall, which workers are killed, which
journal writes fail, which clients vanish mid-wait — and
:func:`run_scenario` drives it against a real :class:`SolveService`
(with its HTTP front door bound, so client disconnects are genuine
socket closes) and then judges the wreckage against the service's
resilience contract:

* **terminal** — every request reaches a terminal state; nothing hangs;
* **correct** — every non-failure response matches a direct in-process
  solve of the same (formula, policy, budget) *and* passes the fuzz
  oracle bank's independent checks (model validity, brute force, DPLL);
* **degraded-honest** — every ``degraded`` response used the default
  policy and equals a direct default-policy solve: degraded mode costs
  selection quality, never answers;
* **fault-delivery** — every scheduled fault demonstrably fired and
  produced its expected failure shape (kill→ERROR, memout→MEMOUT);
* **breaker** — where configured, the breaker opened under sustained
  inference failure and recovered through a half-open probe;
* **replay** — after a mid-scenario restart on the same journal,
  re-submitted requests resume from disk with their original results.

Determinism: requests are submitted in *waves* of exactly
``max_batch`` members, so batch membership — and therefore which
requests a failed forward pass degrades — is schedule-independent.
Faults key on ordinals (forward-pass number, request number, journal
write number), never on timestamps.  The per-request facts that cannot
depend on timing are folded into a SHA-256 **fingerprint**; running a
scenario twice with the same seed must produce the same fingerprint
(the ``repro chaos --check-determinism`` gate).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.chaos.faults import (
    ChaoticModel,
    InferenceFault,
    attach_worker_faults,
    journal_for,
)
from repro.cnf.dimacs import to_dimacs
from repro.cnf.formula import CNF
from repro.cnf.generators import random_ksat
from repro.fuzz.oracles import (
    BruteForceOracle,
    DPLLOracle,
    ModelCheckOracle,
    OracleContext,
    formula_key,
)
from repro.models.neuroselect import NeuroSelect
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel.supervisor import Fault
from repro.policies.registry import get_policy
from repro.serve.http import bound_address, start_service
from repro.serve.resilience import BreakerConfig
from repro.serve.service import ServeConfig, SolveService
from repro.solver.solver import Solver, SolverConfig
from repro.solver.types import Status

#: Hard per-wave guard: a wave not terminal within this long IS a hang.
WAVE_GUARD_SECONDS = 120.0


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted failure storm (see module docs for semantics)."""

    name: str
    description: str
    waves: int = 2
    #: Requests per wave; also the service's ``max_batch``, so one wave
    #: is exactly one (size-triggered) inference batch.
    wave_size: int = 3
    #: Conflict budget per request (deterministic effort bound).
    budget: int = 2000
    #: Forward-pass ordinal (1-based) -> injected inference fault.
    inference_faults: Mapping[int, InferenceFault] = field(
        default_factory=dict
    )
    #: Request ordinal (0-based, submission order) -> worker fault.
    worker_faults: Mapping[int, Fault] = field(default_factory=dict)
    #: Journal ``record`` ordinals (1-based) that fail with ``OSError``.
    journal_fail_writes: Tuple[int, ...] = ()
    #: Request ordinals submitted over HTTP and disconnected mid-wait.
    disconnect_ordinals: Tuple[int, ...] = ()
    #: Stop the service after this wave (1-based) and restart it on the
    #: same journal; before continuing, every prior non-disconnected
    #: formula is re-submitted and checked for replay consistency.
    restart_after_wave: Optional[int] = None
    #: Breaker guarding inference (None: unguarded).
    breaker: Optional[BreakerConfig] = None
    #: Batcher forward-pass timeout, seconds (None: uncapped).
    inference_timeout: Optional[float] = None
    #: Pause between waves, seconds (lets a breaker cooldown elapse).
    wave_pause: float = 0.0
    #: Assert the breaker opened *and* recovered via half-open probe.
    expect_breaker_recovery: bool = False

    @property
    def total_requests(self) -> int:
        return self.waves * self.wave_size


@dataclass
class RequestRecord:
    """Deterministic per-request facts, as served."""

    ordinal: int
    wave: int
    phase: str                    # "main" | "replay"
    dimacs_sha: str
    num_vars: int
    status: str = ""
    policy: str = ""
    degraded: bool = False
    resumed: bool = False
    cached: bool = False
    code: Optional[int] = None
    error: str = ""
    terminal: bool = False
    disconnected: bool = False
    wall_seconds: float = 0.0
    model: Optional[List[Optional[bool]]] = None
    cnf: Optional[CNF] = None     # kept for invariant checks, not JSON

    def facts(self) -> Dict[str, Any]:
        """The timing-independent slice that feeds the fingerprint."""
        return {
            "ordinal": self.ordinal,
            "phase": self.phase,
            "sha": self.dimacs_sha[:16],
            "status": "DISCONNECTED" if self.disconnected else self.status,
            "policy": "" if self.disconnected else self.policy,
            "degraded": self.degraded,
            "resumed": self.resumed,
            "code": None if self.disconnected else self.code,
        }

    def as_json(self) -> Dict[str, Any]:
        record = self.facts()
        record.update(
            wave=self.wave,
            num_vars=self.num_vars,
            terminal=self.terminal,
            error=self.error,
            wall_seconds=round(self.wall_seconds, 6),
        )
        return record


@dataclass
class InvariantResult:
    """Verdict of one resilience invariant."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Everything one scenario run produced, judged."""

    scenario: str
    seed: int
    records: List[RequestRecord]
    invariants: List[InvariantResult]
    breaker_transitions: List[Tuple[str, str, str]]
    service_stats: Dict[str, Any]
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def as_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "fingerprint": self.fingerprint,
            "invariants": [
                {"name": i.name, "ok": i.ok, "detail": i.detail}
                for i in self.invariants
            ],
            "breaker_transitions": [list(t) for t in self.breaker_transitions],
            "records": [r.as_json() for r in self.records],
            "service": self.service_stats,
        }


def scenario_fingerprint(records: List[RequestRecord]) -> str:
    """SHA-256 over the canonical JSON of every record's stable facts."""
    blob = json.dumps(
        [record.facts() for record in records],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Scenario registry

#: Breaker sized for the harness: trips after two bad passes, probes
#: after 0.2 s, closes on the first clean probe.
_FAST_BREAKER = BreakerConfig(
    window=4,
    min_samples=2,
    failure_threshold=0.5,
    cooldown_seconds=0.2,
    half_open_probes=1,
    recovery_successes=1,
)

SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="inference-crash",
            description=(
                "The first two forward passes raise; the breaker opens "
                "after the second, then recovers via a half-open probe "
                "on wave three.  Crashed waves degrade to the default "
                "policy; answers stay correct throughout."
            ),
            waves=3,
            inference_faults={
                1: InferenceFault("raise"),
                2: InferenceFault("raise"),
            },
            breaker=_FAST_BREAKER,
            wave_pause=0.3,
            expect_breaker_recovery=True,
        ),
        ChaosScenario(
            name="inference-hang",
            description=(
                "The first forward pass stalls past the batcher's "
                "inference timeout; its wave degrades, the orphaned "
                "model thread finishes into the void, and the next "
                "wave uses the model again."
            ),
            waves=2,
            inference_faults={1: InferenceFault("hang", seconds=1.0)},
            inference_timeout=0.2,
        ),
        ChaosScenario(
            name="worker-kill",
            description=(
                "One worker is SIGKILLed mid-solve and another OOMs; "
                "both surface as structured failures (ERROR / MEMOUT) "
                "while every sibling request completes normally."
            ),
            waves=2,
            worker_faults={
                1: Fault("kill"),
                4: Fault("memout", message="chaos: injected memout"),
            },
        ),
        ChaosScenario(
            name="journal-flake",
            description=(
                "One journal append fails with OSError mid-run; the "
                "affected response is still served (the journal is an "
                "optimization, not a dependency) and the error is "
                "counted, not raised."
            ),
            waves=2,
            journal_fail_writes=(2,),
        ),
        ChaosScenario(
            name="restart",
            description=(
                "Clean run, then a drain-restart on the same journal; "
                "replayed requests must resume from disk with their "
                "original results instead of re-solving."
            ),
            waves=2,
            restart_after_wave=2,
        ),
        ChaosScenario(
            name="disconnect",
            description=(
                "A client submits over HTTP and tears the connection "
                "mid-wait; its request reaches a terminal state and "
                "sibling requests are untouched."
            ),
            waves=1,
            disconnect_ordinals=(0,),
        ),
        ChaosScenario(
            name="mixed",
            description=(
                "The CI storm: an inference crash trips the breaker, a "
                "worker is killed, a journal append fails, and the "
                "service is restarted mid-scenario — every response "
                "must still be terminal, correct, and replay-"
                "consistent."
            ),
            waves=3,
            inference_faults={1: InferenceFault("raise")},
            worker_faults={4: Fault("kill")},
            journal_fail_writes=(2,),
            restart_after_wave=2,
            breaker=BreakerConfig(
                window=4,
                min_samples=1,
                failure_threshold=1.0,
                cooldown_seconds=0.2,
                half_open_probes=1,
                recovery_successes=1,
            ),
            wave_pause=0.3,
            expect_breaker_recovery=True,
        ),
    )
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None


# ---------------------------------------------------------------------------
# The harness


def _formula_for(seed: int, ordinal: int) -> CNF:
    """Deterministic per-ordinal instance near the phase transition."""
    num_vars = 8 + (ordinal % 5)
    return random_ksat(
        num_vars, 4 * num_vars, seed=seed * 1000 + ordinal
    )


class _Harness:
    """One scenario execution: drives the service, collects records."""

    def __init__(
        self,
        scenario: ChaosScenario,
        seed: int,
        workdir: Path,
        observer: Observer,
    ):
        self.scenario = scenario
        self.seed = seed
        self.workdir = workdir
        self.observer = observer
        self.journal_path = workdir / "chaos-journal.jsonl"
        self.base_model = NeuroSelect(hidden_dim=8, seed=0)
        self.model: Optional[ChaoticModel] = None
        self.service: Optional[SolveService] = None
        self.server = None
        self.address: Tuple[str, int] = ("", 0)
        #: Request tag -> worker fault, consulted live by the wrapper.
        self.worker_schedule: Dict[str, Fault] = {}
        self.records: List[RequestRecord] = []
        self.breaker_transitions: List[Tuple[str, str, str]] = []
        self.journal_errors = 0
        self.journal_injected = 0
        self.inference_triggered: List[Tuple[int, str]] = []
        self.hangs: List[int] = []

    # -- service lifecycle -------------------------------------------------

    def _config(self) -> ServeConfig:
        scenario = self.scenario
        return ServeConfig(
            max_batch=scenario.wave_size,
            flush_window=0.25,
            max_queue_depth=max(64, 4 * scenario.wave_size),
            default_max_conflicts=scenario.budget,
            solver_core="arena",
            workers=1,
            breaker=scenario.breaker,
            inference_timeout=scenario.inference_timeout,
        )

    async def _start_service(self, with_faults: bool) -> None:
        scenario = self.scenario
        self.model = ChaoticModel(
            self.base_model,
            faults=dict(scenario.inference_faults) if with_faults else {},
            observer=self.observer,
        )
        self.service = SolveService(
            self.model, self._config(), observer=self.observer
        )
        # The journal is installed directly (not via config) so the
        # flaky variant can be injected; the restarted service gets a
        # clean one on the same path.
        self.service.runner.journal = journal_for(
            self.journal_path,
            scenario.journal_fail_writes if with_faults else (),
            observer=self.observer,
        )
        attach_worker_faults(
            self.service.runner, self.worker_schedule, self.observer
        )
        self.server, _ = await start_service(self.service)
        self.address = bound_address(self.server)

    async def _stop_service(self, drain: bool = True) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        if self.service is not None:
            await self.service.stop(drain=drain)
            self._harvest_service()
            self.service = None

    def _harvest_service(self) -> None:
        """Fold one service incarnation's tallies into the run totals."""
        assert self.service is not None and self.model is not None
        if self.service.breaker is not None:
            self.breaker_transitions.extend(
                self.service.breaker.transitions
            )
        self.journal_errors += self.service.runner.journal_errors
        journal = self.service.runner.journal
        self.journal_injected += getattr(journal, "injected", 0)
        self.inference_triggered.extend(self.model.triggered)

    # -- request driving ---------------------------------------------------

    async def _submit_wave(
        self, wave: int, ordinals: List[int], phase: str
    ) -> List[RequestRecord]:
        assert self.service is not None
        scenario = self.scenario
        records: List[RequestRecord] = []
        waiters: List[Tuple[RequestRecord, Any]] = []
        for ordinal in ordinals:
            cnf = _formula_for(self.seed, ordinal)
            record = RequestRecord(
                ordinal=ordinal,
                wave=wave,
                phase=phase,
                dimacs_sha=formula_key(cnf),
                num_vars=cnf.num_vars,
                cnf=cnf,
            )
            records.append(record)
            if (
                phase == "main"
                and ordinal in scenario.disconnect_ordinals
            ):
                record.disconnected = True
                request = await self._disconnect_submit(cnf)
            else:
                request = self.service.submit(
                    cnf, max_conflicts=scenario.budget
                )
                if phase == "main" and ordinal in scenario.worker_faults:
                    self.worker_schedule[request.id] = (
                        scenario.worker_faults[ordinal]
                    )
            waiters.append((record, request))
        self.observer.event(
            "chaos-wave",
            wave=wave,
            phase=phase,
            size=len(ordinals),
            ordinals=ordinals,
        )
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *[
                        request.done.wait()
                        for _, request in waiters
                        if request is not None
                    ]
                ),
                timeout=WAVE_GUARD_SECONDS,
            )
        except asyncio.TimeoutError:
            self.hangs.append(wave)
        for record, request in waiters:
            if request is None:
                continue  # disconnect raced admission; nothing to read
            record.terminal = request.state.terminal
            record.wall_seconds = request.wall_seconds
            if request.state.value == "CANCELLED":
                record.status = "CANCELLED"
                continue
            record.policy = request.policy
            record.degraded = request.degraded
            record.code = request.http_code()
            if request.outcome is not None:
                outcome = request.outcome
                record.status = outcome.status.value
                record.resumed = outcome.resumed
                record.cached = outcome.cached
                record.error = outcome.error
                record.model = outcome.model
        return records

    async def _disconnect_submit(self, cnf: CNF):
        """POST /solve over a raw socket, then tear the connection.

        Returns the admitted :class:`ServeRequest` (found by diffing
        the service's request table), or None if the teardown raced
        admission itself.
        """
        assert self.service is not None
        known = set(self.service.requests)
        host, port = self.address
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(
            {
                "dimacs": to_dimacs(cnf),
                "max_conflicts": self.scenario.budget,
                "wait": True,
            }
        ).encode("utf-8")
        head = (
            f"POST /solve HTTP/1.1\r\nHost: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        request = None
        for _ in range(400):  # ~4 s: admission is local and fast
            fresh = [
                r
                for rid, r in self.service.requests.items()
                if rid not in known
            ]
            if fresh:
                request = fresh[0]
                break
            await asyncio.sleep(0.01)
        self.observer.event(
            "chaos-fault",
            point="client",
            kind="disconnect",
            id=getattr(request, "id", None),
        )
        writer.transport.abort()  # RST mid-wait: the chaos, delivered
        return request

    # -- the run -----------------------------------------------------------

    async def run(self) -> ChaosReport:
        scenario = self.scenario
        self.observer.event(
            "chaos-start",
            scenario=scenario.name,
            seed=self.seed,
            waves=scenario.waves,
            wave_size=scenario.wave_size,
        )
        await self._start_service(with_faults=True)
        try:
            next_ordinal = 0
            completed_ordinals: List[int] = []
            for wave in range(1, scenario.waves + 1):
                if wave > 1 and scenario.wave_pause > 0:
                    await asyncio.sleep(scenario.wave_pause)
                ordinals = list(
                    range(next_ordinal, next_ordinal + scenario.wave_size)
                )
                next_ordinal += scenario.wave_size
                self.records.extend(
                    await self._submit_wave(wave, ordinals, "main")
                )
                completed_ordinals.extend(
                    o
                    for o in ordinals
                    if o not in scenario.disconnect_ordinals
                )
                if scenario.restart_after_wave == wave:
                    await self._restart(wave, completed_ordinals)
        finally:
            await self._stop_service(drain=True)
        stats = self._final_stats()
        report = ChaosReport(
            scenario=scenario.name,
            seed=self.seed,
            records=self.records,
            invariants=self._judge(stats),
            breaker_transitions=self.breaker_transitions,
            service_stats=stats,
        )
        report.fingerprint = scenario_fingerprint(self.records)
        self.observer.event(
            "chaos-end",
            scenario=scenario.name,
            ok=report.ok,
            fingerprint=report.fingerprint,
            requests=len(self.records),
        )
        return report

    async def _restart(
        self, wave: int, completed_ordinals: List[int]
    ) -> None:
        """Drain-stop, restart on the same journal, replay everything."""
        await self._stop_service(drain=True)
        self.observer.event("chaos-restart", after_wave=wave)
        # The restarted incarnation runs clean: remaining faults died
        # with the old process, the journal is the survivor under test.
        await self._start_service(with_faults=False)
        self.records.extend(
            await self._submit_wave(wave, list(completed_ordinals), "replay")
        )

    def _final_stats(self) -> Dict[str, Any]:
        return {
            "journal_errors": self.journal_errors,
            "journal_injected": self.journal_injected,
            "inference_faults_fired": len(self.inference_triggered),
            "hanging_waves": list(self.hangs),
        }

    # -- invariants --------------------------------------------------------

    def _judge(self, stats: Dict[str, Any]) -> List[InvariantResult]:
        scenario = self.scenario
        results: List[InvariantResult] = []

        def add(name: str, ok: bool, detail: str = "") -> None:
            results.append(InvariantResult(name, ok, detail))

        # 1. Every request reached a terminal state; no wave hung.
        stuck = [r.ordinal for r in self.records if not r.terminal]
        add(
            "terminal",
            not stuck and not self.hangs,
            f"non-terminal ordinals {stuck}, hung waves {self.hangs}"
            if stuck or self.hangs
            else f"{len(self.records)} requests terminal",
        )

        # 2. Every non-failure response is a correct solve: equal to a
        #    direct in-process solve and clean under the oracle bank.
        mismatches: List[str] = []
        for record in self.records:
            problem = self._verify_correct(record)
            if problem:
                mismatches.append(f"#{record.ordinal}({record.phase}): {problem}")
        add(
            "correct",
            not mismatches,
            "; ".join(mismatches) if mismatches else "all responses verified",
        )

        # 3. Degraded answers are exactly default-policy answers.
        dishonest = [
            f"#{r.ordinal}: degraded but policy={r.policy!r}"
            for r in self.records
            if r.degraded and r.policy != "default"
        ]
        degraded_count = sum(1 for r in self.records if r.degraded)
        expects_degraded = bool(scenario.inference_faults)
        if expects_degraded and degraded_count == 0:
            dishonest.append("inference faults scheduled but nothing degraded")
        add(
            "degraded-honest",
            not dishonest,
            "; ".join(dishonest)
            if dishonest
            else f"{degraded_count} degraded responses, all default-policy",
        )

        # 4. Scheduled faults demonstrably fired with the right shape.
        problems: List[str] = []
        expected_kinds = {"kill": "ERROR", "raise": "ERROR", "memout": "MEMOUT"}
        for ordinal, fault in scenario.worker_faults.items():
            record = next(
                (
                    r
                    for r in self.records
                    if r.ordinal == ordinal and r.phase == "main"
                ),
                None,
            )
            expected = expected_kinds.get(fault.kind)
            if record is None:
                problems.append(f"worker fault #{ordinal}: no record")
            elif expected is not None and record.status != expected:
                problems.append(
                    f"worker fault #{ordinal}: wanted {expected}, "
                    f"got {record.status}"
                )
        fired = len(self.inference_triggered)
        if fired < len(scenario.inference_faults):
            problems.append(
                f"only {fired}/{len(scenario.inference_faults)} "
                "inference faults fired"
            )
        if stats["journal_injected"] != len(scenario.journal_fail_writes):
            problems.append(
                f"journal faults fired {stats['journal_injected']}, "
                f"scheduled {len(scenario.journal_fail_writes)}"
            )
        if stats["journal_errors"] != stats["journal_injected"]:
            problems.append(
                "runner tolerated "
                f"{stats['journal_errors']} journal errors but "
                f"{stats['journal_injected']} were injected"
            )
        add(
            "fault-delivery",
            not problems,
            "; ".join(problems) if problems else "all scheduled faults fired",
        )

        # 5. Breaker opened and recovered, where the scenario says so.
        if scenario.expect_breaker_recovery:
            pairs = [(t[0], t[1]) for t in self.breaker_transitions]
            opened = ("CLOSED", "OPEN") in pairs
            probed = ("OPEN", "HALF_OPEN") in pairs
            closed = ("HALF_OPEN", "CLOSED") in pairs
            add(
                "breaker",
                opened and probed and closed,
                f"transitions: {pairs}",
            )

        # 6. Replay after restart resumes from the journal.
        if scenario.restart_after_wave is not None:
            replayed = [r for r in self.records if r.phase == "replay"]
            originals = {
                r.ordinal: r for r in self.records if r.phase == "main"
            }
            issues: List[str] = []
            resumed = 0
            for record in replayed:
                original = originals.get(record.ordinal)
                if original is None:
                    issues.append(f"replay #{record.ordinal}: no original")
                    continue
                if record.resumed:
                    resumed += 1
                    if record.status != original.status:
                        issues.append(
                            f"replay #{record.ordinal}: resumed "
                            f"{record.status} != original {original.status}"
                        )
                elif record.policy == original.policy and not (
                    original.status in ("CANCELLED",)
                ):
                    # Same key, no resume: only legitimate when that
                    # journal write was one the scenario made fail.
                    if not scenario.journal_fail_writes:
                        issues.append(
                            f"replay #{record.ordinal}: same policy but "
                            "not resumed"
                        )
            if replayed and resumed == 0:
                issues.append("nothing resumed from the journal")
            add(
                "replay",
                not issues,
                "; ".join(issues)
                if issues
                else f"{resumed}/{len(replayed)} replays resumed",
            )

        return results

    def _verify_correct(self, record: RequestRecord) -> str:
        """Cross-check one response; empty string when clean."""
        if record.disconnected or record.status == "CANCELLED":
            return ""
        if record.status in ("TIMEOUT", "MEMOUT", "ERROR"):
            return ""  # failure shapes are judged by fault-delivery
        if record.cnf is None or not record.status:
            return "no outcome recorded"
        status = Status(record.status)
        direct = Solver(
            record.cnf,
            policy=get_policy(record.policy),
            config=SolverConfig(core="arena"),
        ).solve(max_conflicts=self.scenario.budget)
        if direct.status is not status:
            return (
                f"served {status.value}, direct {record.policy} solve "
                f"says {direct.status.value}"
            )
        # Independent ground truth: the fuzz oracle bank, fed the
        # served (status, model) through the context memo.
        ctx = OracleContext(
            case=f"chaos-{record.ordinal}",
            budget=self.scenario.budget,
            prefill={
                (formula_key(record.cnf), "default"): (
                    status,
                    record.model,
                )
            },
        )
        for oracle in (ModelCheckOracle(), BruteForceOracle(), DPLLOracle()):
            for discrepancy in oracle.check(record.cnf, ctx):
                return f"oracle {oracle.name}: {discrepancy.summary()}"
        return ""


def run_scenario(
    scenario: Union[str, ChaosScenario],
    seed: int = 0,
    workdir: Union[str, Path, None] = None,
    observer: Observer = NULL_OBSERVER,
) -> ChaosReport:
    """Run one scenario to a judged :class:`ChaosReport` (sync wrapper)."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix=f"chaos-{scenario.name}-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    harness = _Harness(scenario, seed, workdir, observer)
    return asyncio.run(harness.run())


def render_report(report: ChaosReport) -> str:
    """Human-readable scenario verdict."""
    lines = [
        f"chaos scenario {report.scenario!r} (seed {report.seed}): "
        + ("OK" if report.ok else "FAILED"),
        f"  requests: {len(report.records)}  "
        f"fingerprint: {report.fingerprint[:16]}",
    ]
    for inv in report.invariants:
        mark = "ok " if inv.ok else "FAIL"
        lines.append(f"  [{mark}] {inv.name}: {inv.detail}")
    if report.breaker_transitions:
        lines.append("  breaker:")
        for from_state, to_state, reason in report.breaker_transitions:
            lines.append(f"    {from_state} -> {to_state}: {reason}")
    return "\n".join(lines)
