"""Literal-clause graph — the NeuroSAT encoding (baseline of Table 2).

One node per *literal* (2 per variable: index ``2i`` for ``x_{i+1}``,
``2i+1`` for ``¬x_{i+1}``) plus one node per clause.  An unweighted edge
connects a literal to every clause containing it.  NeuroSAT additionally
exchanges state between complementary literals each round ("flip").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cnf.formula import CNF


class LiteralClauseGraph:
    """COO literal-clause graph of a CNF formula."""

    def __init__(self, cnf: CNF):
        self.num_vars = cnf.num_vars
        self.num_literals = 2 * cnf.num_vars
        self.num_clauses = cnf.num_clauses

        edge_lit: List[int] = []
        edge_clause: List[int] = []
        for j, clause in enumerate(cnf.clauses):
            for lit in clause.literals:
                index = 2 * (abs(lit) - 1) + (0 if lit > 0 else 1)
                edge_lit.append(index)
                edge_clause.append(j)

        self.edge_lit = np.asarray(edge_lit, dtype=np.int64)
        self.edge_clause = np.asarray(edge_clause, dtype=np.int64)

        self.lit_degree = np.maximum(
            np.bincount(self.edge_lit, minlength=self.num_literals), 1
        ).astype(np.float64)
        self.clause_degree = np.maximum(
            np.bincount(self.edge_clause, minlength=self.num_clauses), 1
        ).astype(np.float64)

    def flip_index(self) -> np.ndarray:
        """Permutation mapping each literal node to its complement."""
        idx = np.arange(self.num_literals)
        return idx ^ 1

    @property
    def num_nodes(self) -> int:
        return self.num_literals + self.num_clauses

    @property
    def num_edges(self) -> int:
        return len(self.edge_lit)

    def __repr__(self) -> str:
        return (
            f"LiteralClauseGraph(literals={self.num_literals}, "
            f"clauses={self.num_clauses}, edges={self.num_edges})"
        )
