"""Batching: disjoint union of bipartite graphs with segment indices.

A :class:`BatchedBipartiteGraph` concatenates several
:class:`~repro.graph.bipartite.BipartiteGraph` objects into one graph
whose node indices are offset per member, plus ``var_graph_index`` /
``clause_graph_index`` arrays recording which member each node belongs
to.  Message passing runs unchanged on the union (edges never cross
members); readout and — less obviously — *linear attention* must respect
member boundaries, which the segment indices make possible (see the
segmented path of :class:`repro.models.linear_attention.LinearAttention`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.bipartite import BipartiteGraph


class BatchedBipartiteGraph:
    """Disjoint union of bipartite variable-clause graphs."""

    def __init__(self, graphs: Sequence[BipartiteGraph]):
        if not graphs:
            raise ValueError("cannot batch zero graphs")
        self.graphs = list(graphs)
        self.num_graphs = len(graphs)

        var_offsets = [0]
        clause_offsets = [0]
        for g in graphs:
            var_offsets.append(var_offsets[-1] + g.num_vars)
            clause_offsets.append(clause_offsets[-1] + g.num_clauses)
        self.var_offsets = np.asarray(var_offsets, dtype=np.int64)
        self.clause_offsets = np.asarray(clause_offsets, dtype=np.int64)

        self.num_vars = int(self.var_offsets[-1])
        self.num_clauses = int(self.clause_offsets[-1])

        self.edge_var = np.concatenate(
            [g.edge_var + off for g, off in zip(graphs, self.var_offsets[:-1])]
        ) if any(g.num_edges for g in graphs) else np.zeros(0, dtype=np.int64)
        self.edge_clause = np.concatenate(
            [g.edge_clause + off for g, off in zip(graphs, self.clause_offsets[:-1])]
        ) if any(g.num_edges for g in graphs) else np.zeros(0, dtype=np.int64)
        self.edge_weight = (
            np.concatenate([g.edge_weight for g in graphs])
            if any(g.num_edges for g in graphs)
            else np.zeros(0, dtype=np.float64)
        )

        self.var_degree = np.concatenate([g.var_degree for g in graphs])
        self.clause_degree = np.concatenate([g.clause_degree for g in graphs])

        self.var_graph_index = np.concatenate(
            [np.full(g.num_vars, i, dtype=np.int64) for i, g in enumerate(graphs)]
        )
        self.clause_graph_index = np.concatenate(
            [np.full(g.num_clauses, i, dtype=np.int64) for i, g in enumerate(graphs)]
        )
        #: Variable-node count per member graph (for means and attention).
        self.var_counts = np.asarray(
            [g.num_vars for g in graphs], dtype=np.float64
        )

    # -- node features -----------------------------------------------------

    def initial_var_features(self, dim: int) -> np.ndarray:
        return np.ones((self.num_vars, dim), dtype=np.float64)

    def initial_clause_features(self, dim: int) -> np.ndarray:
        return np.zeros((self.num_clauses, dim), dtype=np.float64)

    # -- inspection ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.num_vars + self.num_clauses

    @property
    def num_edges(self) -> int:
        return len(self.edge_var)

    def var_slice(self, index: int) -> slice:
        """Row slice of member ``index``'s variable nodes."""
        return slice(int(self.var_offsets[index]), int(self.var_offsets[index + 1]))

    def __len__(self) -> int:
        return self.num_graphs

    def __repr__(self) -> str:
        return (
            f"BatchedBipartiteGraph(graphs={self.num_graphs}, vars={self.num_vars}, "
            f"clauses={self.num_clauses}, edges={self.num_edges})"
        )


def batch_graphs(graphs: Sequence[BipartiteGraph]) -> BatchedBipartiteGraph:
    """Convenience constructor matching torch-geometric's ``Batch``."""
    return BatchedBipartiteGraph(graphs)
