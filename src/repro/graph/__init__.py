"""CNF-to-graph encodings for the learning models.

* :class:`BipartiteGraph` — the paper's representation (Sec. 4.2, after
  NeuroComb): variable nodes and clause nodes, edges weighted +1 for a
  positive occurrence and -1 for a negated one; variable embeddings
  initialized to 1, clause embeddings to 0.
* :class:`LiteralClauseGraph` — the NeuroSAT-style encoding used by the
  Table 2 baseline: one node per *literal* plus clause nodes, with the
  complementary-literal pairing NeuroSAT flips across.
"""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.lcg import LiteralClauseGraph
from repro.graph.batching import BatchedBipartiteGraph, batch_graphs

__all__ = ["BipartiteGraph", "LiteralClauseGraph", "BatchedBipartiteGraph", "batch_graphs"]
