"""Undirected bipartite variable-clause graph (paper Sec. 4.2).

``G = (V, E, W)`` with ``V = V1 (variables) ∪ V2 (clauses)``.  An edge
links variable ``x_i`` and clause ``c_j`` when the variable occurs in the
clause; its weight is ``+1`` for a positive occurrence and ``-1`` for a
negated one.  Initial node embeddings: 1 for variables, 0 for clauses.

Edges are stored as parallel index arrays (COO), which the MPNN layers
consume directly through the autograd gather/scatter primitives — message
passing stays ``O(|E|)`` as in the paper's complexity analysis.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cnf.formula import CNF


class BipartiteGraph:
    """COO bipartite graph of a CNF formula.

    Attributes
    ----------
    num_vars, num_clauses:
        Node counts of the two partitions (``|V1|``, ``|V2|``).
    edge_var, edge_clause:
        0-based endpoint indices of each edge (variable side, clause side).
    edge_weight:
        +1.0 / -1.0 per edge (polarity of the occurrence).
    var_degree, clause_degree:
        Node degrees, floored at 1 for safe mean-aggregation division.
    """

    def __init__(self, cnf: CNF):
        self.num_vars = cnf.num_vars
        self.num_clauses = cnf.num_clauses

        edge_var: List[int] = []
        edge_clause: List[int] = []
        edge_weight: List[float] = []
        for j, clause in enumerate(cnf.clauses):
            for lit in clause.literals:
                edge_var.append(abs(lit) - 1)
                edge_clause.append(j)
                edge_weight.append(1.0 if lit > 0 else -1.0)

        self.edge_var = np.asarray(edge_var, dtype=np.int64)
        self.edge_clause = np.asarray(edge_clause, dtype=np.int64)
        self.edge_weight = np.asarray(edge_weight, dtype=np.float64)

        self.var_degree = np.maximum(
            np.bincount(self.edge_var, minlength=self.num_vars), 1
        ).astype(np.float64)
        self.clause_degree = np.maximum(
            np.bincount(self.edge_clause, minlength=self.num_clauses), 1
        ).astype(np.float64)

    # -- node features ----------------------------------------------------

    def initial_var_features(self, dim: int) -> np.ndarray:
        """All-ones initial variable embeddings (paper Sec. 4.2)."""
        return np.ones((self.num_vars, dim), dtype=np.float64)

    def initial_clause_features(self, dim: int) -> np.ndarray:
        """All-zeros initial clause embeddings (paper Sec. 4.2)."""
        return np.zeros((self.num_clauses, dim), dtype=np.float64)

    # -- inspection ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count — the paper's 400k-node dataset filter uses this."""
        return self.num_vars + self.num_clauses

    @property
    def num_edges(self) -> int:
        return len(self.edge_var)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(vars={self.num_vars}, clauses={self.num_clauses}, "
            f"edges={self.num_edges})"
        )
