"""Progress and statistics aggregation for fanned-out solve runs.

A :class:`ProgressAggregator` is fed one event per finished task by the
runner (from whichever process delivered the result) and keeps the
aggregate picture: how many tasks ran vs. hit the cache or the resume
journal, how many were decided within budget, how many *failed* under
supervision and why (the TIMEOUT / ERROR / MEMOUT taxonomy), cumulative
solver effort, and per-policy breakdowns.  An optional callback receives
``(done, total, outcome)`` after every event — the hook for progress
bars or log lines — while the default stays silent, so library callers
get statistics without output.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.solver.types import Status


class ProgressAggregator:
    """Collects completion events from a runner into summary statistics.

    With a live :class:`~repro.obs.metrics.MetricsRegistry` attached,
    every completion event also feeds the shared metric series
    (``runner.done``, ``runner.executed``, ``runner.solved``, ...) and
    the ``runner.task_wall_seconds`` latency histogram, so runner
    progress and solver metrics land in one registry snapshot instead
    of two parallel bookkeeping systems.
    """

    def __init__(
        self,
        total: int = 0,
        callback: Optional[Callable[[int, int, object], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.total = total
        self.callback = callback
        if registry is not None and registry.enabled:
            self._m_done = registry.counter("runner.done")
            self._m_cache_hits = registry.counter("runner.cache_hits")
            self._m_journal_hits = registry.counter("runner.journal_hits")
            self._m_executed = registry.counter("runner.executed")
            self._m_solved = registry.counter("runner.solved")
            self._m_failed = registry.counter("runner.failed")
            self._m_retry_attempts = registry.counter("runner.retry_attempts")
            self._m_wall = registry.histogram(
                "runner.task_wall_seconds", TIME_BUCKETS
            )
        else:
            self._m_wall = None
        self.reset()

    def reset(self) -> None:
        self.done = 0
        self.cache_hits = 0
        self.journal_hits = 0
        self.executed = 0
        self.solved = 0
        self.failed = 0
        self.retried = 0
        self.retry_attempts = 0
        self.propagations = 0
        self.conflicts = 0
        self.wall_seconds = 0.0
        self.by_policy: Dict[str, int] = {}
        #: Supervision-failure taxonomy, e.g. {"TIMEOUT": 1, "ERROR": 2}.
        self.failures: Dict[str, int] = {}

    def record_retry(self, status: Status) -> None:
        """Account one failed attempt that is about to be retried.

        Retried attempts are not terminal — they do not advance ``done``
        or the failure taxonomy — but the count surfaces how much work
        the retry layer is absorbing.
        """
        self.retry_attempts += 1
        if self._m_wall is not None:
            self._m_retry_attempts.inc()

    def record(self, outcome) -> None:
        """Account one finished :class:`~repro.parallel.runner.SolveOutcome`."""
        self.done += 1
        if outcome.cached:
            self.cache_hits += 1
        elif getattr(outcome, "resumed", False):
            self.journal_hits += 1
        else:
            self.executed += 1
        if outcome.status.decided:
            self.solved += 1
        if outcome.status.failed:
            self.failed += 1
            name = outcome.status.value
            self.failures[name] = self.failures.get(name, 0) + 1
        if getattr(outcome, "attempts", 1) > 1:
            self.retried += 1
        self.propagations += outcome.propagations
        self.conflicts += outcome.conflicts
        self.wall_seconds += outcome.wall_seconds
        self.by_policy[outcome.policy] = self.by_policy.get(outcome.policy, 0) + 1
        if self._m_wall is not None:
            self._m_done.inc()
            if outcome.cached:
                self._m_cache_hits.inc()
            elif getattr(outcome, "resumed", False):
                self._m_journal_hits.inc()
            else:
                self._m_executed.inc()
                self._m_wall.observe(outcome.wall_seconds)
            if outcome.status.decided:
                self._m_solved.inc()
            if outcome.status.failed:
                self._m_failed.inc()
        if self.callback is not None:
            self.callback(self.done, self.total, outcome)

    def summary(self) -> Dict[str, object]:
        """The aggregate picture as a plain dict (JSON-able)."""
        return {
            "done": self.done,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "executed": self.executed,
            "solved": self.solved,
            "failed": self.failed,
            "retried": self.retried,
            "retry_attempts": self.retry_attempts,
            "failures": dict(self.failures),
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "solver_wall_seconds": round(self.wall_seconds, 6),
            "by_policy": dict(self.by_policy),
        }
