"""Supervised task execution: budgets, crash isolation, retry.

SAT workloads are heavy-tailed: one pathological instance can hang a
worker for hours or balloon its memory until the OS kills it.  A bare
``multiprocessing.Pool`` has no answer for either — a hung worker stalls
the whole sweep and a killed worker aborts it, discarding every finished
sibling result.  This module runs each task in its *own* supervised
process and converts every way a worker can die into a structured
terminal status instead of an exception:

* wall-clock budget exceeded      -> ``Status.TIMEOUT`` (worker killed)
* memory budget exceeded          -> ``Status.MEMOUT`` (``RLIMIT_AS``
  raises ``MemoryError`` in the worker; a SIGKILL under a memory budget
  is also classified MEMOUT, the OOM-killer signature)
* unhandled exception / hard kill -> ``Status.ERROR``

Transient failures can be retried with capped exponential backoff
(:class:`RetryPolicy`); backoff never blocks the scheduler — a retrying
task just becomes runnable later while siblings keep executing.

Every failure path is exercisable deterministically through
:class:`FaultPlan`, which injects a chosen fault (raise / hang / kill /
memout / slow) at chosen task indices and attempt numbers inside the
worker process.  The test suite drives the supervisor exclusively
through fault plans — no sleeps, no flaky timing.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.solver.types import Status

#: How long an injected hang sleeps; any sane task timeout fires first.
_HANG_SECONDS = 3600.0

#: Grace period for ``Process.join`` after a kill before giving up.
_JOIN_SECONDS = 10.0


# ---------------------------------------------------------------------------
# Budgets and retry


@dataclass(frozen=True)
class WorkerBudget:
    """Hard per-attempt resource limits enforced by the supervisor.

    ``wall_seconds`` is policed from the parent (the worker may be hung
    and unable to police itself); ``rss_mb`` is enforced inside the
    worker via ``resource.setrlimit(RLIMIT_AS)`` so an over-allocation
    surfaces as ``MemoryError`` -> ``MEMOUT`` rather than an OOM kill.
    """

    wall_seconds: Optional[float] = None
    rss_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wall_seconds is not None and self.wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if self.rss_mb is not None and self.rss_mb <= 0:
            raise ValueError("rss_mb must be positive")

    @property
    def unlimited(self) -> bool:
        return self.wall_seconds is None and self.rss_mb is None


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient failures.

    Only ``ERROR`` is retried by default: timeouts and memouts are
    deterministic for a fixed budget, so retrying them burns budget to
    reproduce the same failure.  Backoff for attempt ``k`` (1-based
    failure count) is ``min(backoff_seconds * multiplier**(k-1), cap)``
    — deterministic on purpose, so sweeps are reproducible.
    """

    max_retries: int = 0
    backoff_seconds: float = 0.5
    multiplier: float = 2.0
    max_backoff_seconds: float = 30.0
    retry_statuses: Tuple[Status, ...] = (Status.ERROR,)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff must be non-negative")

    def should_retry(self, status: Status, attempt: int) -> bool:
        """True when a failed ``attempt`` (1-based) should be retried."""
        return status in self.retry_statuses and attempt <= self.max_retries

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based failures)."""
        raw = self.backoff_seconds * (self.multiplier ** max(attempt - 1, 0))
        return min(raw, self.max_backoff_seconds)


# ---------------------------------------------------------------------------
# Deterministic fault injection

#: Legal fault kinds, applied inside the worker before the solve starts.
FAULT_KINDS = ("raise", "hang", "kill", "memout", "slow")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what goes wrong, and on which attempts.

    ``attempts=N`` injects on attempts 1..N and lets later attempts run
    clean — the shape of a *transient* failure.  ``attempts=None``
    injects every time (a *permanent* failure).
    """

    kind: str
    attempts: Optional[int] = None
    seconds: float = 0.05
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.attempts is not None and self.attempts < 1:
            raise ValueError("attempts must be >= 1 or None")

    def applies(self, attempt: int) -> bool:
        return self.attempts is None or attempt <= self.attempts

    def trigger(self) -> None:
        """Execute the fault inside the worker process."""
        if self.kind == "raise":
            raise RuntimeError(self.message)
        if self.kind == "hang":
            time.sleep(_HANG_SECONDS)
            raise RuntimeError("injected hang outlived the supervisor")
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if self.kind == "memout":
            raise MemoryError(self.message)
        if self.kind == "slow":
            time.sleep(self.seconds)
        # "slow" falls through: the task then runs normally.


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic map from task index to injected fault.

    The plan is pickled into each worker alongside the task, so faults
    fire inside the supervised process — exactly where real failures
    happen — while the choice of *which* task fails stays fully
    deterministic and sleep-free in the test suite.
    """

    faults: Dict[int, Fault] = field(default_factory=dict)

    def fault_for(self, index: int, attempt: int) -> Optional[Fault]:
        fault = self.faults.get(index)
        if fault is not None and fault.applies(attempt):
            return fault
        return None


# ---------------------------------------------------------------------------
# Worker side


def _apply_memory_limit(rss_mb: float) -> None:
    """Best-effort address-space cap; a breach raises ``MemoryError``."""
    try:
        import resource
    except ImportError:  # non-POSIX: budget becomes parent-side only
        return
    limit = int(rss_mb * 1024 * 1024)
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):
        pass  # container forbids it; wall-clock budget still applies


def _worker_entry(conn, task, attempt: int, budget: Optional[WorkerBudget],
                  fault: Optional[Fault]) -> None:
    """Run one attempt of one task and ship the result over ``conn``.

    Every outcome — success, budget-UNKNOWN, or failure — is reported as
    a ``(kind, payload)`` message; the parent never has to parse a
    traceback out of a dead pipe.
    """
    # Imported here, not at module top: keeps the worker spawn path slim
    # and avoids import cycles (runner imports supervisor).
    from repro.parallel.runner import execute_task

    try:
        if budget is not None and budget.rss_mb is not None:
            _apply_memory_limit(budget.rss_mb)
        if fault is not None:
            fault.trigger()
        outcome = execute_task(task)
        conn.send(("ok", outcome.as_payload()))
    except MemoryError as exc:
        try:
            conn.send(("memout", f"MemoryError: {exc}"))
        except (OSError, ValueError, MemoryError):
            pass
    except BaseException as exc:  # noqa: BLE001 - report, don't leak
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side


@dataclass
class TaskFailure:
    """Parent-side classification of one failed attempt."""

    status: Status
    message: str
    #: Wall-clock of the failed attempt as measured by the supervisor —
    #: the real cost of a timeout or crash, which the worker itself can
    #: no longer report.
    wall_seconds: float = 0.0


@dataclass
class _Running:
    """Book-keeping for one in-flight worker process."""

    index: int
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    deadline: Optional[float]
    started: float = 0.0
    #: Effective wall budget behind ``deadline`` (for the failure message).
    wall_budget: Optional[float] = None


@dataclass
class _Queued:
    """One schedulable attempt (possibly deferred by retry backoff)."""

    index: int
    attempt: int = 1
    not_before: float = 0.0


class Supervisor:
    """Run tasks in per-task worker processes under budgets and retry.

    ``run`` executes every ``(index, task)`` pair and reports each
    terminal result exactly once through ``on_complete(index, kind,
    payload_or_failure, attempts)`` where ``kind`` is ``"ok"`` (payload
    dict from the worker) or ``"failed"`` (:class:`TaskFailure`).
    Results are reported as they finish; callers that need task order
    index into a preallocated list, as :class:`ParallelRunner` does.
    """

    def __init__(
        self,
        workers: int = 1,
        budget: Optional[WorkerBudget] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        on_retry: Optional[Callable[[int, int, Status], None]] = None,
        on_start: Optional[Callable[[int, int], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.budget = budget or WorkerBudget()
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.on_retry = on_retry
        #: Called as ``on_start(index, attempt)`` right after a worker
        #: process launches — the trace hook for ``task-start`` events.
        self.on_start = on_start
        self._ctx = multiprocessing.get_context()

    # -- scheduling -------------------------------------------------------

    def run(
        self,
        items: Sequence[Tuple[int, object]],
        on_complete: Callable[[int, str, object, int], None],
    ) -> None:
        tasks = dict(items)
        queue: List[_Queued] = [_Queued(index=index) for index, _ in items]
        running: Dict[int, _Running] = {}

        try:
            while queue or running:
                now = time.monotonic()
                self._launch_ready(queue, running, tasks, now)
                self._wait(queue, running, now)
                self._collect(queue, running, on_complete)
                self._reap_timeouts(queue, running, on_complete)
        finally:
            for slot in running.values():  # interrupted: leave no orphans
                self._kill(slot)

    def _launch_ready(self, queue, running, tasks, now) -> None:
        """Start queued attempts while worker slots are free."""
        queue.sort(key=lambda q: (q.not_before, q.index))
        while queue and len(running) < self.workers:
            if queue[0].not_before > now:
                break  # earliest deferred retry is still backing off
            item = queue.pop(0)
            fault = None
            if self.fault_plan is not None:
                fault = self.fault_plan.fault_for(item.index, item.attempt)
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_worker_entry,
                args=(child_conn, tasks[item.index], item.attempt,
                      self.budget, fault),
                daemon=True,
            )
            process.start()
            child_conn.close()  # parent keeps only the read end
            started = time.monotonic()
            # Per-task wall budgets (deadline propagation from the solve
            # service) tighten the supervisor-wide budget, never loosen it.
            wall = self.budget.wall_seconds
            task_wall = getattr(
                tasks[item.index], "wall_budget_seconds", None
            )
            if task_wall is not None:
                wall = task_wall if wall is None else min(wall, task_wall)
            deadline = None if wall is None else started + wall
            running[item.index] = _Running(
                index=item.index, attempt=item.attempt,
                process=process, conn=parent_conn, deadline=deadline,
                started=started, wall_budget=wall,
            )
            if self.on_start is not None:
                self.on_start(item.index, item.attempt)

    def _wait(self, queue, running, now) -> None:
        """Block until a worker reports, times out, or a retry matures."""
        if not running:
            if queue:  # all runnable work is backing off: sleep it out
                wake = min(q.not_before for q in queue)
                if wake > now:
                    time.sleep(min(wake - now, 0.25))
            return
        timeout: Optional[float] = None
        deadlines = [s.deadline for s in running.values() if s.deadline]
        if deadlines:
            timeout = max(min(deadlines) - now, 0.0)
        pending_wakes = [q.not_before for q in queue if q.not_before > now]
        if pending_wakes and len(running) < self.workers:
            wake = min(pending_wakes) - now
            timeout = wake if timeout is None else min(timeout, wake)
        multiprocessing.connection.wait(
            [slot.conn for slot in running.values()], timeout=timeout
        )

    def _collect(self, queue, running, on_complete) -> None:
        """Drain every connection that has a message or hit EOF."""
        ready = multiprocessing.connection.wait(
            [slot.conn for slot in running.values()], timeout=0
        )
        by_conn = {slot.conn: slot for slot in running.values()}
        for conn in ready:
            slot = by_conn[conn]
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                self._finish_dead(slot, queue, running, on_complete)
                continue
            self._join(slot)
            del running[slot.index]
            if kind == "ok":
                on_complete(slot.index, "ok", payload, slot.attempt)
            else:
                status = Status.MEMOUT if kind == "memout" else Status.ERROR
                self._fail_or_retry(
                    slot,
                    TaskFailure(
                        status, str(payload),
                        wall_seconds=self._elapsed(slot),
                    ),
                    queue, on_complete,
                )

    def _finish_dead(self, slot, queue, running, on_complete) -> None:
        """Worker died without reporting: classify by exit code."""
        self._join(slot)
        del running[slot.index]
        code = slot.process.exitcode
        elapsed = self._elapsed(slot)
        if code == -signal.SIGKILL and self.budget.rss_mb is not None:
            # SIGKILL under a memory budget is the OOM-killer signature.
            failure = TaskFailure(
                Status.MEMOUT,
                f"worker killed (exit {code}) under memory budget",
                wall_seconds=elapsed,
            )
        else:
            failure = TaskFailure(
                Status.ERROR,
                f"worker died without result (exit {code})",
                wall_seconds=elapsed,
            )
        self._fail_or_retry(slot, failure, queue, on_complete)

    def _reap_timeouts(self, queue, running, on_complete) -> None:
        """Kill and classify every worker past its wall-clock deadline."""
        now = time.monotonic()
        expired = [s for s in running.values()
                   if s.deadline is not None and now >= s.deadline]
        for slot in expired:
            # A result may have raced in just before the deadline check.
            if slot.conn.poll(0):
                continue  # picked up by the next _collect pass
            self._kill(slot)
            del running[slot.index]
            failure = TaskFailure(
                Status.TIMEOUT,
                f"wall-clock budget ({slot.wall_budget:.3g}s) exceeded",
                wall_seconds=self._elapsed(slot),
            )
            self._fail_or_retry(slot, failure, queue, on_complete)

    def _fail_or_retry(self, slot, failure, queue, on_complete) -> None:
        if self.retry.should_retry(failure.status, slot.attempt):
            if self.on_retry is not None:
                self.on_retry(slot.index, slot.attempt, failure.status)
            delay = self.retry.delay_for(slot.attempt)
            queue.append(_Queued(
                index=slot.index,
                attempt=slot.attempt + 1,
                not_before=time.monotonic() + delay,
            ))
        else:
            on_complete(slot.index, "failed", failure, slot.attempt)

    # -- process plumbing -------------------------------------------------

    @staticmethod
    def _elapsed(slot: _Running) -> float:
        """Attempt wall-clock so far, from the supervisor's own clock."""
        return max(0.0, time.monotonic() - slot.started)

    def _kill(self, slot: _Running) -> None:
        try:
            slot.process.kill()
        except (OSError, AttributeError):
            pass
        self._join(slot)

    def _join(self, slot: _Running) -> None:
        slot.process.join(timeout=_JOIN_SECONDS)
        try:
            slot.conn.close()
        except OSError:
            pass
