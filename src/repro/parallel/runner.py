"""Instance-level parallel execution with caching, budgets, and retry.

The solver is single-threaded by nature, but the workloads around it —
dual-policy labelling (paper Sec. 5.1), benchmark suites, ablations —
are embarrassingly parallel across *instances*.  :class:`ParallelRunner`
fans a list of :class:`SolveTask` out over supervised worker processes,
short-circuits any task whose result is already in the on-disk
:class:`~repro.parallel.cache.ResultCache` or the run's
:class:`~repro.parallel.journal.RunJournal`, and returns
:class:`SolveOutcome` records in task order — exactly one outcome per
task, always, even when a worker hangs, crashes, or is OOM-killed.

Fault tolerance is layered on through :mod:`repro.parallel.supervisor`:
per-task wall-clock and memory budgets turn runaway tasks into
``TIMEOUT`` / ``MEMOUT`` outcomes, worker crashes become ``ERROR``
outcomes without aborting sibling tasks, and transient errors are
retried with capped exponential backoff.  A journal makes long sweeps
resumable: re-running an interrupted sweep with the same journal
re-solves only the tasks that never finished.

``workers=1`` with no supervision options runs everything inline (no
processes, no pickling) and is bit-for-bit identical to calling the
solver directly — the parallel path is a pure scheduling change, never a
semantic one, because the solver is deterministic per task.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cnf.dimacs import to_dimacs
from repro.cnf.formula import CNF
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel.cache import ResultCache, solve_cache_key
from repro.parallel.journal import RunJournal
from repro.parallel.progress import ProgressAggregator
from repro.parallel.supervisor import (
    FaultPlan,
    RetryPolicy,
    Supervisor,
    TaskFailure,
    WorkerBudget,
)
from repro.policies.registry import get_policy
from repro.solver.solver import Solver, SolverConfig
from repro.solver.types import Model, Status


@dataclass(eq=False)
class SolveTask:
    """One unit of work: solve ``cnf`` under ``policy`` within budgets."""

    cnf: CNF
    policy: str = "default"
    config: Optional[SolverConfig] = None
    max_conflicts: Optional[int] = None
    max_propagations: Optional[int] = None
    max_decisions: Optional[int] = None
    #: Free-form caller label, carried through to the outcome.
    tag: str = ""
    #: Per-task wall-clock budget, seconds — tightens (never loosens)
    #: the runner-wide ``task_timeout`` for this one task.  The solve
    #: service derives it from the request's remaining deadline.  NOT
    #: part of the cache key: wall budgets depend on queue timing, not
    #: on the problem, and a cached/journalled answer is valid however
    #: long the original run was allowed to take.
    wall_budget_seconds: Optional[float] = None

    def budgets(self) -> Dict[str, Optional[int]]:
        return {
            "max_conflicts": self.max_conflicts,
            "max_propagations": self.max_propagations,
            "max_decisions": self.max_decisions,
        }

    def cache_key(self) -> str:
        return solve_cache_key(
            to_dimacs(self.cnf), self.policy, self.config, self.budgets()
        )


@dataclass
class SolveOutcome:
    """Result of one task: status, effort counters, and provenance."""

    tag: str
    policy: str
    status: Status
    propagations: int
    conflicts: int
    decisions: int
    restarts: int
    reductions: int
    wall_seconds: float
    model: Optional[Model] = None
    #: True when served from the on-disk cache instead of a solver run.
    cached: bool = False
    #: True when served from a run journal during ``--resume``.
    resumed: bool = False
    #: Number of execution attempts (> 1 after supervised retries).
    attempts: int = 1
    #: Human-readable failure detail for TIMEOUT / ERROR / MEMOUT.
    error: str = ""

    @property
    def solved(self) -> bool:
        """True when the formula was decided (SAT or UNSAT)."""
        return self.status.decided

    @property
    def failed(self) -> bool:
        """True for supervision failures (TIMEOUT / ERROR / MEMOUT)."""
        return self.status.failed

    def as_payload(self) -> Dict[str, Any]:
        """JSON-able form for the result cache and the run journal."""
        return {
            "tag": self.tag,
            "policy": self.policy,
            "status": self.status.value,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "restarts": self.restarts,
            "reductions": self.reductions,
            "wall_seconds": self.wall_seconds,
            "model": self.model,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, Any],
        cached: bool = True,
        resumed: bool = False,
    ) -> "SolveOutcome":
        model = payload.get("model")
        return cls(
            tag=str(payload.get("tag", "")),
            policy=str(payload["policy"]),
            status=Status(payload["status"]),
            propagations=int(payload["propagations"]),
            conflicts=int(payload["conflicts"]),
            decisions=int(payload["decisions"]),
            restarts=int(payload["restarts"]),
            reductions=int(payload["reductions"]),
            wall_seconds=float(payload["wall_seconds"]),
            model=None if model is None else list(model),
            cached=cached,
            resumed=resumed,
            attempts=int(payload.get("attempts", 1)),
            error=str(payload.get("error", "")),
        )

    @classmethod
    def from_failure(
        cls,
        task: SolveTask,
        status: Status,
        message: str,
        attempts: int,
        wall_seconds: float = 0.0,
    ) -> "SolveOutcome":
        """Structured outcome for a task whose execution failed.

        ``wall_seconds`` is the supervisor-measured cost of the final
        attempt — a timed-out task really did burn its budget, and that
        shows up in latency summaries instead of a misleading zero.
        """
        return cls(
            tag=task.tag,
            policy=task.policy,
            status=status,
            propagations=0,
            conflicts=0,
            decisions=0,
            restarts=0,
            reductions=0,
            wall_seconds=wall_seconds,
            attempts=attempts,
            error=message,
        )


def execute_task(task: SolveTask) -> SolveOutcome:
    """Run one task to completion in the current process."""
    solver = Solver(task.cnf, policy=get_policy(task.policy), config=task.config)
    start = time.perf_counter()
    result = solver.solve(
        max_conflicts=task.max_conflicts,
        max_propagations=task.max_propagations,
        max_decisions=task.max_decisions,
    )
    wall = time.perf_counter() - start
    stats = result.stats
    return SolveOutcome(
        tag=task.tag,
        policy=task.policy,
        status=result.status,
        propagations=stats.propagations,
        conflicts=stats.conflicts,
        decisions=stats.decisions,
        restarts=stats.restarts,
        reductions=stats.reductions,
        wall_seconds=wall,
        model=result.model,
    )


@dataclass
class RunnerStats:
    """Aggregate of one :meth:`ParallelRunner.run` call."""

    tasks: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    executed: int = 0
    solved: int = 0
    failed: int = 0
    retried: int = 0
    #: Per-status counts of supervision failures, e.g. {"TIMEOUT": 2}.
    failures: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    summary: Dict[str, object] = field(default_factory=dict)


class ParallelRunner:
    """Fan solve tasks out over supervised processes, with result caching.

    Supervision options (all optional — the default configuration is the
    plain fan-out):

    ``task_timeout``
        Hard wall-clock budget per attempt, in seconds; a task past it
        is killed and reported as ``Status.TIMEOUT``.
    ``memory_limit_mb``
        Per-worker address-space cap; a breach becomes ``Status.MEMOUT``.
    ``retries`` / ``retry_backoff``
        Transient-failure retries with capped exponential backoff
        (errors only by default; see :class:`RetryPolicy`).
    ``journal``
        Path (or :class:`RunJournal`) for the append-only completion
        ledger; re-running with the same journal skips finished tasks.
    ``fault_plan``
        Deterministic fault injection for tests (:class:`FaultPlan`).

    Any of these — or ``workers > 1`` — routes execution through the
    :class:`~repro.parallel.supervisor.Supervisor` (one short-lived
    process per task, crash-isolated).  ``workers=1`` with no
    supervision stays fully inline.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[ProgressAggregator] = None,
        *,
        task_timeout: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.5,
        retry_policy: Optional[RetryPolicy] = None,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        fault_plan: Optional[FaultPlan] = None,
        observer: Optional[Observer] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.budget = WorkerBudget(
            wall_seconds=task_timeout, rss_mb=memory_limit_mb
        )
        if retry_policy is not None:
            self.retry = retry_policy
        else:
            self.retry = RetryPolicy(
                max_retries=retries, backoff_seconds=retry_backoff
            )
        if isinstance(journal, (str, Path)):
            journal = RunJournal(journal)
        self.journal = journal
        self.fault_plan = fault_plan
        #: Journal appends that failed (tolerated; see _journal_record).
        self.journal_errors = 0
        self.last_stats = RunnerStats()

    @property
    def supervised(self) -> bool:
        """True when execution goes through per-task worker processes."""
        return (
            self.workers > 1
            or not self.budget.unlimited
            or self.retry.max_retries > 0
            or self.fault_plan is not None
        )

    def run(self, tasks: Sequence[SolveTask]) -> List[SolveOutcome]:
        """Execute every task; exactly one outcome per task, in order.

        Journalled and cached tasks are answered from disk without
        touching a worker; fresh results are written back so the next
        run with the same tasks performs zero solver work.  Failures
        (timeout / crash / memout) come back as structured outcomes with
        zeroed effort counters — they never raise and never abort
        sibling tasks.
        """
        progress = self.progress or ProgressAggregator(
            registry=self.observer.registry
        )
        progress.total = len(tasks)
        started = time.perf_counter()

        results: List[Optional[SolveOutcome]] = [None] * len(tasks)
        pending: List[int] = []
        # Keys feed both stores; skip the DIMACS round-trip when neither
        # a cache nor a journal is attached.
        keyed = self.cache is not None or self.journal is not None
        keys: List[str] = (
            [task.cache_key() for task in tasks] if keyed
            else [""] * len(tasks)
        )
        for index, task in enumerate(tasks):
            outcome = self._lookup(task, keys[index])
            if outcome is not None:
                results[index] = outcome
                self._journal_record(keys[index], outcome)
                progress.record(outcome)
                self._trace_finish(index, outcome)
            else:
                pending.append(index)

        observer = self.observer
        # A per-task wall budget needs the supervisor's parent-side
        # deadline policing, even when the runner itself is unsupervised.
        needs_supervision = self.supervised or any(
            getattr(tasks[index], "wall_budget_seconds", None) is not None
            for index in pending
        )
        if pending:
            if not needs_supervision and (self.workers == 1 or len(pending) == 1):
                for index in pending:
                    observer.event(
                        "task-start", index=index, attempt=1,
                        tag=tasks[index].tag, policy=tasks[index].policy,
                    )
                    outcome = self._execute_inline(tasks[index])
                    self._finish(index, outcome, results, keys, progress)
            else:
                def on_retry(index, attempt, status):
                    progress.record_retry(status)
                    observer.event(
                        "task-retry", index=index, attempt=attempt,
                        status=status.value,
                    )

                def on_start(index, attempt):
                    observer.event(
                        "task-start", index=index, attempt=attempt,
                        tag=tasks[index].tag, policy=tasks[index].policy,
                    )

                supervisor = Supervisor(
                    workers=self.workers,
                    budget=self.budget,
                    retry=self.retry,
                    fault_plan=self.fault_plan,
                    on_retry=on_retry,
                    on_start=on_start if observer.tracing else None,
                )

                def on_complete(index, kind, payload, attempts):
                    if kind == "ok":
                        outcome = SolveOutcome.from_payload(
                            payload, cached=False
                        )
                        outcome.attempts = attempts
                    else:
                        failure: TaskFailure = payload
                        outcome = SolveOutcome.from_failure(
                            tasks[index], failure.status,
                            failure.message, attempts,
                            wall_seconds=failure.wall_seconds,
                        )
                    self._finish(index, outcome, results, keys, progress)

                supervisor.run(
                    [(index, tasks[index]) for index in pending], on_complete
                )

        self.last_stats = RunnerStats(
            tasks=len(tasks),
            cache_hits=progress.cache_hits,
            journal_hits=progress.journal_hits,
            executed=progress.executed,
            solved=progress.solved,
            failed=progress.failed,
            retried=progress.retried,
            failures=dict(progress.failures),
            wall_seconds=time.perf_counter() - started,
            summary=progress.summary(),
        )
        self.observer.flush()
        # Every slot is filled: failures become outcomes, not holes.
        return [outcome for outcome in results if outcome is not None]

    # -- lookups ----------------------------------------------------------

    def _lookup(self, task: SolveTask, key: str) -> Optional[SolveOutcome]:
        """Journal first (per-run ledger), then the cross-run cache."""
        if self.journal is not None:
            payload = self.journal.get(key)
            if payload is not None:
                outcome = SolveOutcome.from_payload(
                    payload, cached=False, resumed=True
                )
                outcome.tag = task.tag
                return outcome
        if self.cache is not None:
            payload = self.cache.get(key)
            if payload is not None:
                if str(payload.get("policy")) != task.policy:
                    # A key collision would be astronomically unlikely;
                    # a mismatched policy here means a corrupted entry.
                    self.cache.evict(key)
                    self.cache.corrupt_evictions += 1
                    return None
                outcome = SolveOutcome.from_payload(payload, cached=True)
                # The cache key ignores the caller's label, so the entry
                # holds whichever tag first populated it — restore ours.
                outcome.tag = task.tag
                return outcome
        return None

    def _execute_inline(self, task: SolveTask) -> SolveOutcome:
        """Inline execution with the same no-exceptions contract."""
        try:
            return execute_task(task)
        except MemoryError as exc:
            return SolveOutcome.from_failure(
                task, Status.MEMOUT, f"MemoryError: {exc}", attempts=1
            )
        except Exception as exc:  # noqa: BLE001 - outcome, not crash
            return SolveOutcome.from_failure(
                task, Status.ERROR, f"{type(exc).__name__}: {exc}", attempts=1
            )

    def _finish(
        self,
        index: int,
        outcome: SolveOutcome,
        results: List[Optional[SolveOutcome]],
        keys: List[str],
        progress: ProgressAggregator,
    ) -> None:
        results[index] = outcome
        if self.cache is not None and not outcome.failed:
            # Solver results (including budget-UNKNOWN) are deterministic
            # and cacheable; execution failures are not facts about the
            # formula and stay out of the cross-run cache.
            self.cache.put(keys[index], outcome.as_payload())
        self._journal_record(keys[index], outcome)
        progress.record(outcome)
        self._trace_finish(index, outcome)

    def _trace_finish(self, index: int, outcome: SolveOutcome) -> None:
        """Emit the ``task-finish`` trace event for one terminal outcome."""
        if not self.observer.tracing:
            return
        self.observer.event(
            "task-finish",
            index=index,
            tag=outcome.tag,
            policy=outcome.policy,
            status=outcome.status.value,
            wall_seconds=round(outcome.wall_seconds, 6),
            attempts=outcome.attempts,
            cached=outcome.cached,
            resumed=outcome.resumed,
            propagations=outcome.propagations,
            conflicts=outcome.conflicts,
        )

    def _journal_record(self, key: str, outcome: SolveOutcome) -> None:
        """Best-effort journal append: a failed write never loses a result.

        The journal is a resumability optimization, not a correctness
        dependency — the outcome is already in ``results`` and (when not
        a failure) in the cross-run cache.  A full disk or yanked volume
        therefore costs future resumability, counted in
        ``journal_errors``, never the in-flight answer.
        """
        if self.journal is not None and not outcome.resumed:
            try:
                self.journal.record(key, outcome.as_payload())
            except OSError as exc:
                self.journal_errors += 1
                if self.observer.tracing:
                    self.observer.event(
                        "journal-error",
                        tag=outcome.tag,
                        error=f"{type(exc).__name__}: {exc}",
                    )
