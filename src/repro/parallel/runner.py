"""Instance-level parallel execution with per-task result caching.

The solver is single-threaded by nature, but the workloads around it —
dual-policy labelling (paper Sec. 5.1), benchmark suites, ablations —
are embarrassingly parallel across *instances*.  :class:`ParallelRunner`
fans a list of :class:`SolveTask` out over a ``multiprocessing`` pool,
short-circuits any task whose result is already in the on-disk
:class:`~repro.parallel.cache.ResultCache`, and returns
:class:`SolveOutcome` records in task order, so callers see the exact
sequential semantics at a fraction of the wall-clock.

``workers=1`` runs everything inline (no pool, no pickling) and is
bit-for-bit identical to calling the solver directly — the parallel path
is a pure scheduling change, never a semantic one, because the solver is
deterministic per task.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.cnf.dimacs import to_dimacs
from repro.cnf.formula import CNF
from repro.parallel.cache import ResultCache, solve_cache_key
from repro.parallel.progress import ProgressAggregator
from repro.policies.registry import get_policy
from repro.solver.solver import Solver, SolverConfig
from repro.solver.types import Model, Status


@dataclass(eq=False)
class SolveTask:
    """One unit of work: solve ``cnf`` under ``policy`` within budgets."""

    cnf: CNF
    policy: str = "default"
    config: Optional[SolverConfig] = None
    max_conflicts: Optional[int] = None
    max_propagations: Optional[int] = None
    max_decisions: Optional[int] = None
    #: Free-form caller label, carried through to the outcome.
    tag: str = ""

    def budgets(self) -> Dict[str, Optional[int]]:
        return {
            "max_conflicts": self.max_conflicts,
            "max_propagations": self.max_propagations,
            "max_decisions": self.max_decisions,
        }

    def cache_key(self) -> str:
        return solve_cache_key(
            to_dimacs(self.cnf), self.policy, self.config, self.budgets()
        )


@dataclass
class SolveOutcome:
    """Result of one task: status, effort counters, and provenance."""

    tag: str
    policy: str
    status: Status
    propagations: int
    conflicts: int
    decisions: int
    restarts: int
    reductions: int
    wall_seconds: float
    model: Optional[Model] = None
    #: True when served from the on-disk cache instead of a solver run.
    cached: bool = False

    @property
    def solved(self) -> bool:
        return self.status is not Status.UNKNOWN

    def as_payload(self) -> Dict[str, Any]:
        """JSON-able form for the result cache."""
        return {
            "tag": self.tag,
            "policy": self.policy,
            "status": self.status.value,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "restarts": self.restarts,
            "reductions": self.reductions,
            "wall_seconds": self.wall_seconds,
            "model": self.model,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SolveOutcome":
        model = payload.get("model")
        return cls(
            tag=str(payload.get("tag", "")),
            policy=str(payload["policy"]),
            status=Status(payload["status"]),
            propagations=int(payload["propagations"]),
            conflicts=int(payload["conflicts"]),
            decisions=int(payload["decisions"]),
            restarts=int(payload["restarts"]),
            reductions=int(payload["reductions"]),
            wall_seconds=float(payload["wall_seconds"]),
            model=None if model is None else list(model),
            cached=True,
        )


def execute_task(task: SolveTask) -> SolveOutcome:
    """Run one task to completion in the current process."""
    solver = Solver(task.cnf, policy=get_policy(task.policy), config=task.config)
    start = time.perf_counter()
    result = solver.solve(
        max_conflicts=task.max_conflicts,
        max_propagations=task.max_propagations,
        max_decisions=task.max_decisions,
    )
    wall = time.perf_counter() - start
    stats = result.stats
    return SolveOutcome(
        tag=task.tag,
        policy=task.policy,
        status=result.status,
        propagations=stats.propagations,
        conflicts=stats.conflicts,
        decisions=stats.decisions,
        restarts=stats.restarts,
        reductions=stats.reductions,
        wall_seconds=wall,
        model=result.model,
    )


@dataclass
class RunnerStats:
    """Aggregate of one :meth:`ParallelRunner.run` call."""

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0
    solved: int = 0
    wall_seconds: float = 0.0
    summary: Dict[str, object] = field(default_factory=dict)


class ParallelRunner:
    """Fan solve tasks out over processes, with transparent result caching."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[ProgressAggregator] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        self.last_stats = RunnerStats()

    def run(self, tasks: Sequence[SolveTask]) -> List[SolveOutcome]:
        """Execute every task; results come back in task order.

        Cached tasks are answered from disk without touching the pool;
        fresh results are written back so the next run with the same
        tasks performs zero solver work.
        """
        progress = self.progress or ProgressAggregator()
        progress.total = len(tasks)
        started = time.perf_counter()

        results: List[Optional[SolveOutcome]] = [None] * len(tasks)
        pending: List[int] = []
        keys: Dict[int, str] = {}
        for index, task in enumerate(tasks):
            if self.cache is not None:
                key = task.cache_key()
                keys[index] = key
                payload = self.cache.get(key)
                if payload is not None:
                    outcome = SolveOutcome.from_payload(payload)
                    results[index] = outcome
                    progress.record(outcome)
                    continue
            pending.append(index)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                fresh = (execute_task(tasks[index]) for index in pending)
                for index, outcome in zip(pending, fresh):
                    self._finish(index, outcome, results, keys, progress)
            else:
                workers = min(self.workers, len(pending))
                with multiprocessing.Pool(processes=workers) as pool:
                    fresh = pool.imap(
                        execute_task,
                        [tasks[index] for index in pending],
                        chunksize=1,
                    )
                    for index, outcome in zip(pending, fresh):
                        self._finish(index, outcome, results, keys, progress)

        self.last_stats = RunnerStats(
            tasks=len(tasks),
            cache_hits=progress.cache_hits,
            executed=progress.executed,
            solved=progress.solved,
            wall_seconds=time.perf_counter() - started,
            summary=progress.summary(),
        )
        return [outcome for outcome in results if outcome is not None]

    def _finish(
        self,
        index: int,
        outcome: SolveOutcome,
        results: List[Optional[SolveOutcome]],
        keys: Dict[int, str],
        progress: ProgressAggregator,
    ) -> None:
        results[index] = outcome
        if self.cache is not None:
            self.cache.put(keys[index], outcome.as_payload())
        progress.record(outcome)
