"""Parallel instance-level execution: caching, supervision, resume.

The engine solves one instance per process; everything around it —
dual-policy labelling, dataset construction, benchmark suites — is
embarrassingly parallel across instances.  This package provides:

* :class:`~repro.parallel.runner.ParallelRunner` — fan
  :class:`~repro.parallel.runner.SolveTask` lists out over supervised
  worker processes, returning ordered, deterministic
  :class:`~repro.parallel.runner.SolveOutcome` records — exactly one
  per task, even when a worker hangs, crashes, or is OOM-killed;
* :class:`~repro.parallel.supervisor.Supervisor` — per-task worker
  processes under hard wall-clock (:class:`WorkerBudget`) and memory
  budgets, with transient-failure retry (:class:`RetryPolicy`) and
  deterministic fault injection (:class:`FaultPlan`) for tests;
* :class:`~repro.parallel.journal.RunJournal` — append-only JSONL
  checkpoint so an interrupted sweep resumes without re-solving
  finished tasks;
* :class:`~repro.parallel.cache.ResultCache` — content-addressed JSON
  store so a previously solved *(instance, policy, config, budgets)*
  combination is never solved again;
* :class:`~repro.parallel.progress.ProgressAggregator` — live counts of
  executed / cached / resumed / solved / failed tasks plus the
  supervision failure taxonomy and cumulative solver effort.

``repro.selection.labeling``, ``repro.selection.dataset``, and
``repro.bench.runner`` all route through this layer.
"""

from repro.parallel.cache import CACHE_FORMAT_VERSION, ResultCache, solve_cache_key
from repro.parallel.journal import RunJournal
from repro.parallel.progress import ProgressAggregator
from repro.parallel.runner import (
    ParallelRunner,
    RunnerStats,
    SolveOutcome,
    SolveTask,
    execute_task,
)
from repro.parallel.supervisor import (
    Fault,
    FaultPlan,
    RetryPolicy,
    Supervisor,
    WorkerBudget,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "Fault",
    "FaultPlan",
    "ParallelRunner",
    "ProgressAggregator",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "RunnerStats",
    "SolveOutcome",
    "SolveTask",
    "Supervisor",
    "WorkerBudget",
    "execute_task",
    "solve_cache_key",
]
