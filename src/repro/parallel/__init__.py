"""Parallel instance-level execution with on-disk result caching.

The engine solves one instance per process; everything around it —
dual-policy labelling, dataset construction, benchmark suites — is
embarrassingly parallel across instances.  This package provides:

* :class:`~repro.parallel.runner.ParallelRunner` — fan
  :class:`~repro.parallel.runner.SolveTask` lists out over a
  ``multiprocessing`` pool, returning ordered, deterministic
  :class:`~repro.parallel.runner.SolveOutcome` records;
* :class:`~repro.parallel.cache.ResultCache` — content-addressed JSON
  store so a previously solved *(instance, policy, config, budgets)*
  combination is never solved again;
* :class:`~repro.parallel.progress.ProgressAggregator` — live counts of
  executed / cached / solved tasks plus cumulative solver effort.

``repro.selection.labeling``, ``repro.selection.dataset``, and
``repro.bench.runner`` all route through this layer.
"""

from repro.parallel.cache import CACHE_FORMAT_VERSION, ResultCache, solve_cache_key
from repro.parallel.progress import ProgressAggregator
from repro.parallel.runner import (
    ParallelRunner,
    RunnerStats,
    SolveOutcome,
    SolveTask,
    execute_task,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ParallelRunner",
    "ProgressAggregator",
    "ResultCache",
    "RunnerStats",
    "SolveOutcome",
    "SolveTask",
    "execute_task",
    "solve_cache_key",
]
