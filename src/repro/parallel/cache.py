"""On-disk result cache for solver runs.

Labelling solves every training instance twice (once per deletion
policy), and dataset construction repeats across sessions, ablations,
and benchmark reruns.  The cache makes each *(instance, policy, config,
budgets)* combination a solve-once affair: results are stored as small
JSON documents keyed by a SHA-256 fingerprint of the task, so a re-run
of a labelled dataset — or of a single instance inside a bigger sweep —
is a disk read instead of a solver run.

Keys are content-addressed: the CNF enters the fingerprint as its
canonical DIMACS text, so two structurally identical formulas built
through different code paths share a cache entry, while any change to
the formula, the policy, the solver configuration, or the effort
budgets produces a fresh key.  The store layout is two-level
(``<root>/<key[:2]>/<key>.json``) to keep directories small, and writes
are atomic (temp file + ``os.replace``) so a crashed or concurrent run
never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bump when the cached payload layout changes; old entries then miss.
CACHE_FORMAT_VERSION = 1


def config_fingerprint(config: Optional[object]) -> Optional[Dict[str, Any]]:
    """A JSON-able snapshot of a :class:`SolverConfig` (or None)."""
    if config is None:
        return None
    return dataclasses.asdict(config)


def solve_cache_key(
    dimacs: str,
    policy: str,
    config: Optional[object],
    budgets: Dict[str, Optional[int]],
) -> str:
    """Deterministic key for one (formula, policy, config, budgets) task."""
    document = {
        "format": CACHE_FORMAT_VERSION,
        "dimacs": dimacs,
        "policy": policy,
        "config": config_fingerprint(config),
        "budgets": {k: budgets[k] for k in sorted(budgets)},
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of JSON solve results, addressed by task fingerprint."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Corrupt or stale-format entries deleted on read.
        self.corrupt_evictions = 0
        #: Orphaned ``*.tmp.<pid>`` files removed at startup.
        self.tmp_swept = self.sweep_stale_tmp()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def sweep_stale_tmp(self) -> int:
        """Remove temp files orphaned by killed writers; returns count.

        Writers stage entries as ``<key>.tmp.<pid>`` before the atomic
        rename; a worker killed mid-write (timeout, OOM, crash) leaves
        the temp file behind forever.  Entries are tiny, so any temp
        file at startup is garbage from a previous, dead run.
        """
        removed = 0
        for tmp in self.root.glob("*/*.tmp.*"):
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                pass  # a concurrent sweeper got there first
        return removed

    def _is_entry(self, path: Path) -> bool:
        """True for real entry files (never in-flight temp files)."""
        return path.suffix == ".json" and ".tmp." not in path.name

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored payload for ``key``, or None.  Corrupt entries are
        misses — and are evicted so they cannot shadow a future write
        or inflate ``len(cache)`` forever."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self.evict(key)
            self.corrupt_evictions += 1
            self.misses += 1
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            self.evict(key)
            self.corrupt_evictions += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def evict(self, key: str) -> bool:
        """Delete one entry; True when a file was actually removed."""
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = dict(payload)
        document["format"] = CACHE_FORMAT_VERSION
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, path)
        self.writes += 1

    def __len__(self) -> int:
        return sum(1 for p in self.root.glob("*/*.json") if self._is_entry(p))

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        In-flight temp files are cleaned up too but not counted — they
        were never entries.
        """
        removed = 0
        for entry in self.root.glob("*/*.json"):
            if not self._is_entry(entry):
                continue
            entry.unlink()
            removed += 1
        self.sweep_stale_tmp()
        return removed
