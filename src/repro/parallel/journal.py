"""Crash-safe run journal: append-only JSONL checkpointing for sweeps.

A labelling or benchmark sweep is hours of solver work; an interruption
(SIGKILL, power loss, a supervisor bug) should cost the tasks in flight,
not the tasks already finished.  The journal records one JSON line per
*terminal* task outcome — success, budget-UNKNOWN, or a supervision
failure — keyed by the task's content-addressed cache key, and a resumed
run answers journalled tasks from the journal instead of re-solving
them.

The difference from :class:`~repro.parallel.cache.ResultCache`: the
cache is a global, cross-run memo of *deterministic solver results*
(failures are never cached — they describe one execution, not the
formula), while the journal is the per-run completion ledger and records
failures too, so a resumed sweep does not re-run a task that already
timed out with the same budgets.

Crash safety is structural: lines are appended and flushed (+ fsync)
one at a time, a torn final line from a killed writer fails JSON parsing
and is skipped on load, and every line before it is intact.  Journal
format::

    {"kind": "entry", "key": "<sha256>", "outcome": {...payload...}}
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union


class RunJournal:
    """Append-only JSONL ledger of finished tasks, keyed by cache key."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Terminal outcomes loaded from disk plus those recorded live.
        self.completed: Dict[str, Dict[str, Any]] = {}
        #: Unparseable lines skipped on load (torn writes, corruption).
        self.corrupt_lines = 0
        self._load()
        # Opened lazily so a journal that is only read never grows.
        self._handle = None

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    outcome = record["outcome"]
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                if not isinstance(outcome, dict):
                    self.corrupt_lines += 1
                    continue
                self.completed[key] = outcome

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Outcome payload for a finished task, or None."""
        return self.completed.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def record(self, key: str, outcome: Dict[str, Any]) -> None:
        """Append one terminal outcome; durable once the call returns."""
        if key in self.completed:
            self.completed[key] = dict(outcome)
            return  # already journalled; don't grow the file with dupes
        self.completed[key] = dict(outcome)
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        line = json.dumps(
            {"kind": "entry", "key": key, "outcome": outcome},
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            pass  # some filesystems refuse fsync; flush is still done

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
