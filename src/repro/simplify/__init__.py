"""CNF preprocessing (the simplification stack of modern CDCL solvers).

Kissat and its relatives spend significant effort simplifying the
formula before and during search.  This package reproduces the classic
preprocessing techniques as composable passes:

* **unit propagation closure** — propagate all unit clauses to a fixpoint;
* **subsumption** — drop clauses that are supersets of other clauses;
* **self-subsuming resolution (strengthening)** — remove a literal from
  a clause when resolving with an almost-subsuming clause allows it;
* **bounded variable elimination** (NiVER/SatELite) — resolve a variable
  away when doing so does not grow the formula, with full model
  reconstruction for eliminated variables;
* **failed-literal probing** — assume a literal, propagate, and learn
  the negation as a unit when it fails.

The :class:`Preprocessor` orchestrates the passes to a fixpoint and
returns an equisatisfiable :class:`~repro.cnf.formula.CNF` together with
a :class:`ModelReconstructor` that extends any model of the simplified
formula back to the original variables.
"""

from repro.simplify.passes import (
    propagate_units,
    subsume,
    strengthen,
    probe_failed_literals,
)
from repro.simplify.elimination import eliminate_variables, ModelReconstructor
from repro.simplify.vivify import vivify
from repro.simplify.equivalence import substitute_equivalences
from repro.simplify.blocked import eliminate_blocked_clauses
from repro.simplify.xor_gauss import (
    XorConstraint,
    GF2System,
    recover_xors,
    gaussian_eliminate,
)
from repro.simplify.pipeline import Preprocessor, PreprocessResult, PreprocessStats, solve_with_preprocessing

__all__ = [
    "propagate_units",
    "subsume",
    "strengthen",
    "probe_failed_literals",
    "eliminate_variables",
    "vivify",
    "substitute_equivalences",
    "XorConstraint",
    "GF2System",
    "recover_xors",
    "gaussian_eliminate",
    "eliminate_blocked_clauses",
    "ModelReconstructor",
    "Preprocessor",
    "PreprocessResult",
    "PreprocessStats",
    "solve_with_preprocessing",
]
