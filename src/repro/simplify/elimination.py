"""Bounded variable elimination (NiVER / SatELite style).

A variable ``v`` is *eliminated* by replacing the clauses containing it
with all non-tautological resolvents between its positive and negative
occurrence lists.  Elimination is *bounded*: it is only applied when the
resolvent set is no larger than the replaced set (plus ``growth``), so
the formula never blows up.

Eliminated variables disappear from the formula; a model of the reduced
formula is extended back via :class:`ModelReconstructor`, which replays
the eliminations in reverse and picks each eliminated variable's value
to satisfy its saved occurrence clauses (always possible — that is
exactly the soundness argument of variable elimination).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

Clause = FrozenSet[int]


class ModelReconstructor:
    """Replays simplification steps in reverse to complete a model.

    Two kinds of entries share one stack (order matters — later passes
    see the earlier passes' output formula):

    * **elimination** — variable resolved away by BVE, restored by
      picking the value satisfying its saved occurrence clauses;
    * **equivalence** — variable substituted by a representative
      literal (SCC of the binary implication graph), restored by
      copying the representative's value with the recorded sign.
    """

    def __init__(self) -> None:
        # ("elim", var, saved_clauses) or ("equiv", var, representative_lit).
        self._stack: List[Tuple[str, int, object]] = []

    def push(self, var: int, saved_clauses: List[Clause]) -> None:
        """Record a variable elimination."""
        self._stack.append(("elim", var, saved_clauses))

    def push_equivalence(self, var: int, representative: int) -> None:
        """Record ``var == representative`` (a signed DIMACS literal)."""
        if abs(representative) == var:
            raise ValueError("a variable cannot represent itself")
        self._stack.append(("equiv", var, representative))

    def push_fixed(self, var: int, value: bool) -> None:
        """Record a unit fixing (variable forced at this simplification stage).

        Putting fixings on the same stack as eliminations keeps replay
        *witness-ordered*: an entry recorded at an earlier stage replays
        later and may legitimately override a value fixed afterwards
        (e.g. a blocked-clause repair flipping a variable that a later
        round's probing had pinned).
        """
        self._stack.append(("fixed", var, value))

    def push_blocked(self, blocking_literal: int, clause: Clause) -> None:
        """Record removal of a blocked clause on ``blocking_literal``.

        Reconstruction: if the clause ends up unsatisfied, flip the
        blocking literal's variable to satisfy it — sound because every
        resolvent of the clause on that literal is a tautology, so the
        flip cannot falsify any kept clause containing the complement.
        """
        if blocking_literal not in clause:
            raise ValueError("blocking literal must occur in the clause")
        self._stack.append(("blocked", blocking_literal, clause))

    @property
    def eliminated_variables(self) -> List[int]:
        return [var for kind, var, _ in self._stack if kind == "elim"]

    @property
    def substituted_variables(self) -> List[int]:
        return [var for kind, var, _ in self._stack if kind == "equiv"]

    def extend(self, model: List[Optional[bool]]) -> List[Optional[bool]]:
        """Fill in eliminated/substituted variables.

        ``model`` is indexed by variable (index 0 unused); entries for
        recorded variables may be anything — they are overwritten.
        Returns the same list for convenience.

        Replay soundness requires a *total* assignment of the residual
        formula, so unconstrained ``None`` entries are defaulted to True
        up front (any value satisfies the residual; the replay then
        repairs whatever the recorded steps need).
        """
        for i in range(1, len(model)):
            if model[i] is None:
                model[i] = True
        for kind, var, payload in reversed(self._stack):
            if kind == "fixed":
                model[var] = payload
                continue
            if kind == "equiv":
                representative = payload
                value = model[abs(representative)]
                if value is None:
                    value = True  # representative unconstrained
                    model[abs(representative)] = value
                model[var] = value if representative > 0 else not value
                continue
            if kind == "blocked":
                blocking_literal, clause = var, payload
                satisfied = any(
                    model[abs(lit)] == (lit > 0) for lit in clause
                )
                if not satisfied:
                    model[abs(blocking_literal)] = blocking_literal > 0
                continue
            saved = payload
            # Default polarity false; flip to true iff some clause
            # containing the positive literal is otherwise unsatisfied.
            value = False
            for clause in saved:
                if var not in clause:
                    continue
                others_satisfy = any(
                    lit != var and model[abs(lit)] == (lit > 0) for lit in clause
                )
                if not others_satisfy:
                    value = True
                    break
            model[var] = value
            # Soundness check: the chosen value satisfies every saved clause.
            for clause in saved:
                assert any(model[abs(lit)] == (lit > 0) for lit in clause), (
                    f"reconstruction failed for eliminated variable {var}"
                )
        return model


def _resolvents(
    positive: Sequence[Clause], negative: Sequence[Clause], var: int
) -> Optional[List[Clause]]:
    """All non-tautological resolvents on ``var``; None when one is empty."""
    out: List[Clause] = []
    for p in positive:
        p_rest = p - {var}
        for n in negative:
            resolvent = p_rest | (n - {-var})
            if not resolvent:
                return None  # empty resolvent: formula is UNSAT
            if any(-lit in resolvent for lit in resolvent):
                continue  # tautology
            out.append(resolvent)
    return out


def eliminate_variables(
    clauses: List[Clause],
    num_vars: int,
    reconstructor: ModelReconstructor,
    growth: int = 0,
    max_occurrences: int = 10,
) -> Tuple[List[Clause], List[int], bool]:
    """One elimination sweep over all candidate variables.

    Returns ``(new_clauses, eliminated_vars, proven_unsat)``.  Variables
    with more than ``max_occurrences`` occurrences in either polarity are
    skipped (classic SatELite heuristic — dense variables rarely pay off
    and resolving them is quadratic).
    """
    current = set(clauses)
    eliminated: List[int] = []

    for var in range(1, num_vars + 1):
        positive = [c for c in current if var in c]
        negative = [c for c in current if -var in c]
        if not positive and not negative:
            continue
        if len(positive) > max_occurrences or len(negative) > max_occurrences:
            continue
        resolvents = _resolvents(positive, negative, var)
        if resolvents is None:
            return sorted(current, key=sorted), eliminated, True
        if len(resolvents) > len(positive) + len(negative) + growth:
            continue  # would grow the formula: skip
        for clause in positive + negative:
            current.discard(clause)
        for clause in resolvents:
            current.add(clause)
        reconstructor.push(var, positive + negative)
        eliminated.append(var)

    return sorted(current, key=sorted), eliminated, False
