"""Clause vivification (distillation).

For a clause ``C = (l1 ∨ ... ∨ lk)`` in formula ``F``, assume the
negations ``¬l1, ¬l2, ...`` one at a time over ``F \\ {C}`` and unit
propagate after each:

* **conflict** after asserting the first ``i`` negations — the prefix
  ``(l1 ∨ ... ∨ li)`` is already implied, so it replaces ``C``;
* some **later literal of C becomes true** — ``(l1 ∨ ... ∨ li ∨ lj)``
  replaces ``C``;
* some later literal becomes **false** — it is redundant in ``C`` and
  is dropped.

Every rewrite yields a clause that is both implied by ``F`` and
subsumes ``C`` given ``F``, so satisfiability is preserved.  This is the
preprocessing flavour of the vivification Kissat runs as inprocessing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

Clause = FrozenSet[int]


def _propagate_with_assumptions(
    clauses: List[Clause], assumptions: Dict[int, bool]
) -> Tuple[Optional[Dict[int, bool]], bool]:
    """Unit propagation from a starting assignment.

    Returns ``(assignment, conflict)``; assignment is None on conflict.
    """
    assignment = dict(assumptions)
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned: Optional[int] = None
            satisfied = False
            extra = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                elif unassigned is None:
                    unassigned = lit
                else:
                    extra = True
            if satisfied:
                continue
            if unassigned is None:
                return None, True
            if not extra:
                assignment[abs(unassigned)] = unassigned > 0
                changed = True
    return assignment, False


def vivify(
    clauses: List[Clause],
    min_size: int = 3,
    max_clauses: int = 500,
) -> Tuple[List[Clause], int]:
    """One vivification sweep.

    Only clauses with at least ``min_size`` literals are candidates
    (binary clauses cannot shrink usefully), and at most ``max_clauses``
    are attempted per sweep (each costs several unit propagations).
    Returns the new clause list and the number of clauses shortened.
    """
    result = list(clauses)
    shortened = 0
    attempts = 0
    for index, clause in enumerate(clauses):
        if len(clause) < min_size:
            continue
        if attempts >= max_clauses:
            break
        attempts += 1
        others = [c for j, c in enumerate(result) if j != index]
        ordered = sorted(clause, key=abs)
        kept: List[int] = []
        assumptions: Dict[int, bool] = {}
        rewritten: Optional[List[int]] = None
        for position, lit in enumerate(ordered):
            assignment, conflict = _propagate_with_assumptions(others, assumptions)
            if conflict:
                # The negated prefix is already contradictory.
                rewritten = list(kept)
                break
            assert assignment is not None
            value = assignment.get(abs(lit))
            if value is not None:
                if value == (lit > 0):
                    # Prefix implies lit: prefix + lit replaces the clause.
                    rewritten = kept + [lit]
                    break
                # lit is false under the prefix: redundant, drop it.
                continue
            kept.append(lit)
            assumptions[abs(lit)] = not (lit > 0)
        if rewritten is None and len(kept) < len(ordered):
            rewritten = kept
        if rewritten is not None and 0 < len(rewritten) < len(clause):
            result[index] = frozenset(rewritten)
            shortened += 1
    return result, shortened
