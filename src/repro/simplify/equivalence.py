"""Equivalent-literal substitution via binary-implication-graph SCCs.

Every binary clause ``(a ∨ b)`` encodes two implications ``¬a → b`` and
``¬b → a``.  Literals in the same strongly connected component of this
implication graph are all logically equivalent; if a literal shares a
component with its own negation the formula is unsatisfiable (the 2-SAT
criterion).  Substituting every SCC by one representative literal shrinks
the formula and often cascades with the other passes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.simplify.elimination import ModelReconstructor

Clause = FrozenSet[int]


def _binary_implication_graph(clauses: List[Clause]) -> Dict[int, List[int]]:
    graph: Dict[int, List[int]] = {}
    for clause in clauses:
        if len(clause) != 2:
            continue
        a, b = tuple(clause)
        graph.setdefault(-a, []).append(b)
        graph.setdefault(-b, []).append(a)
    return graph


def _tarjan_sccs(graph: Dict[int, List[int]]) -> List[List[int]]:
    """Iterative Tarjan over literal nodes; returns SCCs in found order."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for root in list(graph):
        if root in index_of:
            continue
        # Explicit DFS stack: (node, iterator over successors).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            successors = graph.get(node, ())
            advanced = False
            while child_index < len(successors):
                successor = successors[child_index]
                child_index += 1
                if successor not in index_of:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack.get(successor):
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def substitute_equivalences(
    clauses: List[Clause],
    reconstructor: ModelReconstructor,
) -> Tuple[List[Clause], List[int], bool]:
    """One equivalence-substitution sweep.

    Returns ``(new_clauses, substituted_vars, proven_unsat)``.  The
    representative of each SCC is the literal whose variable index is
    smallest (positive polarity preferred), so substitution is
    deterministic.
    """
    graph = _binary_implication_graph(clauses)
    if not graph:
        return clauses, [], False
    sccs = _tarjan_sccs(graph)

    substitution: Dict[int, int] = {}  # literal -> representative literal
    substituted_vars: List[int] = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        members = set(scc)
        if any(-lit in members for lit in scc):
            return clauses, substituted_vars, True  # 2-SAT contradiction
        representative = min(scc, key=lambda lit: (abs(lit), lit < 0))
        for lit in scc:
            if lit == representative:
                continue
            if abs(lit) == abs(representative):
                continue  # cannot happen past the contradiction check
            substitution[lit] = representative
            substitution[-lit] = -representative
            if abs(lit) not in substituted_vars:
                substituted_vars.append(abs(lit))
                # var == representative when the positive literal maps
                # positively; record with the correct sign.
                mapped = substitution[abs(lit)]
                reconstructor.push_equivalence(abs(lit), mapped)

    if not substitution:
        return clauses, [], False

    new_clauses: List[Clause] = []
    seen = set()
    for clause in clauses:
        mapped = frozenset(substitution.get(lit, lit) for lit in clause)
        if any(-lit in mapped for lit in mapped):
            continue  # became a tautology
        if mapped not in seen:
            seen.add(mapped)
            new_clauses.append(mapped)
    return new_clauses, substituted_vars, False
