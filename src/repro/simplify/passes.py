"""Clause-level simplification passes.

All passes operate on a list of frozensets of DIMACS literals (the
pipeline normalizes clauses first: no tautologies, no duplicates).  They
are pure functions returning new clause lists plus what changed, so the
pipeline can compose them and iterate to a fixpoint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

Clause = FrozenSet[int]


class SimplifyConflict(Exception):
    """Raised when simplification proves the formula unsatisfiable."""


def propagate_units(
    clauses: List[Clause],
) -> Tuple[List[Clause], Dict[int, bool]]:
    """Unit-propagation closure.

    Returns the simplified clauses and the forced assignments
    ``{var: value}``.  Raises :class:`SimplifyConflict` when propagation
    derives the empty clause (including contradictory units).
    """
    assignment: Dict[int, bool] = {}
    current = list(clauses)
    changed = True
    while changed:
        changed = False
        next_clauses: List[Clause] = []
        for clause in current:
            satisfied = False
            remaining: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if satisfied:
                changed = changed or len(remaining) != len(clause)
                continue
            if not remaining:
                raise SimplifyConflict("unit propagation derived the empty clause")
            if len(remaining) == 1:
                lit = remaining[0]
                assignment[abs(lit)] = lit > 0
                changed = True
            else:
                reduced = frozenset(remaining)
                if len(reduced) != len(clause):
                    changed = True
                next_clauses.append(reduced)
        current = next_clauses
    return current, assignment


def subsume(clauses: List[Clause]) -> Tuple[List[Clause], int]:
    """Forward subsumption: drop clauses that contain another clause.

    Also removes exact duplicates.  Uses occurrence lists keyed on each
    clause's least-frequent literal so the common case is near-linear.
    """
    unique: List[Clause] = sorted(set(clauses), key=len)
    occurrences: Dict[int, List[int]] = {}
    for index, clause in enumerate(unique):
        for lit in clause:
            occurrences.setdefault(lit, []).append(index)

    removed: Set[int] = set()
    for index, clause in enumerate(unique):
        if index in removed:
            continue
        # Candidates must share the rarest literal of this clause.
        rare = min(clause, key=lambda lit: len(occurrences.get(lit, ())))
        for other_index in occurrences.get(rare, ()):  # includes index itself
            if other_index == index or other_index in removed:
                continue
            other = unique[other_index]
            if len(other) >= len(clause) and clause <= other:
                removed.add(other_index)

    kept = [c for i, c in enumerate(unique) if i not in removed]
    return kept, len(clauses) - len(kept)


def strengthen(clauses: List[Clause]) -> Tuple[List[Clause], int]:
    """Self-subsuming resolution.

    If ``D = X ∪ {l}`` and some clause ``C ⊇ X ∪ {¬l}`` exists, then the
    resolvent of C and D on ``l`` subsumes C, so ``¬l`` can be removed
    from C ("C is strengthened by D").  One sweep; the pipeline iterates
    to a fixpoint.
    """
    current = list(clauses)
    occurrences: Dict[int, Set[int]] = {}
    for index, clause in enumerate(current):
        for lit in clause:
            occurrences.setdefault(lit, set()).add(index)

    strengthened = 0
    for index, clause in enumerate(current):
        for lit in list(clause):
            rest = clause - {lit}
            # Clauses containing ¬lit and all of `rest` can drop ¬lit.
            candidates: Optional[Set[int]] = occurrences.get(-lit)
            if not candidates:
                continue
            for other_lit in rest:
                holders = occurrences.get(other_lit)
                if holders is None:
                    candidates = set()
                    break
                candidates = candidates & holders
                if not candidates:
                    break
            if not candidates:
                continue
            for target_index in list(candidates):
                if target_index == index:
                    continue
                target = current[target_index]
                if -lit not in target:
                    continue  # stale occurrence entry
                new_clause = target - {-lit}
                # Update occurrence lists incrementally.
                occurrences[-lit].discard(target_index)
                current[target_index] = new_clause
                strengthened += 1
    return current, strengthened


def probe_failed_literals(
    clauses: List[Clause],
    max_probes: int = 256,
) -> Tuple[List[int], bool]:
    """Failed-literal probing.

    For up to ``max_probes`` candidate literals (those appearing in
    binary clauses — the ones that actually trigger propagation chains),
    assume the literal, propagate, and report its negation as a forced
    unit when propagation conflicts.  Returns ``(forced_units,
    proven_unsat)`` where ``proven_unsat`` is True when both polarities
    of some variable fail.
    """
    binary_lits: List[int] = []
    seen: Set[int] = set()
    for clause in clauses:
        if len(clause) == 2:
            for lit in clause:
                if lit not in seen:
                    seen.add(lit)
                    binary_lits.append(lit)
    binary_lits = binary_lits[:max_probes]

    forced: List[int] = []
    forced_set: Set[int] = set()
    for lit in binary_lits:
        if -lit in forced_set:
            continue  # probing lit is pointless: ¬lit already forced
        trial = list(clauses) + [frozenset([lit])]
        try:
            propagate_units(trial)
        except SimplifyConflict:
            # lit fails -> ¬lit is forced.
            if lit in forced_set:
                return forced, True  # both polarities forced: UNSAT
            if -lit not in forced_set:
                forced.append(-lit)
                forced_set.add(-lit)
    return forced, False
