"""XOR recovery and Gaussian elimination over GF(2).

Tseitin-style instances (our parity family, crypto problems) encode XOR
constraints as exponential clause groups: an XOR over ``k`` variables
appears as the ``2^(k-1)`` clauses excluding every odd/even sign
pattern.  CDCL's clause-by-clause resolution is blind to this algebraic
structure — the reason parity contradictions are exponentially hard for
it.  The classic fix (CryptoMiniSat): *recover* the XOR constraints,
run **Gaussian elimination over GF(2)**, and feed what it learns back as
units, equivalences, or an outright inconsistency proof.

This pass is preprocessing-only (no in-search Gauss): it shrinks or
decides the instance before CDCL starts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

Clause = FrozenSet[int]


@dataclass(frozen=True)
class XorConstraint:
    """``var_1 XOR ... XOR var_k = rhs`` over positive variable ids."""

    variables: Tuple[int, ...]  # sorted, distinct, positive
    rhs: int  # 0 or 1

    def __post_init__(self):
        if self.rhs not in (0, 1):
            raise ValueError("rhs must be 0 or 1")
        if list(self.variables) != sorted(set(self.variables)):
            raise ValueError("variables must be sorted and distinct")
        if any(v <= 0 for v in self.variables):
            raise ValueError("variables must be positive ids")


def _expected_group(variables: Sequence[int], rhs: int) -> Set[Clause]:
    """The full clause group encoding XOR(variables) = rhs."""
    group: Set[Clause] = set()
    k = len(variables)
    for signs in itertools.product((1, -1), repeat=k):
        negations = sum(1 for s in signs if s < 0)
        # A clause excludes exactly the assignment falsifying all its
        # literals; there v_i is true iff the literal is negative, so the
        # excluded assignment's parity equals `negations`.  The group
        # needs the clause iff that parity differs from rhs.
        if negations % 2 != rhs:
            group.add(frozenset(s * v for s, v in zip(signs, variables)))
    return group


def recover_xors(
    clauses: Sequence[Clause], max_arity: int = 5
) -> List[XorConstraint]:
    """Find complete XOR clause groups hidden in a CNF.

    For every clause of size ``k <= max_arity``, checks whether all
    ``2^(k-1)`` sign-pattern siblings of one parity are present; if so,
    the group encodes an XOR constraint.  Each group is reported once.
    """
    clause_set = set(clauses)
    found: List[XorConstraint] = []
    seen_groups: Set[Tuple[Tuple[int, ...], int]] = set()
    for clause in clauses:
        k = len(clause)
        if k < 2 or k > max_arity:
            continue
        variables = tuple(sorted(abs(lit) for lit in clause))
        if len(set(variables)) != k:
            continue
        for rhs in (0, 1):
            key = (variables, rhs)
            if key in seen_groups:
                continue
            group = _expected_group(variables, rhs)
            if clause in group and group <= clause_set:
                seen_groups.add(key)
                found.append(XorConstraint(variables=variables, rhs=rhs))
    return found


class GF2System:
    """A linear system over GF(2), solved by Gaussian elimination.

    Rows are (variable-set, rhs) pairs; XOR of rows is symmetric set
    difference plus rhs XOR.  After :meth:`eliminate`:

    * inconsistency (empty row with rhs 1) proves UNSAT;
    * unit rows fix variables;
    * binary rows are equivalences ``a = b XOR rhs``.
    """

    def __init__(self, constraints: Sequence[XorConstraint] = ()):
        self.rows: List[Tuple[Set[int], int]] = [
            (set(c.variables), c.rhs) for c in constraints
        ]
        self.inconsistent = False

    def add(self, constraint: XorConstraint) -> None:
        self.rows.append((set(constraint.variables), constraint.rhs))

    def eliminate(self) -> None:
        """Row-reduce to (a sparse analogue of) reduced row-echelon form."""
        reduced: List[Tuple[Set[int], int]] = []
        pivots: Dict[int, int] = {}  # pivot var -> index into reduced
        for row_vars, rhs in self.rows:
            vars_ = set(row_vars)
            # Reduce against existing pivots.
            while True:
                hit = next((v for v in vars_ if v in pivots), None)
                if hit is None:
                    break
                pivot_vars, pivot_rhs = reduced[pivots[hit]]
                vars_ ^= pivot_vars
                rhs ^= pivot_rhs
            if not vars_:
                if rhs == 1:
                    self.inconsistent = True
                continue
            pivot = min(vars_)
            pivots[pivot] = len(reduced)
            reduced.append((vars_, rhs))
        # Back-substitute so every pivot appears in exactly one row.
        for i in range(len(reduced) - 1, -1, -1):
            vars_i, rhs_i = reduced[i]
            pivot = min(vars_i)
            for j in range(len(reduced)):
                if j == i:
                    continue
                vars_j, rhs_j = reduced[j]
                if pivot in vars_j:
                    reduced[j] = (vars_j ^ vars_i, rhs_j ^ rhs_i)
        self.rows = reduced

    # -- extraction ----------------------------------------------------------

    def units(self) -> List[int]:
        """Forced literals: rows with exactly one variable."""
        out = []
        for vars_, rhs in self.rows:
            if len(vars_) == 1:
                (v,) = vars_
                out.append(v if rhs == 1 else -v)
        return out

    def equivalences(self) -> List[Tuple[int, int]]:
        """Pairs ``(a, signed_b)`` meaning ``a == signed_b``.

        A row ``a XOR b = 0`` gives ``a == b``; ``a XOR b = 1`` gives
        ``a == -b``.
        """
        out = []
        for vars_, rhs in self.rows:
            if len(vars_) == 2:
                a, b = sorted(vars_)
                out.append((a, b if rhs == 0 else -b))
        return out


def gaussian_eliminate(
    clauses: List[Clause], max_arity: int = 5
) -> Tuple[List[int], List[Tuple[int, int]], bool]:
    """Recover XORs, eliminate, and report (units, equivalences, unsat).

    Unit clauses join the system as arity-1 XOR constraints — they are
    what usually turns a consistent XOR chain system into a derived
    contradiction (e.g. two parity chains pinned to opposite values).
    The reported units/equivalences exclude facts that were already
    explicit unit clauses.
    """
    constraints = recover_xors(clauses, max_arity=max_arity)
    known_units = set()
    for clause in clauses:
        if len(clause) == 1:
            (lit,) = clause
            known_units.add(lit)
            constraints.append(
                XorConstraint(variables=(abs(lit),), rhs=1 if lit > 0 else 0)
            )
    if not constraints:
        return [], [], False
    system = GF2System(constraints)
    system.eliminate()
    if system.inconsistent:
        return [], [], True
    new_units = [lit for lit in system.units() if lit not in known_units]
    return new_units, system.equivalences(), False
