"""Blocked clause elimination (BCE).

A clause ``C`` is *blocked* on a literal ``l ∈ C`` when every resolvent
of ``C`` with a clause containing ``¬l`` is a tautology.  Removing a
blocked clause preserves satisfiability (Kullmann): any model of the
remaining formula that falsifies ``C`` can be repaired by flipping
``l``'s variable — the tautology condition guarantees no ``¬l`` clause
breaks.  BCE removes surprising amounts of encoding overhead (it
subsumes pure-literal elimination: a pure literal blocks trivially).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.simplify.elimination import ModelReconstructor

Clause = FrozenSet[int]


def _blocks(clause: Clause, literal: int, others: List[Clause]) -> bool:
    """True when every resolvent of ``clause`` on ``literal`` is tautological."""
    rest = clause - {literal}
    for other in others:
        # Resolvent: rest ∪ (other \ {-literal}); tautological iff some
        # variable occurs in both polarities.
        tautology = any(-lit in rest for lit in other if lit != -literal)
        if not tautology:
            return False
    return True


def eliminate_blocked_clauses(
    clauses: List[Clause],
    reconstructor: ModelReconstructor,
    max_occurrences: int = 50,
) -> Tuple[List[Clause], int]:
    """One BCE sweep to fixpoint; returns (remaining clauses, removed count).

    Removing one blocked clause can unblock others, so the sweep repeats
    until nothing changes.  Literals whose complement occurs more than
    ``max_occurrences`` times are skipped (quadratic check not worth it).
    """
    current: List[Clause] = list(dict.fromkeys(clauses))  # dedupe, keep order
    removed = 0
    changed = True
    while changed:
        changed = False
        occurrences: Dict[int, List[Clause]] = {}
        for clause in current:
            for lit in clause:
                occurrences.setdefault(lit, []).append(clause)
        kept: List[Clause] = []
        removed_now: Set[Clause] = set()
        for clause in current:
            blocked_on = None
            for literal in clause:
                complements = occurrences.get(-literal, [])
                if len(complements) > max_occurrences:
                    continue
                active = [c for c in complements if c not in removed_now]
                if _blocks(clause, literal, active):
                    blocked_on = literal
                    break
            if blocked_on is None:
                kept.append(clause)
            else:
                reconstructor.push_blocked(blocked_on, clause)
                removed_now.add(clause)
                removed += 1
                changed = True
        current = kept
    return current, removed
