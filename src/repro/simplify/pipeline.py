"""The preprocessing pipeline: compose passes to a fixpoint.

Order per round (following SatELite/Kissat practice): unit closure →
subsumption → strengthening → failed-literal probing → bounded variable
elimination.  Rounds repeat until nothing changes or a round limit is
hit.  The result is equisatisfiable with the input; models are mapped
back with the bundled :class:`ModelReconstructor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.cnf.formula import CNF
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.simplify.elimination import ModelReconstructor, eliminate_variables
from repro.simplify.passes import (
    SimplifyConflict,
    probe_failed_literals,
    propagate_units,
    strengthen,
    subsume,
)
from repro.simplify.vivify import vivify
from repro.simplify.equivalence import substitute_equivalences
from repro.simplify.xor_gauss import gaussian_eliminate
from repro.simplify.blocked import eliminate_blocked_clauses
from repro.solver.solver import Solver, SolverConfig, SolveResult
from repro.solver.types import Model, Status

Clause = FrozenSet[int]


@dataclass
class PreprocessStats:
    """What each pass accomplished, summed over rounds."""

    rounds: int = 0
    fixed_variables: int = 0
    subsumed_clauses: int = 0
    strengthened_literals: int = 0
    failed_literals: int = 0
    eliminated_variables: int = 0
    vivified_clauses: int = 0
    substituted_variables: int = 0
    xor_units: int = 0
    xor_equivalences: int = 0
    blocked_clauses: int = 0


@dataclass
class PreprocessResult:
    """Simplified formula plus everything needed to map models back."""

    cnf: CNF
    status: Status  # UNSATISFIABLE when preprocessing already decided it
    fixed: Dict[int, bool] = field(default_factory=dict)
    reconstructor: ModelReconstructor = field(default_factory=ModelReconstructor)
    stats: PreprocessStats = field(default_factory=PreprocessStats)
    original_num_vars: int = 0

    def reconstruct(self, model: Optional[Model]) -> Model:
        """Extend a model of the simplified CNF to the original variables."""
        full: Model = [None] * (self.original_num_vars + 1)
        if model is not None:
            for var in range(1, min(len(model), len(full))):
                full[var] = model[var]
        # Unit fixings are replayed from the reconstruction stack (in
        # witness order) rather than applied up front; `self.fixed` stays
        # available as metadata.
        self.reconstructor.extend(full)
        for var in range(1, self.original_num_vars + 1):
            if full[var] is None:
                full[var] = True  # unconstrained
        return full


class Preprocessor:
    """Configurable simplification pipeline."""

    def __init__(
        self,
        max_rounds: int = 3,
        enable_subsumption: bool = True,
        enable_strengthening: bool = True,
        enable_probing: bool = True,
        enable_elimination: bool = True,
        enable_vivification: bool = False,
        enable_equivalences: bool = True,
        enable_xor_gauss: bool = True,
        xor_max_arity: int = 5,
        enable_blocked_clauses: bool = False,
        elimination_growth: int = 0,
        elimination_max_occurrences: int = 10,
        max_probes: int = 256,
        observer: Optional[Observer] = None,
    ):
        if max_rounds < 1:
            raise ValueError("need at least one round")
        self.max_rounds = max_rounds
        self.enable_subsumption = enable_subsumption
        self.enable_strengthening = enable_strengthening
        self.enable_probing = enable_probing
        self.enable_elimination = enable_elimination
        self.enable_vivification = enable_vivification
        self.enable_equivalences = enable_equivalences
        self.enable_xor_gauss = enable_xor_gauss
        self.xor_max_arity = xor_max_arity
        self.enable_blocked_clauses = enable_blocked_clauses
        self.elimination_growth = elimination_growth
        self.elimination_max_occurrences = elimination_max_occurrences
        self.max_probes = max_probes
        self.observer = observer if observer is not None else NULL_OBSERVER

    def preprocess(self, cnf: CNF) -> PreprocessResult:
        """Simplify ``cnf``; never changes satisfiability."""
        result = PreprocessResult(
            cnf=CNF(num_vars=cnf.num_vars),
            status=Status.UNKNOWN,
            original_num_vars=cnf.num_vars,
        )
        clauses: List[Clause] = [
            frozenset(c.literals) for c in cnf.clauses if not c.is_tautology()
        ]
        if any(not c for c in clauses):
            result.status = Status.UNSATISFIABLE
            return result

        try:
            for _ in range(self.max_rounds):
                result.stats.rounds += 1
                changed = False
                clauses_before = len(clauses)
                round_span = self.observer.span("simplify")
                round_span.__enter__()

                clauses, fixed = propagate_units(clauses)
                for var, value in fixed.items():
                    if var in result.fixed and result.fixed[var] != value:
                        raise SimplifyConflict("contradictory units")
                    result.fixed[var] = value
                    # Stack the fixing so replay stays witness-ordered
                    # relative to eliminations/BCE from other rounds.
                    result.reconstructor.push_fixed(var, value)
                changed = changed or bool(fixed)
                result.stats.fixed_variables += len(fixed)

                if self.enable_xor_gauss:
                    units, equivalences, unsat = gaussian_eliminate(
                        clauses, max_arity=self.xor_max_arity
                    )
                    if unsat:
                        raise SimplifyConflict(
                            "GF(2) elimination derived a contradiction"
                        )
                    if units:
                        clauses = clauses + [frozenset([lit]) for lit in units]
                        result.stats.xor_units += len(units)
                        changed = True
                    if equivalences:
                        # Emit equivalences as binary clause pairs; the SCC
                        # substitution pass then merges the variables.
                        extra = []
                        existing = set(clauses)
                        for a, signed_b in equivalences:
                            pair = [
                                frozenset([a, -signed_b]),
                                frozenset([-a, signed_b]),
                            ]
                            extra.extend(c for c in pair if c not in existing)
                        if extra:
                            clauses = clauses + extra
                            result.stats.xor_equivalences += len(equivalences)
                            changed = True


                if self.enable_subsumption:
                    clauses, removed = subsume(clauses)
                    result.stats.subsumed_clauses += removed
                    changed = changed or removed > 0

                if self.enable_strengthening:
                    clauses, strengthened = strengthen(clauses)
                    result.stats.strengthened_literals += strengthened
                    changed = changed or strengthened > 0

                if self.enable_equivalences:
                    clauses, substituted, unsat = substitute_equivalences(
                        clauses, result.reconstructor
                    )
                    if unsat:
                        raise SimplifyConflict(
                            "a literal is equivalent to its negation"
                        )
                    result.stats.substituted_variables += len(substituted)
                    changed = changed or bool(substituted)

                if self.enable_vivification:
                    clauses, vivified = vivify(clauses)
                    result.stats.vivified_clauses += vivified
                    changed = changed or vivified > 0

                if self.enable_probing:
                    units, unsat = probe_failed_literals(
                        clauses, max_probes=self.max_probes
                    )
                    if unsat:
                        raise SimplifyConflict("probing found both polarities failed")
                    result.stats.failed_literals += len(units)
                    if units:
                        clauses = clauses + [frozenset([lit]) for lit in units]
                        changed = True

                if self.enable_elimination:
                    clauses, eliminated, unsat = eliminate_variables(
                        clauses,
                        cnf.num_vars,
                        result.reconstructor,
                        growth=self.elimination_growth,
                        max_occurrences=self.elimination_max_occurrences,
                    )
                    if unsat:
                        raise SimplifyConflict("elimination derived the empty clause")
                    result.stats.eliminated_variables += len(eliminated)
                    changed = changed or bool(eliminated)

                if self.enable_blocked_clauses:
                    clauses, blocked = eliminate_blocked_clauses(
                        clauses, result.reconstructor
                    )
                    result.stats.blocked_clauses += blocked
                    changed = changed or blocked > 0

                round_span.__exit__(None, None, None)
                self.observer.event(
                    "simplify-pass",
                    round=result.stats.rounds,
                    clauses_before=clauses_before,
                    clauses_after=len(clauses),
                    removed=max(0, clauses_before - len(clauses)),
                    fixed=len(fixed),
                    changed=changed,
                )
                if not changed:
                    break
        except SimplifyConflict:
            result.status = Status.UNSATISFIABLE
            return result

        result.cnf = CNF([sorted(c) for c in clauses], num_vars=cnf.num_vars)
        return result


def solve_with_preprocessing(
    cnf: CNF,
    preprocessor: Optional[Preprocessor] = None,
    config: Optional[SolverConfig] = None,
    observer: Optional[Observer] = None,
    **budgets: Optional[int],
) -> SolveResult:
    """Preprocess, solve the residual formula, and reconstruct the model."""
    preprocessor = preprocessor or Preprocessor(observer=observer)
    pre = preprocessor.preprocess(cnf)
    if pre.status is Status.UNSATISFIABLE:
        return SolveResult(status=Status.UNSATISFIABLE)
    result = Solver(pre.cnf, config=config, observer=observer).solve(**budgets)
    if result.status is Status.SATISFIABLE:
        full_model = pre.reconstruct(result.model)
        assert cnf.check_model(full_model), "reconstructed model must satisfy input"
        return SolveResult(
            status=Status.SATISFIABLE,
            model=full_model,
            stats=result.stats,
            policy_name=result.policy_name,
        )
    return result
