"""Core solver value types and literal encoding.

Externally (DIMACS, :class:`repro.cnf.CNF`) a literal is a signed integer.
Internally the solver packs literals into dense non-negative indices so
every per-literal structure is a flat list:

* variable ``v`` (1-based) has positive literal ``2*v`` and negative
  literal ``2*v + 1``;
* negation is ``lit ^ 1``; the variable is ``lit >> 1``; the sign test
  ``lit & 1`` is 1 for negative literals.

Indices 0 and 1 (variable 0) are unused padding so arrays can be indexed
directly by the encoded literal.
"""

from __future__ import annotations

import enum
from typing import List, Optional

# Truth values for assignment arrays: small ints beat enums in the hot loop.
TRUE = 1
FALSE = 0
UNASSIGNED = -1


def encode(dimacs_lit: int) -> int:
    """DIMACS literal -> internal literal index."""
    if dimacs_lit == 0:
        raise ValueError("0 is not a literal")
    var = abs(dimacs_lit)
    return 2 * var + (0 if dimacs_lit > 0 else 1)


def decode(lit: int) -> int:
    """Internal literal index -> DIMACS literal."""
    var = lit >> 1
    return var if (lit & 1) == 0 else -var


def negate(lit: int) -> int:
    """Negation of an internal literal."""
    return lit ^ 1


def variable_of(lit: int) -> int:
    """Variable (1-based) of an internal literal."""
    return lit >> 1


def is_positive(lit: int) -> bool:
    """True for the positive polarity of an internal literal."""
    return (lit & 1) == 0


def lit_sign_value(lit: int) -> int:
    """Truth value that satisfies this literal (TRUE for positive)."""
    return FALSE if (lit & 1) else TRUE


class Status(enum.Enum):
    """Outcome of a solve call or a supervised solve attempt.

    The solver core only ever returns the first three values:
    ``SATISFIABLE`` / ``UNSATISFIABLE`` when the formula is decided and
    ``UNKNOWN`` when an effort budget (conflicts / propagations /
    decisions) ran out mid-search.  The remaining values are *execution*
    failures produced by the supervised runner
    (:mod:`repro.parallel.supervisor`) when the process around the
    solver misbehaved: the solver never saw the end of its input, so no
    statement about the formula is implied.

    Invariants:

    * ``decided`` implies the result carries a model (SAT) or a refuted
      formula (UNSAT); everything else carries neither.
    * ``failed`` statuses never come out of :class:`Solver.solve` and
      are never written to the result cache — a failed attempt is not a
      property of the formula, only of one execution of it.
    * ``UNKNOWN`` is deterministic (same task, same budgets, same
      result) and therefore cacheable; ``TIMEOUT``/``ERROR``/``MEMOUT``
      are environment-dependent and are only recorded in run journals.
    """

    SATISFIABLE = "SATISFIABLE"
    UNSATISFIABLE = "UNSATISFIABLE"
    UNKNOWN = "UNKNOWN"
    #: Supervised task exceeded its wall-clock budget and was killed.
    TIMEOUT = "TIMEOUT"
    #: Worker crashed: unhandled exception, hard kill, or lost channel.
    ERROR = "ERROR"
    #: Worker exceeded its memory budget (RLIMIT hit or OOM-killed).
    MEMOUT = "MEMOUT"

    @property
    def decided(self) -> bool:
        """True when the formula itself was decided (SAT or UNSAT)."""
        return self in (Status.SATISFIABLE, Status.UNSATISFIABLE)

    @property
    def failed(self) -> bool:
        """True for execution failures (supervision taxonomy)."""
        return self in (Status.TIMEOUT, Status.ERROR, Status.MEMOUT)

    def __bool__(self) -> bool:
        # Deliberately disabled: ``if result.status`` is ambiguous.
        raise TypeError("Status has no truth value; compare explicitly")


Model = List[Optional[bool]]
