"""Core solver value types and literal encoding.

Externally (DIMACS, :class:`repro.cnf.CNF`) a literal is a signed integer.
Internally the solver packs literals into dense non-negative indices so
every per-literal structure is a flat list:

* variable ``v`` (1-based) has positive literal ``2*v`` and negative
  literal ``2*v + 1``;
* negation is ``lit ^ 1``; the variable is ``lit >> 1``; the sign test
  ``lit & 1`` is 1 for negative literals.

Indices 0 and 1 (variable 0) are unused padding so arrays can be indexed
directly by the encoded literal.
"""

from __future__ import annotations

import enum
from typing import List, Optional

# Truth values for assignment arrays: small ints beat enums in the hot loop.
TRUE = 1
FALSE = 0
UNASSIGNED = -1


def encode(dimacs_lit: int) -> int:
    """DIMACS literal -> internal literal index."""
    if dimacs_lit == 0:
        raise ValueError("0 is not a literal")
    var = abs(dimacs_lit)
    return 2 * var + (0 if dimacs_lit > 0 else 1)


def decode(lit: int) -> int:
    """Internal literal index -> DIMACS literal."""
    var = lit >> 1
    return var if (lit & 1) == 0 else -var


def negate(lit: int) -> int:
    """Negation of an internal literal."""
    return lit ^ 1


def variable_of(lit: int) -> int:
    """Variable (1-based) of an internal literal."""
    return lit >> 1


def is_positive(lit: int) -> bool:
    """True for the positive polarity of an internal literal."""
    return (lit & 1) == 0


def lit_sign_value(lit: int) -> int:
    """Truth value that satisfies this literal (TRUE for positive)."""
    return FALSE if (lit & 1) else TRUE


class Status(enum.Enum):
    """Outcome of a solve call."""

    SATISFIABLE = "SATISFIABLE"
    UNSATISFIABLE = "UNSATISFIABLE"
    UNKNOWN = "UNKNOWN"

    def __bool__(self) -> bool:
        # Deliberately disabled: ``if result.status`` is ambiguous.
        raise TypeError("Status has no truth value; compare explicitly")


Model = List[Optional[bool]]
