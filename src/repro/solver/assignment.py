"""Assignment trail: values, decision levels, reasons, backtracking.

The trail is the chronological record of all current assignments.  Each
variable stores the truth value, the decision level it was assigned at,
and the *reason* clause that implied it (``None`` for decisions).  This is
the state the propagator and conflict analyzer both walk.
"""

from __future__ import annotations

from typing import List, Optional

from repro.solver.clause_db import SolverClause
from repro.solver.types import FALSE, TRUE, UNASSIGNED, lit_sign_value, variable_of


class Trail:
    """Assignment state for ``num_vars`` variables (1-based)."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        n = num_vars + 1
        self.values: List[int] = [UNASSIGNED] * n  # per variable
        # Per-literal truth values, kept complementary to ``values``:
        # ``lit_values[lit]`` is TRUE/FALSE/UNASSIGNED for that literal
        # directly, sparing the propagator the ``>> 1`` / ``& 1`` / xor
        # dance on every watcher visit (the BCP hot path).
        self.lit_values: List[int] = [UNASSIGNED] * (2 * n)
        self.levels: List[int] = [0] * n
        self.reasons: List[Optional[SolverClause]] = [None] * n
        self.trail: List[int] = []  # internal literals, assignment order
        self.trail_lim: List[int] = []  # trail index where each level starts
        self.qhead: int = 0  # propagation queue head into trail

    # -- queries -------------------------------------------------------------

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def value_var(self, var: int) -> int:
        return self.values[var]

    def value_lit(self, lit: int) -> int:
        """TRUE / FALSE / UNASSIGNED for an internal literal."""
        return self.lit_values[lit]

    def is_assigned(self, var: int) -> bool:
        return self.values[var] != UNASSIGNED

    def num_assigned(self) -> int:
        return len(self.trail)

    def all_assigned(self) -> bool:
        return len(self.trail) == self.num_vars

    # -- mutation --------------------------------------------------------------

    def new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def assign(self, lit: int, reason: Optional[SolverClause]) -> None:
        """Record ``lit`` as true at the current decision level."""
        var = lit >> 1
        assert self.values[var] == UNASSIGNED, f"variable {var} already assigned"
        self.values[var] = lit_sign_value(lit)
        self.lit_values[lit] = TRUE
        self.lit_values[lit ^ 1] = FALSE
        self.levels[var] = self.decision_level
        self.reasons[var] = reason
        self.trail.append(lit)

    def backtrack(self, level: int) -> List[int]:
        """Undo all assignments above ``level``; returns unassigned literals."""
        if level >= self.decision_level:
            return []
        boundary = self.trail_lim[level]
        undone = self.trail[boundary:]
        lit_values = self.lit_values
        values = self.values
        reasons = self.reasons
        for lit in undone:
            var = lit >> 1
            values[var] = UNASSIGNED
            lit_values[lit] = UNASSIGNED
            lit_values[lit ^ 1] = UNASSIGNED
            reasons[var] = None
        del self.trail[boundary:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))
        return undone

    def model(self) -> List[Optional[bool]]:
        """Current assignment as an optional-bool list indexed by variable."""
        out: List[Optional[bool]] = [None] * (self.num_vars + 1)
        for var in range(1, self.num_vars + 1):
            v = self.values[var]
            if v == TRUE:
                out[var] = True
            elif v == FALSE:
                out[var] = False
        return out

    def reason_literals(self, var: int) -> List[int]:
        """Literals of the clause that implied ``var`` (any order).

        Core-agnostic accessor: callers that only need the reason's
        literal set (e.g. failed-assumption analysis) use this instead
        of dereferencing the reason representation, which differs
        between the object core (clause objects) and the arena core
        (clause ids / encoded binary reasons).
        """
        return self.reasons[var].lits

    def is_reason(self, clause: SolverClause) -> bool:
        """True when ``clause`` currently implies some assigned variable."""
        if not clause.lits:
            return False
        var = variable_of(clause.lits[0])
        return self.values[var] != UNASSIGNED and self.reasons[var] is clause
