"""Decision heuristic: exponential VSIDS with phase saving.

Variables touched by conflict analysis get their activity bumped; the
bump grows geometrically (EVSIDS) so recent conflicts dominate.  The next
decision picks the unassigned variable of maximum activity, assigned with
its last-saved polarity (phase saving), defaulting to *true* like Kissat.

The priority queue is a lazy binary heap: stale entries (outdated
activity or already-assigned variables) are skipped on pop, which keeps
the implementation simple without hurting asymptotics.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.solver.assignment import Trail


class Decider:
    """VSIDS variable order + saved phases."""

    def __init__(
        self,
        trail: Trail,
        decay: float = 0.95,
        initial_phase: bool = True,
    ):
        self.trail = trail
        num_vars = trail.num_vars
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.saved_phase: List[bool] = [initial_phase] * (num_vars + 1)
        self.var_inc: float = 1.0
        self.decay: float = decay
        # Lazy max-heap of (-activity, var); may contain stale entries.
        self._heap: List[tuple] = [(0.0, v) for v in range(1, num_vars + 1)]
        heapq.heapify(self._heap)

    # -- activity -------------------------------------------------------------

    def bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            self._rescale()
        heapq.heappush(self._heap, (-self.activity[var], var))

    def decay_activities(self) -> None:
        """EVSIDS: grow the increment instead of decaying every score."""
        self.var_inc /= self.decay

    def _rescale(self) -> None:
        for v in range(1, len(self.activity)):
            self.activity[v] *= 1e-100
        self.var_inc *= 1e-100
        self._heap = [
            (-self.activity[v], v) for v in range(1, len(self.activity))
        ]
        heapq.heapify(self._heap)

    # -- phases --------------------------------------------------------------

    def save_phase(self, var: int, value: bool) -> None:
        self.saved_phase[var] = value

    def save_trail_phases(self) -> None:
        """Snapshot polarities of everything currently assigned."""
        for lit in self.trail.trail:
            self.saved_phase[lit >> 1] = (lit & 1) == 0

    # -- rephasing -------------------------------------------------------------

    def snapshot_best_phases(self) -> None:
        """Remember the current trail's polarities as the "best" phases.

        The solver calls this whenever the trail reaches a new maximum —
        the assignment that got closest to satisfying everything.
        """
        self._best_phase = list(self.saved_phase)
        for lit in self.trail.trail:
            self._best_phase[lit >> 1] = (lit & 1) == 0

    def rephase(self, style: str, initial_phase: bool = True) -> None:
        """Reset all saved phases (Kissat's rephasing, simplified).

        Styles: ``"original"`` (the configured initial phase),
        ``"inverted"`` (its negation), ``"best"`` (polarities of the
        longest trail seen so far; falls back to original when no
        snapshot exists yet).
        """
        if style == "original":
            value = initial_phase
            self.saved_phase = [value] * len(self.saved_phase)
        elif style == "inverted":
            value = not initial_phase
            self.saved_phase = [value] * len(self.saved_phase)
        elif style == "best":
            best = getattr(self, "_best_phase", None)
            if best is None:
                self.saved_phase = [initial_phase] * len(self.saved_phase)
            else:
                self.saved_phase = list(best)
        else:
            raise ValueError(f"unknown rephase style {style!r}")

    # -- decisions -------------------------------------------------------------

    def requeue(self, var: int) -> None:
        """Re-insert a variable unassigned by backtracking."""
        heapq.heappush(self._heap, (-self.activity[var], var))

    def pick_branch_variable(self) -> Optional[int]:
        """Highest-activity unassigned variable, or None when all assigned.

        Every bump pushes a fresh entry, so the first unassigned variable
        popped carries its maximal recorded activity — stale duplicates
        sort strictly later and are simply skipped when re-encountered.
        """
        # lit_values[var << 1] mirrors the per-variable value and is
        # the one truth array both solver cores maintain.
        lit_values = self.trail.lit_values
        heap = self._heap
        while heap:
            _, var = heapq.heappop(heap)
            if lit_values[var << 1] == -1:  # UNASSIGNED == -1
                return var
        # Heap exhausted (all entries consumed): rebuild from scratch.
        for var in range(1, self.trail.num_vars + 1):
            if lit_values[var << 1] == -1:
                heapq.heappush(heap, (-self.activity[var], var))
                return var
        return None

    def pick_branch_literal(self) -> Optional[int]:
        """Decision literal (internal encoding) honouring the saved phase."""
        var = self.pick_branch_variable()
        if var is None:
            return None
        return 2 * var if self.saved_phase[var] else 2 * var + 1
