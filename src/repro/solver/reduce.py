"""Clause-database reduction (the deletion phase of Figure 2).

Scheduling follows Kissat's shape: a reduction triggers once the number
of conflicts crosses a limit that grows with each round, so reductions
get rarer as the database matures.  At each round:

1. clauses that currently act as reasons on the trail are protected;
2. "non-reducible" learned clauses (glue <= keep_glue) and binaries are
   protected (handled by :meth:`ClauseDatabase.reducible_clauses`);
3. recently *used* clauses (bumped in conflict analysis since the last
   round) get one round of grace and their flag is cleared;
4. the remaining candidates are scored by the active
   :class:`~repro.policies.base.DeletionPolicy` and the lowest-scoring
   ``target_fraction`` are deleted;
5. per-variable propagation-frequency counters reset (Sec. 3.1: "since
   the last deletion").
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.base import DeletionPolicy
from repro.solver.assignment import Trail
from repro.solver.clause_db import ClauseDatabase, SolverClause
from repro.solver.propagate import Propagator
from repro.solver.statistics import SolverStatistics
from repro.solver.watchers import WatchLists


class ReduceScheduler:
    """Decides *when* to reduce and performs the reduction."""

    def __init__(
        self,
        clause_db: ClauseDatabase,
        trail: Trail,
        watches: WatchLists,
        propagator: Propagator,
        stats: SolverStatistics,
        policy: DeletionPolicy,
        interval: int = 300,
        interval_growth: int = 100,
        target_fraction: float = 0.5,
        protect_used: bool = True,
        observer: Optional[Observer] = None,
    ):
        if not 0.0 < target_fraction <= 1.0:
            raise ValueError("target_fraction must be in (0, 1]")
        self.clause_db = clause_db
        self.trail = trail
        self.watches = watches
        self.propagator = propagator
        self.stats = stats
        self.policy = policy
        self.interval = interval
        self.interval_growth = interval_growth
        self.target_fraction = target_fraction
        self.protect_used = protect_used
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._limit = interval
        self._rounds = 0

    def should_reduce(self) -> bool:
        return self.stats.conflicts >= self._limit

    def reduce(self) -> int:
        """Run one reduction round; returns the number of clauses deleted."""
        with self.observer.span("reduce"):
            deleted, candidates = self._reduce()
        self.observer.event(
            "reduce",
            round=self._rounds,
            conflicts=self.stats.conflicts,
            candidates=candidates,
            deleted=deleted,
        )
        return deleted

    def _reduce(self) -> "tuple[int, int]":
        """The reduction round proper: (clauses deleted, candidates seen)."""
        self._rounds += 1
        self._limit = self.stats.conflicts + self.interval + (
            self.interval_growth * self._rounds
        )
        self.stats.reductions += 1

        frequency = self.propagator.frequency
        # O(1): the propagator tracks the running max with every bump.
        max_frequency = self.propagator.max_frequency()
        self.policy.begin_round(frequency, max_frequency)

        candidates: List[SolverClause] = []
        for clause in self.clause_db.reducible_clauses():
            if self.trail.is_reason(clause):
                continue
            if self.protect_used and clause.used:
                clause.used = False  # one round of grace, then fair game
                continue
            candidates.append(clause)

        deleted = 0
        if candidates:
            candidates.sort(
                key=lambda c: self.policy.score(c, frequency, max_frequency)
            )
            num_delete = int(len(candidates) * self.target_fraction)
            for clause in candidates[:num_delete]:
                self.clause_db.mark_garbage(clause)
                deleted += 1
            if deleted:
                # Single-pass sweep over the binary and long watch tables.
                self.watches.detach_garbage()
                self.clause_db.sweep()

        self.stats.deleted_clauses += deleted
        # Eq. (2) counts propagations "since the last clause deletion".
        self.propagator.reset_frequencies()
        return deleted, len(candidates)


class ArenaReduceScheduler(ReduceScheduler):
    """Reduction over the flat arena core (clause ids, not objects).

    Same schedule, protections, policy scoring, and statistics as
    :class:`ReduceScheduler`; the deletion mechanics differ:

    * policies score :class:`~repro.solver.arena.ArenaClauseView`
      proxies, so policy-written state (e.g. the Eq. (2) frequency
      cache) lands in the arena's metadata arrays;
    * instead of a lazy sweep, deletion garbage-collects the arena:
      watchers detach, the arena compacts, and long-watcher offsets are
      relocated with the compaction map;
    * the literals of deleted clauses are captured (in clause-id order)
      in :attr:`last_deleted` *before* compaction invalidates their
      offsets, so the solver can mirror deletions into a DRAT proof.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Literal lists of the clauses deleted by the last round.
        self.last_deleted: List[List[int]] = []

    def _reduce(self) -> "tuple[int, int]":
        self._rounds += 1
        self._limit = self.stats.conflicts + self.interval + (
            self.interval_growth * self._rounds
        )
        self.stats.reductions += 1

        arena = self.clause_db
        frequency = self.propagator.frequency
        max_frequency = self.propagator.max_frequency()
        self.policy.begin_round(frequency, max_frequency)

        used = arena.used
        candidates: List[int] = []
        for cid in arena.reducible_clauses():
            if self.trail.is_reason(cid):
                continue
            if self.protect_used and used[cid]:
                used[cid] = 0  # one round of grace, then fair game
                continue
            candidates.append(cid)

        deleted = 0
        self.last_deleted = []
        if candidates:
            policy = self.policy
            view = arena.view
            candidates.sort(
                key=lambda cid: policy.score(view(cid), frequency, max_frequency)
            )
            num_delete = int(len(candidates) * self.target_fraction)
            doomed = candidates[:num_delete]
            for cid in doomed:
                arena.mark_garbage(cid)
                deleted += 1
            if deleted:
                # Literals must be read out before compaction moves them;
                # id order matches the object core's insertion order.
                self.last_deleted = [
                    arena.literals(cid) for cid in sorted(doomed)
                ]
                self.watches.detach_garbage()
                self.watches.relocate(arena.compact())

        self.stats.deleted_clauses += deleted
        # Eq. (2) counts propagations "since the last clause deletion".
        self.propagator.reset_frequencies()
        return deleted, len(candidates)
