"""VMTF (variable move-to-front) decision heuristic.

Kissat alternates between a score-based heuristic (EVSIDS here) and
VMTF: variables live in a doubly linked queue; variables bumped during
conflict analysis move to the front (stamped with an increasing
timestamp), and decisions pick the unassigned variable closest to the
front.  The "next search" pointer makes consecutive decisions amortized
O(1): it only ever walks left past assigned variables.
"""

from __future__ import annotations

from typing import List, Optional

from repro.solver.assignment import Trail


class VMTFDecider:
    """Move-to-front queue with saved phases (drop-in for Decider)."""

    def __init__(
        self,
        trail: Trail,
        initial_phase: bool = True,
    ):
        self.trail = trail
        num_vars = trail.num_vars
        self.saved_phase: List[bool] = [initial_phase] * (num_vars + 1)
        # Doubly linked list over variables 1..n; 0 is the sentinel "none".
        self._prev: List[int] = [0] * (num_vars + 1)
        self._next: List[int] = [0] * (num_vars + 1)
        self._stamp: List[int] = [0] * (num_vars + 1)
        self._clock = 0
        self._front = 0
        self._back = 0
        # Search pointer: the queue position to start scanning from.
        self._search = 0
        for var in range(1, num_vars + 1):
            self._push_front(var)
        # Activity alias so diagnostics treating deciders uniformly work:
        # a variable's "activity" is its recency stamp.
        self.activity = self._stamp

    # -- linked-list plumbing ------------------------------------------------

    def _push_front(self, var: int) -> None:
        self._clock += 1
        self._stamp[var] = self._clock
        self._prev[var] = 0
        self._next[var] = self._front
        if self._front:
            self._prev[self._front] = var
        self._front = var
        if not self._back:
            self._back = var
        self._search = var  # front is always a fresh search start

    def _unlink(self, var: int) -> None:
        prev_var = self._prev[var]
        next_var = self._next[var]
        if prev_var:
            self._next[prev_var] = next_var
        else:
            self._front = next_var
        if next_var:
            self._prev[next_var] = prev_var
        else:
            self._back = prev_var
        if self._search == var:
            self._search = next_var or self._front

    # -- Decider interface -----------------------------------------------------

    def bump(self, var: int) -> None:
        """Move a conflict variable to the front of the queue."""
        if self._front == var:
            self._clock += 1
            self._stamp[var] = self._clock
            return
        self._unlink(var)
        self._push_front(var)

    def decay_activities(self) -> None:
        """VMTF has no decay; kept for interface compatibility."""

    def requeue(self, var: int) -> None:
        """A variable was unassigned; make sure the search pointer sees it.

        The queue order never changes on backtracking — only the pointer
        may have to move back towards the front."""
        if self._stamp[var] > self._stamp[self._search] or self._search == 0:
            self._search = var

    def save_phase(self, var: int, value: bool) -> None:
        self.saved_phase[var] = value

    def snapshot_best_phases(self) -> None:
        self._best_phase = list(self.saved_phase)
        for lit in self.trail.trail:
            self._best_phase[lit >> 1] = (lit & 1) == 0

    def rephase(self, style: str, initial_phase: bool = True) -> None:
        if style == "original":
            self.saved_phase = [initial_phase] * len(self.saved_phase)
        elif style == "inverted":
            self.saved_phase = [not initial_phase] * len(self.saved_phase)
        elif style == "best":
            best = getattr(self, "_best_phase", None)
            self.saved_phase = (
                list(best) if best is not None
                else [initial_phase] * len(self.saved_phase)
            )
        else:
            raise ValueError(f"unknown rephase style {style!r}")

    def pick_branch_variable(self) -> Optional[int]:
        lit_values = self.trail.lit_values
        var = self._search or self._front
        while var and lit_values[var << 1] != -1:  # UNASSIGNED == -1
            var = self._next[var]
        self._search = var
        return var or None

    def pick_branch_literal(self) -> Optional[int]:
        var = self.pick_branch_variable()
        if var is None:
            return None
        return 2 * var if self.saved_phase[var] else 2 * var + 1
