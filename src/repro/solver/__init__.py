"""CDCL SAT solver substrate (the reproduction's stand-in for Kissat).

A from-scratch conflict-driven clause-learning solver with the features
the paper's deletion-policy experiments depend on: two-watched-literal
propagation with per-variable propagation-frequency counters, 1-UIP
learning with minimization and glue computation, VSIDS decisions with
phase saving, Luby/EMA restarts, Kissat-style tiered clause reduction
driven by a pluggable :class:`~repro.policies.base.DeletionPolicy`, and
DRAT proof logging.
"""

from repro.solver.types import Status, Model, encode, decode, negate, variable_of
from repro.solver.statistics import SolverStatistics
from repro.solver.clause_db import ClauseDatabase, SolverClause
from repro.solver.assignment import Trail
from repro.solver.watchers import WatchLists
from repro.solver.propagate import Propagator
from repro.solver.analyze import ConflictAnalyzer
from repro.solver.arena import (
    ArenaClauseView,
    ArenaConflictAnalyzer,
    ArenaPropagator,
    ArenaTrail,
    ArenaWatchLists,
    ClauseArena,
)
from repro.solver.decide import Decider
from repro.solver.vmtf import VMTFDecider
from repro.solver.restart import LubyRestarts, EMARestarts, luby
from repro.solver.reduce import ArenaReduceScheduler, ReduceScheduler
from repro.solver.proof import ProofLog
from repro.solver.solver import SOLVER_CORES, Solver, SolverConfig, SolveResult, solve
from repro.solver.session import SolverSession, replay_schedule
from repro.solver.reference import brute_force_status, dpll_solve
from repro.solver.drat import check_drat, trim_proof, DratError
from repro.solver.walksat import WalkSAT, WalkSATResult, walksat_phases

__all__ = [
    "Status",
    "Model",
    "encode",
    "decode",
    "negate",
    "variable_of",
    "SolverStatistics",
    "ClauseDatabase",
    "SolverClause",
    "Trail",
    "WatchLists",
    "Propagator",
    "ConflictAnalyzer",
    "ClauseArena",
    "ArenaClauseView",
    "ArenaTrail",
    "ArenaWatchLists",
    "ArenaPropagator",
    "ArenaConflictAnalyzer",
    "ArenaReduceScheduler",
    "Decider",
    "VMTFDecider",
    "LubyRestarts",
    "EMARestarts",
    "luby",
    "ReduceScheduler",
    "ProofLog",
    "Solver",
    "SOLVER_CORES",
    "SolverConfig",
    "SolverSession",
    "SolveResult",
    "replay_schedule",
    "solve",
    "brute_force_status",
    "dpll_solve",
    "check_drat",
    "trim_proof",
    "DratError",
    "WalkSAT",
    "WalkSATResult",
    "walksat_phases",
]
