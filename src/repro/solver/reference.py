"""Reference solvers for differential testing.

Two deliberately simple, obviously-correct procedures used by the test
suite to cross-check the CDCL engine on small instances:

* :func:`brute_force_status` — exhaustive enumeration (<= ~22 variables);
* :func:`dpll_solve` — a plain recursive DPLL with unit propagation,
  usable a bit beyond brute force.

Neither is part of the performance story; both exist so that property
tests can assert the CDCL solver agrees with an independent oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cnf.formula import CNF
from repro.solver.types import Status


def brute_force_status(cnf: CNF, max_vars: int = 22) -> Status:
    """Exhaustively decide satisfiability of a small formula."""
    variables = sorted(cnf.variables())
    if len(variables) > max_vars:
        raise ValueError(f"too many variables for brute force: {len(variables)}")
    if cnf.has_empty_clause():
        return Status.UNSATISFIABLE
    n = len(variables)
    for mask in range(1 << n):
        assignment: List[Optional[bool]] = [None] * (cnf.num_vars + 1)
        for i, var in enumerate(variables):
            assignment[var] = bool(mask >> i & 1)
        if cnf.evaluate(assignment) is True:
            return Status.SATISFIABLE
    return Status.UNSATISFIABLE


def _unit_propagate(
    clauses: List[List[int]], assignment: Dict[int, bool]
) -> Optional[List[List[int]]]:
    """Simplify clauses under ``assignment``; None signals a conflict."""
    changed = True
    clauses = [list(c) for c in clauses]
    while changed:
        changed = False
        next_clauses: List[List[int]] = []
        for clause in clauses:
            satisfied = False
            remaining: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if satisfied:
                continue
            if not remaining:
                return None
            if len(remaining) == 1:
                lit = remaining[0]
                assignment[abs(lit)] = lit > 0
                changed = True
            else:
                next_clauses.append(remaining)
        clauses = next_clauses
    return clauses


def dpll_solve(cnf: CNF) -> Tuple[Status, Optional[List[Optional[bool]]]]:
    """Plain DPLL with unit propagation; returns (status, model)."""
    if cnf.has_empty_clause():
        return Status.UNSATISFIABLE, None

    def recurse(
        clauses: List[List[int]], assignment: Dict[int, bool]
    ) -> Optional[Dict[int, bool]]:
        simplified = _unit_propagate(clauses, assignment)
        if simplified is None:
            return None
        if not simplified:
            return assignment
        # Branch on the first literal of the first clause.
        lit = simplified[0][0]
        for value in (lit > 0, lit < 0):
            trial = dict(assignment)
            trial[abs(lit)] = value
            result = recurse(simplified, trial)
            if result is not None:
                return result
        return None

    raw_clauses = [list(c.literals) for c in cnf.clauses if not c.is_tautology()]
    model_map = recurse(raw_clauses, {})
    if model_map is None:
        return Status.UNSATISFIABLE, None
    model: List[Optional[bool]] = [None] * (cnf.num_vars + 1)
    for var, value in model_map.items():
        model[var] = value
    for var in range(1, cnf.num_vars + 1):
        if model[var] is None:
            model[var] = True
    assert cnf.check_model(model)
    return Status.SATISFIABLE, model
