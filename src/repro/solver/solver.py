"""The CDCL solver: orchestration of all engine components.

Implements the loop of Figure 2: decide -> propagate -> (conflict?
analyze + learn + backjump : extend) with clause deletion, restarts, and
budgets.  The clause-deletion policy is pluggable — exactly the decision
point the paper's selector targets.

Typical use::

    from repro.cnf import random_ksat
    from repro.solver import Solver
    from repro.policies import FrequencyPolicy

    cnf = random_ksat(100, 420, seed=7)
    result = Solver(cnf, policy=FrequencyPolicy()).solve(max_conflicts=50_000)
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cnf.formula import CNF
from repro.obs.metrics import SMALL_COUNT_BUCKETS
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.base import DeletionPolicy
from repro.policies.default_policy import DefaultPolicy
from repro.solver.analyze import ConflictAnalyzer
from repro.solver.arena import (
    ArenaConflictAnalyzer,
    ArenaPropagator,
    ArenaTrail,
    ArenaWatchLists,
    ClauseArena,
)
from repro.solver.assignment import Trail
from repro.solver.clause_db import ClauseDatabase
from repro.solver.decide import Decider
from repro.solver.vmtf import VMTFDecider
from repro.solver.proof import ProofLog
from repro.solver.propagate import Propagator
from repro.solver.reduce import ArenaReduceScheduler, ReduceScheduler
from repro.solver.restart import EMARestarts, LubyRestarts, SwitchingRestarts
from repro.solver.statistics import SolverStatistics
from repro.solver.types import FALSE, TRUE, UNASSIGNED, Model, Status, encode
from repro.solver.watchers import WatchLists

#: The selectable engine representations (see :attr:`SolverConfig.core`).
SOLVER_CORES = ("arena", "object")


@dataclass
class SolverConfig:
    """Tunable solver parameters (defaults follow Kissat's shape)."""

    var_decay: float = 0.95
    clause_decay: float = 0.999
    initial_phase: bool = True
    decision_heuristic: str = "vsids"  # "vsids" | "vmtf"
    restart_mode: str = "luby"  # "luby" | "ema" | "switching" | "none"
    luby_base: int = 100
    keep_glue: int = 2  # learned clauses at/below are non-reducible
    reduce_interval: int = 300
    reduce_interval_growth: int = 100
    reduce_fraction: float = 0.5
    protect_used: bool = True
    # Rephasing: every `rephase_interval` conflicts, reset saved phases,
    # cycling best -> inverted -> best -> original (0 disables).
    rephase_interval: int = 0
    # Engine representation: "arena" (flat int32 clause arena, the
    # default) or "object" (SolverClause graph — the reference
    # implementation, kept as a bisection escape hatch).
    core: str = "arena"

    def __post_init__(self) -> None:
        if self.restart_mode not in ("luby", "ema", "switching", "none"):
            raise ValueError(f"unknown restart mode {self.restart_mode!r}")
        if self.decision_heuristic not in ("vsids", "vmtf"):
            raise ValueError(
                f"unknown decision heuristic {self.decision_heuristic!r}"
            )
        if self.core not in SOLVER_CORES:
            raise ValueError(f"unknown solver core {self.core!r}")


@dataclass
class SolveResult:
    """Outcome of :meth:`Solver.solve`."""

    status: Status
    model: Optional[Model] = None
    stats: SolverStatistics = field(default_factory=SolverStatistics)
    policy_name: str = "default"
    #: For UNSAT-under-assumptions answers: the subset of the assumption
    #: literals (DIMACS encoding) that already suffices for
    #: unsatisfiability.  None for plain UNSAT or non-UNSAT results.
    core: Optional[List[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SATISFIABLE

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSATISFIABLE

    @property
    def is_unknown(self) -> bool:
        return self.status is Status.UNKNOWN


class _NoRestarts:
    """Restart policy stub that never restarts."""

    def on_conflict(self, glue: int) -> None:
        pass

    def should_restart(self) -> bool:
        return False

    def on_restart(self) -> None:
        pass


class Solver:
    """Conflict-driven clause-learning SAT solver with pluggable deletion."""

    def __init__(
        self,
        cnf: CNF,
        policy: Optional[DeletionPolicy] = None,
        config: Optional[SolverConfig] = None,
        proof: Optional[ProofLog] = None,
        observer: Optional[Observer] = None,
    ):
        self.cnf = cnf
        self.config = config or SolverConfig()
        self.policy = policy or DefaultPolicy()
        self.proof = proof
        self.observer = observer if observer is not None else NULL_OBSERVER
        registry = self.observer.registry
        # Kept as None when metrics are off so _install_learned pays a
        # single identity check per learned clause, nothing more.
        self._glue_hist = (
            registry.histogram("solver.learned_glue", SMALL_COUNT_BUCKETS)
            if registry.enabled
            else None
        )

        num_vars = cnf.num_vars
        self.stats = SolverStatistics()
        # Engine core: both representations expose the same component
        # protocol (add_original/add_learned/attach return and accept
        # clause references — objects for one core, ids for the other),
        # so everything below this block is representation-agnostic.
        self._arena_core = self.config.core == "arena"
        metrics = registry if registry.enabled else None
        if self._arena_core:
            self.clause_db = ClauseArena(keep_glue=self.config.keep_glue)
            self.clause_db.clause_decay = self.config.clause_decay
            self.trail = ArenaTrail(num_vars, self.clause_db)
            self.watches = ArenaWatchLists(num_vars, self.clause_db)
            self.propagator = ArenaPropagator(
                self.trail, self.watches, self.stats, metrics=metrics
            )
        else:
            self.trail = Trail(num_vars)
            self.watches = WatchLists(num_vars)
            self.clause_db = ClauseDatabase(keep_glue=self.config.keep_glue)
            self.clause_db.clause_decay = self.config.clause_decay
            self.propagator = Propagator(
                self.trail, self.watches, self.stats, metrics=metrics
            )
        if self.config.decision_heuristic == "vmtf":
            self.decider = VMTFDecider(
                self.trail, initial_phase=self.config.initial_phase
            )
        else:
            self.decider = Decider(
                self.trail,
                decay=self.config.var_decay,
                initial_phase=self.config.initial_phase,
            )
        analyzer_cls = (
            ArenaConflictAnalyzer if self._arena_core else ConflictAnalyzer
        )
        self.analyzer = analyzer_cls(
            self.trail, self.clause_db, self.stats, self.decider.bump
        )
        reducer_cls = (
            ArenaReduceScheduler if self._arena_core else ReduceScheduler
        )
        self.reducer = reducer_cls(
            self.clause_db,
            self.trail,
            self.watches,
            self.propagator,
            self.stats,
            self.policy,
            interval=self.config.reduce_interval,
            interval_growth=self.config.reduce_interval_growth,
            target_fraction=self.config.reduce_fraction,
            protect_used=self.config.protect_used,
            observer=self.observer,
        )
        if self.config.restart_mode == "luby":
            self.restarts = LubyRestarts(base=self.config.luby_base)
        elif self.config.restart_mode == "ema":
            self.restarts = EMARestarts()
        elif self.config.restart_mode == "switching":
            self.restarts = SwitchingRestarts(
                luby_base=self.config.luby_base,
                on_switch=self._on_mode_switch
                if self.observer.tracing
                else None,
            )
        else:
            self.restarts = _NoRestarts()
        self._rephase_limit = self.config.rephase_interval or 0
        self._rephase_cycle = 0

        # True once the formula is known UNSAT regardless of assumptions.
        self._inconsistent = False
        # Copy-on-write flag: the caller's CNF is never mutated by
        # incremental add_clause.
        self._owns_cnf = False
        self._ingest_clauses()

    # -- setup -------------------------------------------------------------

    def _ingest_clauses(self) -> None:
        """Load original clauses: dedupe literals, drop tautologies,
        enqueue units at level 0, and detect the empty clause."""
        for clause in self.cnf.clauses:
            if clause.is_tautology():
                continue
            lits = [encode(lit) for lit in clause.literals]
            if not lits:
                self._mark_inconsistent()
                return
            if len(lits) == 1:
                value = self.trail.value_lit(lits[0])
                if value == FALSE:
                    self._mark_inconsistent()
                    return
                if value == UNASSIGNED:
                    self.trail.assign(lits[0], None)
                continue
            solver_clause = self.clause_db.add_original(lits)
            self.watches.attach(solver_clause)

    def _mark_inconsistent(self) -> None:
        """Record global unsatisfiability, emitting the proof's empty clause."""
        if not self._inconsistent:
            self._inconsistent = True
            if self.proof is not None:
                self.proof.add_empty_clause()

    # -- incremental interface -----------------------------------------------

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause between ``solve()`` calls (incremental solving).

        Literals use DIMACS encoding and must stay within the variable
        range fixed at construction.  Learned clauses and heuristic state
        survive, so repeated solve/add cycles amortize earlier work.  The
        solver keeps its own copy of the formula: the ``CNF`` passed to
        the constructor is never mutated.
        """
        clause_lits = []
        seen = set()
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise ValueError("0 is not a literal")
            if abs(lit) > self.trail.num_vars:
                raise ValueError(
                    f"variable {abs(lit)} exceeds the solver's range "
                    f"({self.trail.num_vars}); declare all variables up front"
                )
            if lit not in seen:
                seen.add(lit)
                clause_lits.append(lit)
        if not self._owns_cnf:
            self.cnf = self.cnf.copy()
            self._owns_cnf = True
        self.cnf.add_clause(clause_lits)

        if any(-lit in seen for lit in seen):
            return  # tautology: no effect
        self._backtrack(0)
        encoded = [encode(lit) for lit in clause_lits]
        if not encoded:
            self._mark_inconsistent()
            return
        # Drop level-0-false literals; detect satisfaction at level 0.
        remaining = []
        for lit in encoded:
            value = self.trail.value_lit(lit)
            if value == TRUE:
                return  # already satisfied forever
            if value == UNASSIGNED:
                remaining.append(lit)
        if not remaining:
            self._mark_inconsistent()
            return
        if len(remaining) == 1:
            self.trail.assign(remaining[0], None)
            if self.propagator.propagate() is not None:
                self._mark_inconsistent()
            return
        solver_clause = self.clause_db.add_original(remaining)
        self.watches.attach(solver_clause)

    # -- learned clause installation ------------------------------------------

    def _on_mode_switch(self, switches: int, mode: str) -> None:
        """Trace callback for :class:`SwitchingRestarts` mode changes."""
        self.observer.event(
            "mode-switch",
            switches=switches,
            mode=mode,
            conflicts=self.stats.conflicts,
        )

    def _install_learned(self, lits: List[int], glue: int) -> None:
        """Attach a learned clause and assert its first literal."""
        self.stats.learned_clauses += 1
        self.stats.learned_literals += len(lits)
        self.stats.glue_sum += glue
        if self._glue_hist is not None:
            self._glue_hist.observe(glue)
        if self.proof is not None:
            self.proof.add_clause(lits)
        if len(lits) == 1:
            self.trail.assign(lits[0], None)
            return
        clause = self.clause_db.add_learned(lits, glue)
        self.watches.attach(clause)
        self.trail.assign(lits[0], clause)

    def _backtrack(self, level: int) -> None:
        """Backtrack with phase saving and decision-queue maintenance."""
        undone = self.trail.backtrack(level)
        saved = self.decider.saved_phase
        requeue = self.decider.requeue
        for lit in undone:
            var = lit >> 1
            saved[var] = (lit & 1) == 0
            requeue(var)

    # -- main loop ----------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        max_propagations: Optional[int] = None,
        max_decisions: Optional[int] = None,
    ) -> SolveResult:
        """Run CDCL search until SAT, UNSAT, or a budget is exhausted.

        ``assumptions`` are DIMACS literals decided first (in order); an
        UNSAT answer then means "unsatisfiable under these assumptions".
        Budgets are absolute counter values, making repeated calls with
        the same limits idempotent in effort.

        With a live observer the call is bracketed by ``solve-start`` /
        ``solve-end`` events (the latter carrying wall-clock time and
        the full statistics snapshot); the disabled path costs exactly
        one extra method call and one attribute check.
        """
        observer = self.observer
        if not observer.enabled:
            return self._solve(
                assumptions, max_conflicts, max_propagations, max_decisions
            )
        observer.event(
            "solve-start",
            policy=self.policy.name,
            num_vars=self.cnf.num_vars,
            num_clauses=len(self.cnf.clauses),
            assumptions=len(assumptions),
        )
        start = time.perf_counter()
        with observer.span("solve"):
            result = self._solve(
                assumptions, max_conflicts, max_propagations, max_decisions
            )
        observer.event(
            "solve-end",
            status=result.status.name,
            policy=result.policy_name,
            wall_seconds=round(time.perf_counter() - start, 6),
            stats=result.stats.to_dict(),
        )
        observer.flush()
        return result

    def _solve(
        self,
        assumptions: Sequence[int],
        max_conflicts: Optional[int],
        max_propagations: Optional[int],
        max_decisions: Optional[int],
    ) -> SolveResult:
        """The CDCL loop proper (see :meth:`solve`)."""
        if self._inconsistent:
            return self._result(Status.UNSATISFIABLE)
        # Incremental reuse: drop any search state left by a previous call
        # (level-0 assignments and learned clauses are kept — they are
        # consequences of the formula, not of old assumptions).
        self._backtrack(0)
        assumed = [encode(lit) for lit in assumptions]
        for lit in assumed:
            if (lit >> 1) > self.trail.num_vars:
                raise ValueError(f"assumption on unknown variable {lit >> 1}")

        # Level-0 closure of the original units.
        conflict = self.propagator.propagate()
        if conflict is not None:
            self._mark_inconsistent()
            return self._result(Status.UNSATISFIABLE)

        while True:
            conflict = self.propagator.propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if self.trail.decision_level == 0:
                    self._mark_inconsistent()
                    return self._result(Status.UNSATISFIABLE)
                learned, backjump, glue = self.analyzer.analyze(conflict)
                self.restarts.on_conflict(glue)
                self._backtrack(backjump)
                self._install_learned(learned, glue)
                self.decider.decay_activities()
                self.clause_db.decay_clause_activities()
                continue

            if self._budget_exhausted(max_conflicts, max_propagations, max_decisions):
                return self._result(Status.UNKNOWN)

            if self.reducer.should_reduce():
                self._delete_with_proof(self.reducer.reduce)

            if self.restarts.should_restart() and self.trail.decision_level > 0:
                self.stats.restarts += 1
                self.restarts.on_restart()
                self._backtrack(0)
                self.observer.event(
                    "restart",
                    restarts=self.stats.restarts,
                    conflicts=self.stats.conflicts,
                )
                continue

            # Re-decide any assumption not yet on the trail.
            decision = self._next_assumption(assumed)
            if decision == -1:
                failed = next(
                    lit for lit in assumed if self.trail.value_lit(lit) == FALSE
                )
                core = self._analyze_final(failed, assumed)
                result = self._result(Status.UNSATISFIABLE)
                result.core = core
                return result
            if decision is None:
                decision = self.decider.pick_branch_literal()
                if decision is None:
                    return self._sat_result()
            self.stats.decisions += 1
            self.trail.new_decision_level()
            self.trail.assign(decision, None)
            if len(self.trail.trail) > self.stats.max_trail:
                self.stats.max_trail = len(self.trail.trail)
                self.decider.snapshot_best_phases()
            self._maybe_rephase()

    def _analyze_final(self, failed_lit: int, assumed: List[int]) -> List[int]:
        """Compute a failed-assumption core (MiniSat's ``analyzeFinal``).

        ``failed_lit`` is an assumption literal currently assigned false.
        Walking the implication graph from it back to decisions yields
        the subset of assumptions whose conjunction is already
        unsatisfiable with the formula.  Level-0 assignments are formula
        consequences and never enter the core.
        """
        from repro.solver.types import decode

        assumed_set = set(assumed)
        core = [decode(failed_lit)]
        seen = [False] * (self.trail.num_vars + 1)
        seen[failed_lit >> 1] = True
        # Walk the trail backwards, expanding reasons of marked variables.
        for lit in reversed(self.trail.trail):
            var = lit >> 1
            if not seen[var]:
                continue
            if self.trail.levels[var] == 0:
                continue
            reason = self.trail.reasons[var]
            if reason is None:
                # A decision: by construction only assumptions are decided
                # while an assumption is still unassigned.
                if lit in assumed_set or (lit ^ 1) in assumed_set:
                    core.append(decode(lit if lit in assumed_set else lit ^ 1))
                continue
            for other in self.trail.reason_literals(var):
                seen[other >> 1] = True
        return core

    def _maybe_rephase(self) -> None:
        """Periodically reset saved phases (Kissat's rephasing)."""
        if not self.config.rephase_interval:
            return
        if self.stats.conflicts < self._rephase_limit:
            return
        self._rephase_limit = self.stats.conflicts + self.config.rephase_interval
        styles = ("best", "inverted", "best", "original")
        style = styles[self._rephase_cycle % len(styles)]
        self._rephase_cycle += 1
        self.decider.rephase(style, initial_phase=self.config.initial_phase)
        self.stats.rephases += 1
        self.observer.event(
            "rephase", style=style, conflicts=self.stats.conflicts
        )

    def _next_assumption(self, assumed: List[int]) -> Optional[int]:
        """Next unsatisfied assumption literal; -1 when one is falsified."""
        for lit in assumed:
            value = self.trail.value_lit(lit)
            if value == FALSE:
                return -1
            if value == UNASSIGNED:
                return lit
        return None

    def _delete_with_proof(self, reduce_fn) -> None:
        """Run a reduction, mirroring deletions into the DRAT log."""
        if self.proof is None:
            reduce_fn()
            return
        if self._arena_core:
            # Compaction invalidates deleted clauses' offsets, so the
            # reducer snapshots their literals (in clause-id order, the
            # same order the object diff below produces).
            reduce_fn()
            for lits in self.reducer.last_deleted:
                self.proof.delete_clause(lits)
            return
        live_before = {id(c): c for c in self.clause_db.live_learned()}
        reduce_fn()
        live_after = {id(c) for c in self.clause_db.live_learned()}
        for cid, clause in live_before.items():
            if cid not in live_after:
                self.proof.delete_clause(clause.lits)

    def _budget_exhausted(
        self,
        max_conflicts: Optional[int],
        max_propagations: Optional[int],
        max_decisions: Optional[int],
    ) -> bool:
        if max_conflicts is not None and self.stats.conflicts >= max_conflicts:
            return True
        if max_propagations is not None and self.stats.propagations >= max_propagations:
            return True
        if max_decisions is not None and self.stats.decisions >= max_decisions:
            return True
        return False

    def _sat_result(self) -> SolveResult:
        model = self.trail.model()
        # Unconstrained variables default to the configured phase.
        for var in range(1, self.trail.num_vars + 1):
            if model[var] is None:
                model[var] = self.config.initial_phase
        assert self.cnf.check_model(model), "internal error: bogus model"
        return SolveResult(
            status=Status.SATISFIABLE,
            model=model,
            stats=self.stats,
            policy_name=self.policy.name,
        )

    def _result(self, status: Status) -> SolveResult:
        return SolveResult(
            status=status,
            model=None,
            stats=self.stats,
            policy_name=self.policy.name,
        )


def solve(
    cnf: CNF,
    policy: Optional[DeletionPolicy] = None,
    config: Optional[SolverConfig] = None,
    observer: Optional[Observer] = None,
    **budgets: Optional[int],
) -> SolveResult:
    """One-shot convenience wrapper around :class:`Solver`."""
    return Solver(
        cnf, policy=policy, config=config, observer=observer
    ).solve(**budgets)
