"""WalkSAT local search.

An incomplete stochastic solver: start from a random assignment and
repeatedly repair an unsatisfied clause by flipping one of its
variables — either the "greedy" choice (minimal break count, the number
of currently satisfied clauses the flip would falsify) or, with
probability ``noise``, a uniformly random one.

Two roles here:

* a standalone incomplete solver (finds models of satisfiable
  instances quickly, never proves UNSAT) — the regime of the local
  search solvers the paper cites (e.g. NLocalSAT);
* a phase source: the best assignment found can seed the CDCL solver's
  saved phases (``Decider.save_phase``), the "walking" flavour of
  Kissat's rephasing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cnf.formula import CNF


@dataclass
class WalkSATResult:
    """Outcome of a WalkSAT run."""

    satisfied: bool
    model: Optional[List[Optional[bool]]]
    best_assignment: List[bool]  # best (fewest unsatisfied) seen, 1-indexed tail
    best_unsatisfied: int
    flips: int

    @property
    def phases(self) -> List[bool]:
        """Best assignment as a phase vector (index 0 unused)."""
        return self.best_assignment


class WalkSAT:
    """Configurable WalkSAT engine over one formula."""

    def __init__(self, cnf: CNF, noise: float = 0.5, seed: int = 0):
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.cnf = cnf
        self.noise = noise
        self.rng = random.Random(seed)
        self.clauses: List[Tuple[int, ...]] = [
            c.literals for c in cnf.clauses if not c.is_tautology()
        ]
        self.num_vars = cnf.num_vars
        # Occurrence lists: for each literal, clauses containing it.
        self.occurrences: List[List[int]] = [[] for _ in range(2 * (cnf.num_vars + 1))]
        for idx, clause in enumerate(self.clauses):
            for lit in clause:
                self.occurrences[_code(lit)].append(idx)

    # -- state helpers -----------------------------------------------------

    def _true_counts(self, assignment: List[bool]) -> List[int]:
        counts = []
        for clause in self.clauses:
            counts.append(
                sum(1 for lit in clause if assignment[abs(lit)] == (lit > 0))
            )
        return counts

    def _break_count(
        self, var: int, assignment: List[bool], true_counts: List[int]
    ) -> int:
        """Clauses that would become unsatisfied by flipping ``var``."""
        # Clauses currently satisfied only by var's literal break.
        lit = var if assignment[var] else -var
        return sum(1 for idx in self.occurrences[_code(lit)] if true_counts[idx] == 1)

    def _flip(
        self, var: int, assignment: List[bool], true_counts: List[int]
    ) -> None:
        old_lit = var if assignment[var] else -var
        assignment[var] = not assignment[var]
        for idx in self.occurrences[_code(old_lit)]:
            true_counts[idx] -= 1
        new_lit = var if assignment[var] else -var
        for idx in self.occurrences[_code(new_lit)]:
            true_counts[idx] += 1

    # -- search ---------------------------------------------------------------

    def solve(self, max_flips: int = 100_000, restarts: int = 1) -> WalkSATResult:
        """Run local search; returns the best assignment found."""
        if any(not c for c in self.clauses):
            return WalkSATResult(False, None, [True] * (self.num_vars + 1), len(self.clauses), 0)
        best_assignment = [True] * (self.num_vars + 1)
        best_unsat = len(self.clauses) + 1
        total_flips = 0

        for _ in range(max(1, restarts)):
            assignment = [True] + [
                self.rng.random() < 0.5 for _ in range(self.num_vars)
            ]
            true_counts = self._true_counts(assignment)
            for _ in range(max_flips):
                unsatisfied = [i for i, c in enumerate(true_counts) if c == 0]
                if len(unsatisfied) < best_unsat:
                    best_unsat = len(unsatisfied)
                    best_assignment = list(assignment)
                if not unsatisfied:
                    model: List[Optional[bool]] = [None] + assignment[1:]
                    assert self.cnf.check_model(model)
                    return WalkSATResult(
                        True, model, list(assignment), 0, total_flips
                    )
                clause = self.clauses[self.rng.choice(unsatisfied)]
                variables = [abs(lit) for lit in clause]
                if self.rng.random() < self.noise:
                    var = self.rng.choice(variables)
                else:
                    var = min(
                        variables,
                        key=lambda v: self._break_count(v, assignment, true_counts),
                    )
                self._flip(var, assignment, true_counts)
                total_flips += 1

        return WalkSATResult(False, None, best_assignment, best_unsat, total_flips)


def _code(lit: int) -> int:
    """Literal -> occurrence-list index (positive 2v, negative 2v+1)."""
    var = abs(lit)
    return 2 * var + (0 if lit > 0 else 1)


def walksat_phases(cnf: CNF, max_flips: int = 20_000, seed: int = 0) -> List[bool]:
    """Best local-search assignment, as a phase vector for CDCL seeding."""
    result = WalkSAT(cnf, seed=seed).solve(max_flips=max_flips)
    return result.phases
