"""DRAT proof logging.

Records every learned-clause addition and every clause deletion in the
DRAT format accepted by standard proof checkers (``drat-trim``).  The
solver emits additions as the clause is learned and deletions as clauses
are garbage-collected, so an UNSAT answer comes with a checkable
certificate — the completeness property the paper stresses that
end-to-end neural solvers lack.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.solver.types import decode


class ProofLog:
    """In-memory or file-backed DRAT trace."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self._buffer: Optional[io.StringIO]
        self._file = None
        if path is None:
            self._buffer = io.StringIO()
        else:
            self._buffer = None
            self._file = open(path, "w")
        self.additions = 0
        self.deletions = 0

    def _write(self, line: str) -> None:
        if self._buffer is not None:
            self._buffer.write(line)
        else:
            assert self._file is not None
            self._file.write(line)

    def add_clause(self, internal_lits: Iterable[int]) -> None:
        """Log a learned clause (internal literal encoding)."""
        lits = " ".join(str(decode(lit)) for lit in internal_lits)
        self._write(f"{lits} 0\n" if lits else "0\n")
        self.additions += 1

    def delete_clause(self, internal_lits: Iterable[int]) -> None:
        """Log a clause deletion."""
        lits = " ".join(str(decode(lit)) for lit in internal_lits)
        self._write(f"d {lits} 0\n")
        self.deletions += 1

    def add_empty_clause(self) -> None:
        """Log the final empty clause terminating an UNSAT proof."""
        self._write("0\n")
        self.additions += 1

    def text(self) -> str:
        """The proof so far (in-memory logs only)."""
        if self._buffer is None:
            raise RuntimeError("proof is file-backed; read the file instead")
        return self._buffer.getvalue()

    def lines(self) -> List[str]:
        return [line for line in self.text().splitlines() if line]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ProofLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
