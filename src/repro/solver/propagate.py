"""Boolean constraint propagation with propagation-frequency tracking.

Besides standard two-watched-literal unit propagation, the propagator
maintains the per-variable *propagation frequency* counters at the heart
of the paper's new deletion metric (Section 3): ``frequency[v]`` counts
how many times variable ``v`` was assigned by unit propagation since the
last clause-deletion round.  The paper describes ``f_v`` as "the frequency
of variable v used to trigger propagation since the last clause deletion";
every propagated assignment is simultaneously the result of one
propagation step and the trigger of subsequent ones, so counting
propagated assignments realizes the metric (and directly reproduces the
skewed distribution of Figure 3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.solver.assignment import Trail
from repro.solver.clause_db import SolverClause
from repro.solver.statistics import SolverStatistics
from repro.solver.types import TRUE, UNASSIGNED
from repro.solver.watchers import WatchLists


class Propagator:
    """Unit-propagation engine over a trail and watch lists."""

    def __init__(
        self,
        trail: Trail,
        watches: WatchLists,
        stats: SolverStatistics,
    ):
        self.trail = trail
        self.watches = watches
        self.stats = stats
        # Per-variable propagation counters since the last reduce (Eq. 2 input).
        self.frequency: List[int] = [0] * (trail.num_vars + 1)
        # Lifetime counters, never reset: used for Figure 3.
        self.lifetime_frequency: List[int] = [0] * (trail.num_vars + 1)

    def reset_frequencies(self) -> None:
        """Called at every clause-deletion round ("since the last deletion")."""
        for i in range(len(self.frequency)):
            self.frequency[i] = 0

    def max_frequency(self) -> int:
        return max(self.frequency) if self.frequency else 0

    def _record_propagation(self, var: int) -> None:
        self.frequency[var] += 1
        self.lifetime_frequency[var] += 1
        self.stats.propagations += 1

    def propagate(self) -> Optional[SolverClause]:
        """Propagate all queued assignments; returns a conflict clause or None."""
        trail = self.trail
        values = trail.values
        watches = self.watches.watches

        while trail.qhead < len(trail.trail):
            lit = trail.trail[trail.qhead]
            trail.qhead += 1
            false_lit = lit ^ 1
            watchers = watches[false_lit]
            i = 0
            j = 0
            n = len(watchers)
            conflict: Optional[SolverClause] = None
            while i < n:
                clause = watchers[i]
                i += 1
                if clause.garbage:
                    continue  # dropped lazily
                lits = clause.lits
                # Normalize: watched false literal at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                v0 = values[first >> 1]
                if v0 != UNASSIGNED and (v0 ^ (first & 1)) == TRUE:
                    # Clause already satisfied by the other watch.
                    watchers[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(lits)):
                    candidate = lits[k]
                    vk = values[candidate >> 1]
                    if vk == UNASSIGNED or (vk ^ (candidate & 1)) == TRUE:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches[candidate].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # No replacement: clause is unit or conflicting on lits[0].
                watchers[j] = clause
                j += 1
                if v0 == UNASSIGNED:
                    trail.assign(first, clause)
                    self._record_propagation(first >> 1)
                else:
                    # lits[0] is false: conflict.  Keep remaining watchers.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    conflict = clause
            del watchers[j:]
            if conflict is not None:
                trail.qhead = len(trail.trail)
                return conflict
        return None
