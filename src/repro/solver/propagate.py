"""Boolean constraint propagation with propagation-frequency tracking.

Besides standard two-watched-literal unit propagation, the propagator
maintains the per-variable *propagation frequency* counters at the heart
of the paper's new deletion metric (Section 3): ``frequency[v]`` counts
how many times variable ``v`` was assigned by unit propagation since the
last clause-deletion round.  The paper describes ``f_v`` as "the frequency
of variable v used to trigger propagation since the last clause deletion";
every propagated assignment is simultaneously the result of one
propagation step and the trigger of subsequent ones, so counting
propagated assignments realizes the metric (and directly reproduces the
skewed distribution of Figure 3).

The inner loop is the solver's hottest code and is written accordingly:

* **binary fast path** — implications from binary clauses are decided
  from the watcher record alone (``(other, clause)``), never touching
  ``clause.lits``;
* **blocking literals** — long-clause watchers carry a cached literal of
  the clause; when it is already true the clause is skipped without a
  single attribute access on the clause object;
* frequency counting is a bare array bump with a running maximum, so
  :meth:`max_frequency` is O(1) at every reduction round;
* trail bookkeeping (``values``/``levels``/``reasons``/``trail``) is
  inlined rather than calling :meth:`Trail.assign` per implication.

Contract: the watch lists contain **no garbage clauses** when
``propagate`` runs.  Deleting code must call
:meth:`~repro.solver.watchers.WatchLists.detach_garbage` before the next
propagation (``ReduceScheduler.reduce`` does), which lets the inner loop
skip a per-watcher ``clause.garbage`` attribute load.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import BATCH_BUCKETS, MetricsRegistry
from repro.solver.assignment import Trail
from repro.solver.clause_db import SolverClause
from repro.solver.statistics import SolverStatistics
from repro.solver.watchers import WatchLists


class Propagator:
    """Unit-propagation engine over a trail and watch lists."""

    def __init__(
        self,
        trail: Trail,
        watches: WatchLists,
        stats: SolverStatistics,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.trail = trail
        self.watches = watches
        self.stats = stats
        # Per-variable propagation counters since the last reduce (Eq. 2 input).
        self.frequency: List[int] = [0] * (trail.num_vars + 1)
        # Lifetime counters folded in at every reset; see lifetime_frequency.
        self._lifetime_base: List[int] = [0] * (trail.num_vars + 1)
        # Running max of ``frequency``, kept in sync by every bump.
        self._max_frequency: int = 0
        # Observability stays entirely off the inner loop: the only hook
        # is one histogram observation per propagate() *call* (the BCP
        # batch size), and with metrics disabled even that collapses to
        # a single None check in _flush.
        if metrics is not None and metrics.enabled:
            self._batch_hist = metrics.histogram("bcp.batch_size", BATCH_BUCKETS)
        else:
            self._batch_hist = None

    @property
    def lifetime_frequency(self) -> List[int]:
        """Lifetime propagation counters, never reset: used for Figure 3.

        Derived as the counters folded at past resets plus the live
        window, so the hot loop maintains one array instead of two.
        """
        return [
            base + live
            for base, live in zip(self._lifetime_base, self.frequency)
        ]

    def reset_frequencies(self) -> None:
        """Called at every clause-deletion round ("since the last deletion")."""
        base = self._lifetime_base
        for var, count in enumerate(self.frequency):
            if count:
                base[var] += count
        self.frequency[:] = [0] * len(self.frequency)
        self._max_frequency = 0

    def max_frequency(self) -> int:
        """Largest per-variable counter, tracked incrementally (O(1))."""
        return self._max_frequency

    def bump_frequency(self, var: int, count: int = 1) -> None:
        """Externally credit ``var`` with propagations (tests, replay tools).

        Keeps the running maximum consistent, which a direct write to
        :attr:`frequency` would not.
        """
        value = self.frequency[var] + count
        self.frequency[var] = value
        if value > self._max_frequency:
            self._max_frequency = value

    def _record_propagation(self, var: int) -> None:
        value = self.frequency[var] + 1
        self.frequency[var] = value
        if value > self._max_frequency:
            self._max_frequency = value
        self.stats.propagations += 1

    def propagate(self) -> Optional[SolverClause]:
        """Propagate all queued assignments; returns a conflict clause or None.

        Hot path: every name used inside the loops is a local, trail
        updates are inlined, and statistics are flushed once on exit.
        """
        trail = self.trail
        values = trail.values
        lit_values = trail.lit_values
        levels = trail.levels
        reasons = trail.reasons
        trail_list = trail.trail
        watches = self.watches.watches
        binary = self.watches.binary
        frequency = self.frequency
        level = trail.decision_level
        maxf = self._max_frequency
        propagated = 0
        qhead = trail.qhead
        ntrail = len(trail_list)

        while qhead < ntrail:
            lit = trail_list[qhead]
            qhead += 1
            false_lit = lit ^ 1

            # -- binary fast path: the record alone decides the implication.
            for other, clause in binary[false_lit]:
                v = lit_values[other]
                if v > 0:  # TRUE: clause satisfied
                    continue
                if v == 0:  # FALSE on both literals: conflict
                    trail.qhead = ntrail
                    self._flush(propagated, maxf)
                    return clause
                # Implication: assign ``other`` with this clause as reason.
                lits = clause.lits
                if lits[0] != other:
                    # Conflict analysis expects the implied literal first.
                    lits[0], lits[1] = lits[1], lits[0]
                var = other >> 1
                values[var] = (other & 1) ^ 1
                lit_values[other] = 1
                lit_values[other ^ 1] = 0
                levels[var] = level
                reasons[var] = clause
                trail_list.append(other)
                ntrail += 1
                value = frequency[var] + 1
                frequency[var] = value
                if value > maxf:
                    maxf = value
                propagated += 1

            # -- long clauses: blocking literal, then watch relocation.
            #
            # Two-phase scan.  Records are mutable and updated in place,
            # so until a relocation removes one there is no hole and the
            # kept records need no compaction writes at all.  Phase 1
            # scans write-free; the first relocation leaves a hole at
            # ``i`` and falls through to the compacting phase 2 (the
            # classic ``watchers[j] = record`` loop).
            watchers = watches[false_lit]
            i = 0
            n = len(watchers)
            conflict: Optional[SolverClause] = None
            hole = -1
            while i < n:
                record = watchers[i]
                if lit_values[record[0]] > 0:
                    # Blocker true: clause satisfied, never dereferenced.
                    i += 1
                    continue
                clause = record[1]
                lits = clause.lits
                # Normalize: watched false literal at position 1.
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                v0 = lit_values[first]
                if v0 > 0:
                    # Satisfied by the other watch: cache it as the blocker.
                    record[0] = first
                    i += 1
                    continue
                # Look for a new literal to watch.  The third literal is
                # probed directly first: for ternary clauses (the common
                # case) this settles relocation without a range object.
                candidate = lits[2]
                if lit_values[candidate] != 0:  # true or unassigned
                    lits[1] = candidate
                    lits[2] = false_lit
                    record[0] = first
                    watches[candidate].append(record)
                    hole = i
                    i += 1
                    break
                moved = False
                for k in range(3, len(lits)):
                    candidate = lits[k]
                    if lit_values[candidate] != 0:
                        lits[1] = candidate
                        lits[k] = false_lit
                        record[0] = first
                        watches[candidate].append(record)
                        moved = True
                        break
                if moved:
                    hole = i
                    i += 1
                    break
                # No replacement: clause is unit or conflicting on lits[0].
                record[0] = first
                i += 1
                if v0 < 0:  # UNASSIGNED: implication
                    var = first >> 1
                    values[var] = (first & 1) ^ 1
                    lit_values[first] = 1
                    lit_values[first ^ 1] = 0
                    levels[var] = level
                    reasons[var] = clause
                    trail_list.append(first)
                    ntrail += 1
                    value = frequency[var] + 1
                    frequency[var] = value
                    if value > maxf:
                        maxf = value
                    propagated += 1
                else:
                    # lits[0] is false: conflict; every record was kept.
                    trail.qhead = ntrail
                    self._flush(propagated, maxf)
                    return clause
            if hole < 0:
                continue  # phase 1 kept everything: list untouched
            j = hole
            while i < n:
                record = watchers[i]
                i += 1
                if lit_values[record[0]] > 0:
                    watchers[j] = record
                    j += 1
                    continue
                clause = record[1]
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                v0 = lit_values[first]
                if v0 > 0:
                    record[0] = first
                    watchers[j] = record
                    j += 1
                    continue
                candidate = lits[2]
                if lit_values[candidate] != 0:
                    lits[1] = candidate
                    lits[2] = false_lit
                    record[0] = first
                    watches[candidate].append(record)
                    continue
                moved = False
                for k in range(3, len(lits)):
                    candidate = lits[k]
                    if lit_values[candidate] != 0:
                        lits[1] = candidate
                        lits[k] = false_lit
                        record[0] = first
                        watches[candidate].append(record)
                        moved = True
                        break
                if moved:
                    continue
                record[0] = first
                watchers[j] = record
                j += 1
                if v0 < 0:  # UNASSIGNED: implication
                    var = first >> 1
                    values[var] = (first & 1) ^ 1
                    lit_values[first] = 1
                    lit_values[first ^ 1] = 0
                    levels[var] = level
                    reasons[var] = clause
                    trail_list.append(first)
                    ntrail += 1
                    value = frequency[var] + 1
                    frequency[var] = value
                    if value > maxf:
                        maxf = value
                    propagated += 1
                else:
                    # lits[0] is false: conflict.  Keep remaining watchers.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    conflict = clause
            del watchers[j:]
            if conflict is not None:
                trail.qhead = ntrail
                self._flush(propagated, maxf)
                return conflict

        trail.qhead = qhead
        self._flush(propagated, maxf)
        return None

    def _flush(self, propagated: int, maxf: int) -> None:
        """Write loop-local counters back to shared state."""
        self._max_frequency = maxf
        self.stats.propagations += propagated
        self.stats.bcp_rounds += 1
        if self._batch_hist is not None:
            self._batch_hist.observe(propagated)
