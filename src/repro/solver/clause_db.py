"""Clause database: solver-internal clauses and their lifecycle.

Mirrors Kissat's split between *irredundant* clauses (the original
problem) and *redundant* (learned) clauses.  Learned clauses carry the
metadata every deletion policy scores on: glue (LBD), size, activity, and
a ``used`` flag set whenever the clause participates in conflict analysis.
Learned clauses with glue at or below ``keep_glue`` are "non-reducible" in
Kissat's terminology — they are never candidates for deletion.
"""

from __future__ import annotations

from typing import Iterator, List


class SolverClause:
    """A clause inside the solver, with literals in internal encoding.

    ``lits[0]`` and ``lits[1]`` are the watched literals (for clauses of
    length >= 2).  ``garbage`` marks logically deleted clauses awaiting
    sweep; the propagator skips them lazily.
    """

    __slots__ = ("lits", "learned", "glue", "activity", "used", "garbage", "frequency")

    def __init__(self, lits: List[int], learned: bool = False, glue: int = 0):
        self.lits: List[int] = lits
        self.learned: bool = learned
        self.glue: int = glue
        self.activity: float = 0.0
        self.used: bool = False
        self.garbage: bool = False
        # Cached Eq. (2) criterion, refreshed at each reduction round.
        self.frequency: int = 0

    def __len__(self) -> int:
        return len(self.lits)

    def __repr__(self) -> str:
        kind = "learned" if self.learned else "original"
        return f"SolverClause({self.lits}, {kind}, glue={self.glue})"


class ClauseDatabase:
    """Owns all clauses and the reduce bookkeeping."""

    def __init__(self, keep_glue: int = 2):
        self.original: List[SolverClause] = []
        self.learned: List[SolverClause] = []
        # Learned clauses with glue <= keep_glue are never deleted
        # (Kissat's non-reducible tier).
        self.keep_glue: int = keep_glue
        self.clause_inc: float = 1.0
        self.clause_decay: float = 0.999

    # -- construction ------------------------------------------------------

    def add_original(self, lits: List[int]) -> SolverClause:
        clause = SolverClause(lits, learned=False)
        self.original.append(clause)
        return clause

    def add_learned(self, lits: List[int], glue: int) -> SolverClause:
        clause = SolverClause(lits, learned=True, glue=glue)
        clause.activity = self.clause_inc
        self.learned.append(clause)
        return clause

    # -- activity ----------------------------------------------------------

    def bump_clause(self, clause: SolverClause) -> None:
        """Increase a learned clause's activity; rescale all on overflow.

        Invariant: only *learned* clauses are ever bumped.  Conflict
        analysis checks ``reason.learned`` before calling, and the
        overflow rescale below walks only ``self.learned`` — bumping an
        original clause would silently exempt its activity from
        rescaling, corrupting the relative ordering policies score on.
        The guard makes that contract explicit instead of latent.
        """
        if not clause.learned:
            raise ValueError(
                "bump_clause on an original clause: only learned clauses "
                "carry activity (the overflow rescale covers learned only)"
            )
        clause.activity += self.clause_inc
        clause.used = True
        if clause.activity > 1e20:
            for c in self.learned:
                c.activity *= 1e-20
            self.clause_inc *= 1e-20

    def decay_clause_activities(self) -> None:
        self.clause_inc /= self.clause_decay

    # -- deletion ----------------------------------------------------------

    def reducible_clauses(self) -> List[SolverClause]:
        """Learned clauses that are candidates for deletion.

        Binary clauses are excluded: they live in the specialized binary
        watch table, are cheap to keep, and (as in Kissat) are never
        deleted — which also means the binary watcher index only ever
        shrinks through explicit garbage sweeps, never through reduce.
        """
        keep_glue = self.keep_glue
        return [
            c
            for c in self.learned
            if not c.garbage and c.glue > keep_glue and len(c.lits) > 2
        ]

    def mark_garbage(self, clause: SolverClause) -> None:
        clause.garbage = True

    def sweep(self) -> int:
        """Physically remove garbage learned clauses; returns count removed."""
        before = len(self.learned)
        self.learned = [c for c in self.learned if not c.garbage]
        return before - len(self.learned)

    # -- inspection ----------------------------------------------------------

    def live_learned(self) -> Iterator[SolverClause]:
        return (c for c in self.learned if not c.garbage)

    def live_clauses(self) -> Iterator[SolverClause]:
        """All non-garbage clauses, original first (audit / rebuild order)."""
        for clause in self.original:
            if not clause.garbage:
                yield clause
        for clause in self.learned:
            if not clause.garbage:
                yield clause

    @property
    def num_learned(self) -> int:
        return sum(1 for _ in self.live_learned())

    @property
    def num_original(self) -> int:
        return len(self.original)
