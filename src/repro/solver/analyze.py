"""First-UIP conflict analysis with clause minimization.

Given a conflicting clause, walks the implication graph backwards along
reason clauses until exactly one literal of the current decision level
remains (the first unique implication point).  The learned clause is then
*minimized* by removing literals that are implied by the rest of the
clause (self-subsuming resolution with reason clauses), and its *glue*
(LBD — number of distinct decision levels) is computed, which drives both
deletion policies and glue-based restarts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.solver.assignment import Trail
from repro.solver.clause_db import ClauseDatabase, SolverClause
from repro.solver.statistics import SolverStatistics


class ConflictAnalyzer:
    """Derives learned clauses from conflicts (1-UIP scheme)."""

    def __init__(
        self,
        trail: Trail,
        clause_db: ClauseDatabase,
        stats: SolverStatistics,
        bump_variable: Callable[[int], None],
    ):
        self.trail = trail
        self.clause_db = clause_db
        self.stats = stats
        self.bump_variable = bump_variable
        self._seen: List[bool] = [False] * (trail.num_vars + 1)

    def analyze(self, conflict: SolverClause) -> Tuple[List[int], int, int]:
        """Analyze a conflict at decision level > 0.

        Returns ``(learned_lits, backjump_level, glue)`` where
        ``learned_lits[0]`` is the asserting (1-UIP) literal.
        """
        trail = self.trail
        seen = self._seen
        current_level = trail.decision_level
        assert current_level > 0, "conflict at level 0 is final UNSAT"

        learned: List[int] = [0]  # placeholder for the asserting literal
        counter = 0  # unresolved literals at the current level
        index = len(trail.trail) - 1
        reason: Optional[SolverClause] = conflict
        asserting_lit = -1
        touched: List[int] = []

        while True:
            assert reason is not None, "reached a decision while resolving"
            if reason.learned:
                self.clause_db.bump_clause(reason)
            start = 1 if reason is not conflict else 0
            lits = reason.lits
            for k in range(start, len(lits)):
                lit = lits[k]
                var = lit >> 1
                level = trail.levels[var]
                if seen[var] or level == 0:
                    continue
                seen[var] = True
                touched.append(var)
                self.bump_variable(var)
                if level == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next seen literal on the trail (current level).
            while not seen[trail.trail[index] >> 1]:
                index -= 1
            asserting_lit = trail.trail[index]
            var = asserting_lit >> 1
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = trail.reasons[var]

        learned[0] = asserting_lit ^ 1

        # -- recursive-lite minimization ----------------------------------
        before = len(learned)
        learned = self._minimize(learned)
        self.stats.minimized_literals += before - len(learned)

        # -- glue (LBD): distinct decision levels in the learned clause ----
        levels = {trail.levels[lit >> 1] for lit in learned}
        glue = len(levels)

        # -- backjump level: second-highest level in the clause -------------
        if len(learned) == 1:
            backjump = 0
        else:
            # Move the literal with the highest level (below current) to slot 1.
            max_i = 1
            max_level = trail.levels[learned[1] >> 1]
            for i in range(2, len(learned)):
                lvl = trail.levels[learned[i] >> 1]
                if lvl > max_level:
                    max_level = lvl
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = max_level

        for var in touched:
            seen[var] = False
        return learned, backjump, glue

    def _minimize(self, learned: List[int]) -> List[int]:
        """Drop literals whose reasons are subsumed by the clause itself.

        A non-asserting literal can be removed when every literal of its
        reason clause is already marked ``seen`` (or is at level 0) — the
        classic local minimization of MiniSat (non-recursive variant).
        """
        trail = self.trail
        seen = self._seen
        kept = [learned[0]]
        for lit in learned[1:]:
            var = lit >> 1
            reason = trail.reasons[var]
            if reason is None:
                kept.append(lit)
                continue
            removable = True
            for other in reason.lits:
                ovar = other >> 1
                if ovar == var:
                    continue
                if not seen[ovar] and trail.levels[ovar] > 0:
                    removable = False
                    break
            if not removable:
                kept.append(lit)
            else:
                seen[var] = False
        return kept
