"""Flat int32 arena clause store and the contiguous-memory BCP core.

The object core (:mod:`repro.solver.clause_db`) stores every clause as a
``SolverClause`` with a Python list of literals; BCP chases two pointers
per watcher visit (record -> clause -> lits).  This module replaces the
representation wholesale:

* **Arena** — all clauses live back to back in one growable flat buffer
  of ints as ``[id, size, lit0 .. litN]`` blocks.  A clause is addressed
  by the *offset* of its first literal, so ``data[off-1]`` is its length
  and ``data[off-2]`` its id.  Every value fits an int32 (asserted by
  :meth:`ClauseArena.as_int32`), which is what later numpy-vectorized or
  compiled BCP needs; in pure CPython a plain ``list`` outperforms
  ``array('i')`` because the latter re-boxes every element on read.
* **Clause ids** — per-clause metadata (glue, activity, used, garbage,
  frequency, learned) lives in parallel arrays indexed by a *stable*
  clause id.  Ids are append-only and survive compaction; offsets do
  not.  Long-lived references (trail reasons, proofs, policies) hold
  ids; only watcher records hold offsets, and those are relocated in one
  pass after each compaction.
* **Watch tables** — binary clauses are watcher-only (a flat list of the
  *other* literal per watching literal; the reason is re-derived from
  the implication itself), ternary clauses are fully watched on all
  three literals (``[o1, o2, id]`` triples that never relocate), and
  only clauses of length >= 4 pay for offset-based two-watched-literal
  records with blocking literals.

Observable behavior (statistics, learned clauses' role, deletion-policy
inputs, obs events, DRAT proofs) matches the object core; the
differential-fuzz bank's core-agreement oracle checks exactly that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import BATCH_BUCKETS, MetricsRegistry
from repro.solver.assignment import Trail
from repro.solver.statistics import SolverStatistics
from repro.solver.types import FALSE, TRUE, UNASSIGNED

#: Words preceding each clause's literals in the arena: ``[id, size]``.
HEADER_WORDS = 2

#: A conflict returned by :meth:`ArenaPropagator.propagate`: either the
#: id of a falsified clause or, for binary clauses (which have no id in
#: the hot path), the pair of their (both false) literals.
Conflict = Union[int, Tuple[int, int]]


class ArenaClauseView:
    """Read/write proxy presenting one arena clause like a SolverClause.

    Deletion policies and tests access ``lits``, ``glue``, ``activity``,
    ``used``, ``learned``, ``garbage`` and ``frequency`` attributes; the
    view forwards each to the arena's metadata arrays, so a policy
    writing ``clause.frequency`` (as :class:`FrequencyPolicy` does for
    its Eq. (2) cache) lands in ``ClauseArena.frequency`` and therefore
    survives compaction.
    """

    __slots__ = ("arena", "cid")

    def __init__(self, arena: "ClauseArena", cid: int):
        self.arena = arena
        self.cid = cid

    @property
    def lits(self) -> List[int]:
        return self.arena.literals(self.cid)

    @property
    def glue(self) -> int:
        return self.arena.glue[self.cid]

    @property
    def activity(self) -> float:
        return self.arena.activity[self.cid]

    @property
    def used(self) -> bool:
        return bool(self.arena.used[self.cid])

    @property
    def learned(self) -> bool:
        return bool(self.arena.learned[self.cid])

    @property
    def garbage(self) -> bool:
        return bool(self.arena.garbage[self.cid])

    @property
    def frequency(self) -> int:
        return self.arena.frequency[self.cid]

    @frequency.setter
    def frequency(self, value: int) -> None:
        self.arena.frequency[self.cid] = value

    def __len__(self) -> int:
        return self.arena.size_of(self.cid)

    def __repr__(self) -> str:
        kind = "learned" if self.learned else "original"
        return f"ArenaClauseView(#{self.cid}, {self.lits}, {kind}, glue={self.glue})"


class ClauseArena:
    """Flat clause arena plus id-indexed metadata (ClauseDatabase drop-in).

    Presents the same lifecycle API as
    :class:`~repro.solver.clause_db.ClauseDatabase` (construction,
    activity, deletion, inspection) but trafficks in integer clause ids
    instead of clause objects.
    """

    def __init__(self, keep_glue: int = 2):
        #: The arena proper: ``[id, size, lit0 .. litN]`` blocks.
        self.data: List[int] = []
        #: Offset of each clause's first literal; -1 once compacted away.
        self.offset: List[int] = []
        # -- metadata, indexed by clause id (append-only, never swept) --
        self.glue: List[int] = []
        self.activity: List[float] = []
        self.used: List[int] = []
        self.garbage: List[int] = []
        #: Per-clause Eq. (2) frequency cache (policy-written).
        self.frequency: List[int] = []
        self.learned: List[int] = []

        self.keep_glue: int = keep_glue
        self.clause_inc: float = 1.0
        self.clause_decay: float = 0.999
        self._num_original = 0
        self._num_learned_live = 0

    # -- construction ------------------------------------------------------

    def _push(self, lits: List[int], learned: bool, glue: int) -> int:
        cid = len(self.offset)
        data = self.data
        data.append(cid)
        data.append(len(lits))
        off = len(data)
        data.extend(lits)
        self.offset.append(off)
        self.glue.append(glue)
        self.activity.append(self.clause_inc if learned else 0.0)
        self.used.append(0)
        self.garbage.append(0)
        self.frequency.append(0)
        self.learned.append(1 if learned else 0)
        return cid

    def add_original(self, lits: List[int]) -> int:
        self._num_original += 1
        return self._push(lits, learned=False, glue=0)

    def add_learned(self, lits: List[int], glue: int) -> int:
        self._num_learned_live += 1
        return self._push(lits, learned=True, glue=glue)

    # -- addressing --------------------------------------------------------

    def size_of(self, cid: int) -> int:
        return self.data[self.offset[cid] - 1]

    def literals(self, cid: int) -> List[int]:
        off = self.offset[cid]
        return self.data[off : off + self.data[off - 1]]

    def view(self, cid: int) -> ArenaClauseView:
        return ArenaClauseView(self, cid)

    # -- activity ----------------------------------------------------------

    def bump_clause(self, cid: int) -> None:
        """Increase a learned clause's activity; rescale all on overflow.

        Invariant (shared with the object core): only *learned* clauses
        are ever bumped — conflict analysis checks ``learned`` before
        calling — so rescaling only the learned activities is exhaustive.
        """
        if not self.learned[cid]:
            raise ValueError(
                f"bump_clause on original clause #{cid}: only learned "
                "clauses carry activity (rescale would miss originals)"
            )
        activity = self.activity
        activity[cid] += self.clause_inc
        self.used[cid] = 1
        if activity[cid] > 1e20:
            learned = self.learned
            for other in range(len(activity)):
                if learned[other]:
                    activity[other] *= 1e-20
            self.clause_inc *= 1e-20

    def decay_clause_activities(self) -> None:
        self.clause_inc /= self.clause_decay

    # -- deletion ----------------------------------------------------------

    def reducible_clauses(self) -> List[int]:
        """Ids of learned clauses that are candidates for deletion.

        Binary clauses are excluded (as in the object core and Kissat):
        they are watcher-only in the arena and are never deleted.
        """
        keep_glue = self.keep_glue
        glue = self.glue
        garbage = self.garbage
        learned = self.learned
        data = self.data
        offset = self.offset
        return [
            cid
            for cid in range(len(offset))
            if learned[cid]
            and not garbage[cid]
            and glue[cid] > keep_glue
            and data[offset[cid] - 1] > 2
        ]

    def mark_garbage(self, cid: int) -> None:
        if not self.garbage[cid]:
            self.garbage[cid] = 1
            if self.learned[cid]:
                self._num_learned_live -= 1

    def compact(self) -> Dict[int, int]:
        """Rebuild the arena without garbage blocks.

        Returns the ``{old_offset: new_offset}`` relocation map for the
        surviving clauses; watcher records are the only offset holders
        and must be rewritten with it
        (:meth:`ArenaWatchLists.relocate`).  Clause ids and all metadata
        arrays are untouched — garbage ids simply get offset -1.
        """
        data = self.data
        offset = self.offset
        garbage = self.garbage
        new_data: List[int] = []
        remap: Dict[int, int] = {}
        for cid, off in enumerate(offset):
            if off < 0:
                continue
            if garbage[cid]:
                offset[cid] = -1
                continue
            new_off = len(new_data) + HEADER_WORDS
            new_data.extend(data[off - HEADER_WORDS : off + data[off - 1]])
            remap[off] = new_off
            offset[cid] = new_off
        self.data = new_data
        return remap

    # -- inspection ----------------------------------------------------------

    def live_ids(self) -> List[int]:
        """All non-garbage clause ids, in insertion (= id) order."""
        garbage = self.garbage
        return [cid for cid in range(len(self.offset)) if not garbage[cid]]

    def live_learned_ids(self) -> List[int]:
        garbage = self.garbage
        learned = self.learned
        return [
            cid
            for cid in range(len(self.offset))
            if learned[cid] and not garbage[cid]
        ]

    def live_clauses(self) -> List[ArenaClauseView]:
        """Views of all live clauses (audit / inspection parity helper)."""
        return [self.view(cid) for cid in self.live_ids()]

    @property
    def num_learned(self) -> int:
        return self._num_learned_live

    @property
    def num_original(self) -> int:
        return self._num_original

    def arena_words(self) -> int:
        """Current arena length in words (growth/realloc diagnostics)."""
        return len(self.data)

    def as_int32(self):
        """The arena as a numpy int32 array (copy).

        Verifies the int32 discipline the flat layout is designed
        around: every header word and literal fits in 32 bits, so a
        future vectorized or compiled BCP kernel can alias this buffer
        directly.
        """
        import numpy as np

        out = np.asarray(self.data, dtype=np.int64)
        assert out.size == 0 or (
            out.min() >= -(2**31) and out.max() < 2**31
        ), "arena word outside int32 range"
        return out.astype(np.int32)


class ArenaTrail(Trail):
    """Trail whose reasons are clause ids, not clause objects.

    ``reasons[var]`` is ``None`` for decisions, a clause id (>= 0) for
    implications from ternary/long clauses, and ``~other_lit`` (< 0) for
    implications from binary clauses: binary watchers carry no id, so
    the reason is reconstructed from the implication itself — the
    implied variable's true literal plus ``other_lit``, the binary
    clause's other (false) literal.

    Two further representation changes relative to :class:`Trail`, both
    in service of the BCP hot path:

    * there is **no per-variable ``values`` array** — ``lit_values``
      is the single source of truth (``lit_values[var << 1]`` is
      exactly the old ``values[var]``), sparing one list store per
      propagated assignment;
    * :meth:`backtrack` resets only ``lit_values``.  ``levels`` and
      ``reasons`` go stale for unassigned variables (``levels`` always
      did), which is safe because every reader — conflict analysis,
      :meth:`reason_literals`, :meth:`is_reason`, reduction — checks
      assignment first.
    """

    def __init__(self, num_vars: int, arena: ClauseArena):
        super().__init__(num_vars)
        self.arena = arena
        # Fail loudly if anything still reads the per-variable array.
        self.values = None

    # -- queries (lit_values is the single source of truth) ------------------

    def value_var(self, var: int) -> int:
        return self.lit_values[var << 1]

    def is_assigned(self, var: int) -> bool:
        return self.lit_values[var << 1] != UNASSIGNED

    def model(self) -> List[Optional[bool]]:
        out: List[Optional[bool]] = [None] * (self.num_vars + 1)
        lit_values = self.lit_values
        for var in range(1, self.num_vars + 1):
            v = lit_values[var << 1]
            if v == TRUE:
                out[var] = True
            elif v == FALSE:
                out[var] = False
        return out

    # -- mutation -------------------------------------------------------------

    def assign(self, lit: int, reason) -> None:
        """Record ``lit`` as true at the current decision level."""
        assert self.lit_values[lit] == UNASSIGNED, f"literal {lit} already set"
        var = lit >> 1
        self.lit_values[lit] = TRUE
        self.lit_values[lit ^ 1] = FALSE
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(lit)

    def backtrack(self, level: int) -> List[int]:
        """Undo all assignments above ``level``; returns unassigned literals."""
        if level >= len(self.trail_lim):
            return []
        boundary = self.trail_lim[level]
        undone = self.trail[boundary:]
        lit_values = self.lit_values
        for lit in undone:
            lit_values[lit] = UNASSIGNED
            lit_values[lit ^ 1] = UNASSIGNED
        del self.trail[boundary:]
        del self.trail_lim[level:]
        if self.qhead > boundary:
            self.qhead = boundary
        return undone

    def reason_literals(self, var: int) -> List[int]:
        """Literals of the clause that implied ``var`` (any order)."""
        reason = self.reasons[var]
        if reason < 0:
            pos = var << 1
            lit = pos if self.lit_values[pos] == TRUE else pos | 1
            return [lit, ~reason]
        return self.arena.literals(reason)

    def is_reason(self, cid: int) -> bool:
        """True when clause ``cid`` currently implies some assigned variable."""
        arena = self.arena
        off = arena.offset[cid]
        if off < 0:
            return False
        data = arena.data
        lit_values = self.lit_values
        reasons = self.reasons
        for k in range(off, off + data[off - 1]):
            var = data[k] >> 1
            if lit_values[var << 1] != UNASSIGNED and reasons[var] == cid:
                return True
        return False


class ArenaWatchLists:
    """Per-literal watcher tables over the arena (WatchLists drop-in).

    Three tables, all flat int lists (no per-record allocation):

    * ``binary[lit]`` — the *other* literal of each binary clause
      containing ``lit``.  No clause reference at all: implication,
      conflict, and reason are all decided from the pair of literals.
    * ``ternary[lit]`` — ``[o1, o2, id]`` triples: the two other
      literals plus the clause id (needed as reason/conflict).  Ternary
      clauses are watched on *all three* literals and the records never
      change, so compaction costs them nothing.
    * ``watches[lit]`` — ``[blocker, offset]`` pairs for clauses of
      length >= 4: classic two-watched-literal records with a cached
      blocking literal, addressed by arena offset (``data[off-2]``
      recovers the id when needed).
    """

    def __init__(self, num_vars: int, arena: ClauseArena):
        n = 2 * (num_vars + 1)
        self.arena = arena
        self.binary: List[List[int]] = [[] for _ in range(n)]
        self.ternary: List[List[int]] = [[] for _ in range(n)]
        self.watches: List[List[int]] = [[] for _ in range(n)]
        # Live-clause counts per table.  The propagator hoists one
        # has-any flag per table per call, so a formula without (say)
        # long clauses never pays the long-table fetch on each dequeued
        # literal — the dominant overhead on binary-heavy instances.
        self.n_binary = 0
        self.n_ternary = 0
        self.n_long = 0

    def attach(self, cid: int) -> None:
        """Register watchers for a clause (length >= 2)."""
        arena = self.arena
        data = arena.data
        off = arena.offset[cid]
        size = data[off - 1]
        assert size >= 2, "unit/empty clauses are not watched"
        a = data[off]
        b = data[off + 1]
        if size == 2:
            self.binary[a].append(b)
            self.binary[b].append(a)
            self.n_binary += 1
        elif size == 3:
            c = data[off + 2]
            self.ternary[a] += (b, c, cid)
            self.ternary[b] += (a, c, cid)
            self.ternary[c] += (a, b, cid)
            self.n_ternary += 1
        else:
            self.watches[a] += (b, off)
            self.watches[b] += (a, off)
            self.n_long += 1

    def detach_garbage(self) -> None:
        """Drop garbage clauses from the ternary and long tables.

        Binary clauses are never garbage (reduce excludes them), so the
        binary table is left alone.  Must run *before*
        :meth:`ClauseArena.compact`: long records are identified through
        their still-valid offsets.
        """
        arena = self.arena
        garbage = arena.garbage
        data = arena.data
        ternary_records = 0
        for lst in self.ternary:
            kept = 0
            for i in range(0, len(lst), 3):
                if not garbage[lst[i + 2]]:
                    lst[kept] = lst[i]
                    lst[kept + 1] = lst[i + 1]
                    lst[kept + 2] = lst[i + 2]
                    kept += 3
            if kept != len(lst):
                del lst[kept:]
            ternary_records += kept
        long_records = 0
        for lst in self.watches:
            kept = 0
            for i in range(0, len(lst), 2):
                off = lst[i + 1]
                if not garbage[data[off - HEADER_WORDS]]:
                    lst[kept] = lst[i]
                    lst[kept + 1] = off
                    kept += 2
            if kept != len(lst):
                del lst[kept:]
            long_records += kept
        # Each ternary clause keeps 3 records (one per literal), each
        # long clause 2 (its watch pair); binary clauses are never swept.
        self.n_ternary = ternary_records // 9
        self.n_long = long_records // 4

    def relocate(self, remap: Dict[int, int]) -> None:
        """Rewrite long-watcher offsets after :meth:`ClauseArena.compact`.

        Only the long table holds offsets; binary/ternary records are
        offset-free by construction, which is most of why compaction is
        cheap.  Record order and cached blockers are preserved.
        """
        for lst in self.watches:
            for i in range(1, len(lst), 2):
                lst[i] = remap[lst[i]]

    def long_watch_ids(self, lit: int) -> List[int]:
        """Clause ids of long clauses currently watching ``lit``."""
        data = self.arena.data
        lst = self.watches[lit]
        return [data[lst[i + 1] - HEADER_WORDS] for i in range(0, len(lst), 2)]

    def ternary_watch_ids(self, lit: int) -> List[int]:
        lst = self.ternary[lit]
        return [lst[i + 2] for i in range(0, len(lst), 3)]

    def total_watches(self) -> int:
        return (
            sum(len(lst) for lst in self.binary)
            + sum(len(lst) // 3 for lst in self.ternary)
            + sum(len(lst) // 2 for lst in self.watches)
        )


class ArenaPropagator:
    """Unit propagation over the flat arena (Propagator drop-in).

    Same frequency-tracking API as the object-core
    :class:`~repro.solver.propagate.Propagator`; the differences are all
    hot-path representation:

    * binary implications write ``~false_lit`` as the reason (no clause
      dereference, no record tuple at all);
    * ternary clauses are resolved from their immutable ``[o1, o2, id]``
      record — two literal-value loads decide skip/imply/conflict;
    * long clauses walk ``[blocker, offset]`` pairs strided directly in
      the watcher list and read literals straight out of the arena;
    * the max-frequency is *not* maintained per bump: reductions are
      rare, so :meth:`max_frequency` computes it on demand instead of
      taxing every propagation with a compare.

    Contract (as for the object core): no garbage clauses in any watch
    table when ``propagate`` runs.
    """

    def __init__(
        self,
        trail: ArenaTrail,
        watches: ArenaWatchLists,
        stats: SolverStatistics,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.trail = trail
        self.watches = watches
        self.arena = watches.arena
        self.stats = stats
        self.frequency: List[int] = [0] * (trail.num_vars + 1)
        self._lifetime_base: List[int] = [0] * (trail.num_vars + 1)
        if metrics is not None and metrics.enabled:
            self._batch_hist = metrics.histogram("bcp.batch_size", BATCH_BUCKETS)
        else:
            self._batch_hist = None

    @property
    def lifetime_frequency(self) -> List[int]:
        """Lifetime propagation counters, never reset (Figure 3 input)."""
        return [
            base + live
            for base, live in zip(self._lifetime_base, self.frequency)
        ]

    def reset_frequencies(self) -> None:
        """Called at every clause-deletion round ("since the last deletion")."""
        base = self._lifetime_base
        for var, count in enumerate(self.frequency):
            if count:
                base[var] += count
        self.frequency[:] = [0] * len(self.frequency)

    def max_frequency(self) -> int:
        """Largest per-variable counter, computed on demand (per-reduce O(n))."""
        return max(self.frequency)

    def bump_frequency(self, var: int, count: int = 1) -> None:
        """Externally credit ``var`` with propagations (tests, replay tools)."""
        self.frequency[var] += count

    def propagate(self) -> Optional[Conflict]:
        """Propagate all queued assignments.

        Returns ``None``, a conflicting clause id, or an
        ``(other, false_lit)`` pair for a conflicting binary clause.
        """
        trail = self.trail
        lit_values = trail.lit_values
        levels = trail.levels
        reasons = trail.reasons
        trail_list = trail.trail
        data = self.arena.data
        watches = self.watches.watches
        binary = self.watches.binary
        ternary = self.watches.ternary
        frequency = self.frequency
        level = len(trail.trail_lim)
        qhead = trail.qhead
        ntrail = len(trail_list)
        base = ntrail
        # Hoisted per call: a table with no clauses at all costs one
        # local bool test per dequeued literal instead of a list fetch.
        has_binary = self.watches.n_binary > 0
        has_ternary = self.watches.n_ternary > 0
        has_long = self.watches.n_long > 0

        while qhead < ntrail:
            lit = trail_list[qhead]
            qhead += 1
            false_lit = lit ^ 1

            # -- binary: the other literal alone decides everything.
            blist = binary[false_lit] if has_binary else None
            if blist:
                for other in blist:
                    v = lit_values[other]
                    if v > 0:
                        continue
                    if v == 0:
                        trail.qhead = ntrail
                        self._flush(ntrail - base)
                        return (other, false_lit)
                    var = other >> 1
                    lit_values[other] = 1
                    lit_values[other ^ 1] = 0
                    levels[var] = level
                    reasons[var] = ~false_lit
                    trail_list.append(other)
                    ntrail += 1
                    frequency[var] += 1

            # -- ternary: immutable [o1, o2, id] records, no relocation.
            # Index walk rather than zip(iter, iter, iter): the lists
            # are short, so iterator setup would dominate the scan.
            tlist = ternary[false_lit] if has_ternary else None
            if tlist:
                t = 0
                tn = len(tlist)
                while t < tn:
                    o1 = tlist[t]
                    v1 = lit_values[o1]
                    if v1 > 0:
                        t += 3
                        continue
                    o2 = tlist[t + 1]
                    v2 = lit_values[o2]
                    if v2 > 0:
                        t += 3
                        continue
                    if v1 == 0:
                        if v2 == 0:
                            trail.qhead = ntrail
                            self._flush(ntrail - base)
                            return tlist[t + 2]
                        var = o2 >> 1
                        lit_values[o2] = 1
                        lit_values[o2 ^ 1] = 0
                        levels[var] = level
                        reasons[var] = tlist[t + 2]
                        trail_list.append(o2)
                        ntrail += 1
                        frequency[var] += 1
                    elif v2 == 0:
                        var = o1 >> 1
                        lit_values[o1] = 1
                        lit_values[o1 ^ 1] = 0
                        levels[var] = level
                        reasons[var] = tlist[t + 2]
                        trail_list.append(o1)
                        ntrail += 1
                        frequency[var] += 1
                    # else: both unassigned — the clause cannot propagate.
                    t += 3

            # -- long clauses (>= 4 lits): [blocker, offset] pairs.
            #
            # Two-phase scan as in the object core: phase 1 is
            # write-free until the first relocation leaves a two-slot
            # hole; phase 2 compacts the rest down over it.
            if not has_long:
                continue
            watchers = watches[false_lit]
            if not watchers:
                continue
            i = 0
            n = len(watchers)
            conflict = -1
            hole = -1
            while i < n:
                if lit_values[watchers[i]] > 0:
                    i += 2  # blocker true: clause satisfied, arena untouched
                    continue
                off = watchers[i + 1]
                first = data[off]
                if first == false_lit:
                    # Normalize: watched false literal at slot 1.
                    first = data[off + 1]
                    data[off] = first
                    data[off + 1] = false_lit
                v0 = lit_values[first]
                if v0 > 0:
                    watchers[i] = first  # other watch true: new blocker
                    i += 2
                    continue
                # Probe the third literal directly, then the tail.
                candidate = data[off + 2]
                if lit_values[candidate] != 0:
                    data[off + 1] = candidate
                    data[off + 2] = false_lit
                    wl = watches[candidate]
                    wl.append(first)
                    wl.append(off)
                    hole = i
                    i += 2
                    break
                moved = False
                for k in range(off + 3, off + data[off - 1]):
                    candidate = data[k]
                    if lit_values[candidate] != 0:
                        data[off + 1] = candidate
                        data[k] = false_lit
                        wl = watches[candidate]
                        wl.append(first)
                        wl.append(off)
                        moved = True
                        break
                if moved:
                    hole = i
                    i += 2
                    break
                # No replacement: unit or conflicting on ``first``.
                watchers[i] = first
                i += 2
                if v0 < 0:  # UNASSIGNED: implication
                    var = first >> 1
                    lit_values[first] = 1
                    lit_values[first ^ 1] = 0
                    levels[var] = level
                    reasons[var] = data[off - 2]
                    trail_list.append(first)
                    ntrail += 1
                    frequency[var] += 1
                else:
                    # Conflict; every record was kept so far.
                    trail.qhead = ntrail
                    self._flush(ntrail - base)
                    return data[off - 2]
            if hole < 0:
                continue  # phase 1 kept everything: list untouched
            j = hole
            while i < n:
                blocker = watchers[i]
                off = watchers[i + 1]
                i += 2
                if lit_values[blocker] > 0:
                    watchers[j] = blocker
                    watchers[j + 1] = off
                    j += 2
                    continue
                first = data[off]
                if first == false_lit:
                    first = data[off + 1]
                    data[off] = first
                    data[off + 1] = false_lit
                v0 = lit_values[first]
                if v0 > 0:
                    watchers[j] = first
                    watchers[j + 1] = off
                    j += 2
                    continue
                candidate = data[off + 2]
                if lit_values[candidate] != 0:
                    data[off + 1] = candidate
                    data[off + 2] = false_lit
                    wl = watches[candidate]
                    wl.append(first)
                    wl.append(off)
                    continue
                moved = False
                for k in range(off + 3, off + data[off - 1]):
                    candidate = data[k]
                    if lit_values[candidate] != 0:
                        data[off + 1] = candidate
                        data[k] = false_lit
                        wl = watches[candidate]
                        wl.append(first)
                        wl.append(off)
                        moved = True
                        break
                if moved:
                    continue
                watchers[j] = first
                watchers[j + 1] = off
                j += 2
                if v0 < 0:  # UNASSIGNED: implication
                    var = first >> 1
                    lit_values[first] = 1
                    lit_values[first ^ 1] = 0
                    levels[var] = level
                    reasons[var] = data[off - 2]
                    trail_list.append(first)
                    ntrail += 1
                    frequency[var] += 1
                else:
                    # Conflict: keep the remaining records, then bail out.
                    while i < n:
                        watchers[j] = watchers[i]
                        watchers[j + 1] = watchers[i + 1]
                        j += 2
                        i += 2
                    conflict = data[off - 2]
            del watchers[j:]
            if conflict >= 0:
                trail.qhead = ntrail
                self._flush(ntrail - base)
                return conflict

        trail.qhead = qhead
        self._flush(ntrail - base)
        return None

    def _flush(self, propagated: int) -> None:
        """Write loop-local counters back to shared state."""
        self.stats.propagations += propagated
        self.stats.bcp_rounds += 1
        if self._batch_hist is not None:
            self._batch_hist.observe(propagated)


class ArenaConflictAnalyzer:
    """1-UIP conflict analysis over clause-id reasons.

    Mirrors :class:`~repro.solver.analyze.ConflictAnalyzer` exactly in
    scheme (first-UIP, recursive-lite minimization, glue, backjump) but
    reads literals straight from the arena and resolves the three reason
    encodings (``None`` / id / ``~other_lit``).  The implied literal is
    skipped by variable comparison instead of relying on slot-0
    normalization — ternary clauses are never normalized in the arena.
    """

    def __init__(
        self,
        trail: ArenaTrail,
        arena: ClauseArena,
        stats: SolverStatistics,
        bump_variable: Callable[[int], None],
    ):
        self.trail = trail
        self.clause_db = arena
        self.arena = arena
        self.stats = stats
        self.bump_variable = bump_variable
        self._seen: List[bool] = [False] * (trail.num_vars + 1)

    def analyze(self, conflict: Conflict) -> Tuple[List[int], int, int]:
        """Analyze a conflict at decision level > 0.

        Returns ``(learned_lits, backjump_level, glue)`` where
        ``learned_lits[0]`` is the asserting (1-UIP) literal.
        """
        trail = self.trail
        arena = self.arena
        data = arena.data
        offset = arena.offset
        learned_flags = arena.learned
        seen = self._seen
        levels = trail.levels
        trail_list = trail.trail
        reasons = trail.reasons
        bump_variable = self.bump_variable
        current_level = trail.decision_level
        assert current_level > 0, "conflict at level 0 is final UNSAT"

        learned: List[int] = [0]  # placeholder for the asserting literal
        counter = 0  # unresolved literals at the current level
        index = len(trail_list) - 1
        asserting_lit = -1
        touched: List[int] = []

        if type(conflict) is tuple:
            lits: Tuple[int, ...] = conflict
        else:
            if learned_flags[conflict]:
                arena.bump_clause(conflict)
            off = offset[conflict]
            lits = tuple(data[off : off + data[off - 1]])
        skip_var = -1  # conflict: resolve over every literal

        while True:
            for lit in lits:
                var = lit >> 1
                if var == skip_var:
                    continue
                level = levels[var]
                if seen[var] or level == 0:
                    continue
                seen[var] = True
                touched.append(var)
                bump_variable(var)
                if level == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next seen literal on the trail (current level).
            while not seen[trail_list[index] >> 1]:
                index -= 1
            asserting_lit = trail_list[index]
            var = asserting_lit >> 1
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = reasons[var]
            assert reason is not None, "reached a decision while resolving"
            if reason < 0:
                # Binary reason: resolving removes var, adds the other lit.
                lits = (~reason,)
                skip_var = -1
            else:
                if learned_flags[reason]:
                    arena.bump_clause(reason)
                off = offset[reason]
                lits = tuple(data[off : off + data[off - 1]])
                skip_var = var

        learned[0] = asserting_lit ^ 1

        # -- recursive-lite minimization ----------------------------------
        before = len(learned)
        learned = self._minimize(learned)
        self.stats.minimized_literals += before - len(learned)

        # -- glue (LBD): distinct decision levels in the learned clause ----
        glue = len({levels[lit >> 1] for lit in learned})

        # -- backjump level: second-highest level in the clause -------------
        if len(learned) == 1:
            backjump = 0
        else:
            max_i = 1
            max_level = levels[learned[1] >> 1]
            for i in range(2, len(learned)):
                lvl = levels[learned[i] >> 1]
                if lvl > max_level:
                    max_level = lvl
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = max_level

        for var in touched:
            seen[var] = False
        return learned, backjump, glue

    def _minimize(self, learned: List[int]) -> List[int]:
        """Drop literals whose reasons are subsumed by the clause itself."""
        trail = self.trail
        arena = self.arena
        data = arena.data
        offset = arena.offset
        seen = self._seen
        levels = trail.levels
        reasons = trail.reasons
        kept = [learned[0]]
        for lit in learned[1:]:
            var = lit >> 1
            reason = reasons[var]
            if reason is None:
                kept.append(lit)
                continue
            removable = True
            if reason < 0:
                ovar = (~reason) >> 1
                if not seen[ovar] and levels[ovar] > 0:
                    removable = False
            else:
                off = offset[reason]
                for k in range(off, off + data[off - 1]):
                    ovar = data[k] >> 1
                    if ovar == var:
                        continue
                    if not seen[ovar] and levels[ovar] > 0:
                        removable = False
                        break
            if removable:
                seen[var] = False
            else:
                kept.append(lit)
        return kept
