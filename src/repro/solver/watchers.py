"""Two-watched-literal index with blocking literals and binary specialization.

The index keeps two structures per internal literal, Kissat-style:

* ``binary[lit]`` — watchers for **binary clauses** containing ``lit``.
  Each record is ``(other, clause)`` where ``other`` is the clause's
  remaining literal.  Binary propagation reads only the record: the
  implication is decided without dereferencing the clause at all (the
  clause object is kept solely to serve as the reason / conflict).
* ``watches[lit]`` — watchers for **long clauses** (length >= 3)
  currently watching ``lit``.  Each record is ``(blocker, clause)``
  where ``blocker`` is some other literal of the clause; when the
  blocker is already true the clause is satisfied and the propagator
  skips it without touching the clause object (MiniSat's "blocking
  literal" trick, the single biggest constant-factor win in BCP).

The propagator visits both tables for ``neg(l)`` when ``l`` becomes
true, relocating long-clause watches so a clause is only ever touched
when it might propagate or conflict — the key to sub-quadratic BCP.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.solver.clause_db import SolverClause

#: A watcher record: ``[blocking-or-other literal, clause]``.  Long-clause
#: records are mutable two-element lists so the propagator can update the
#: cached blocker and relocate a record without allocating; binary records
#: are immutable tuples (they never change once attached).
Watcher = Sequence


class WatchLists:
    """Per-literal watcher lists, indexed by internal literal."""

    def __init__(self, num_vars: int):
        n = 2 * (num_vars + 1)
        #: Long-clause watchers: ``watches[lit]`` -> list of (blocker, clause).
        self.watches: List[List[Watcher]] = [[] for _ in range(n)]
        #: Binary-clause watchers: ``binary[lit]`` -> list of (other, clause).
        self.binary: List[List[Watcher]] = [[] for _ in range(n)]

    def watch(self, lit: int, clause: SolverClause, blocker: int = -1) -> None:
        """Register one watcher for ``lit`` on ``clause``.

        ``blocker`` defaults to the clause's other watched literal.
        Binary clauses are routed to the dedicated binary table.
        """
        lits = clause.lits
        if blocker < 0:
            blocker = lits[1] if lits[0] == lit else lits[0]
        if len(lits) == 2:
            self.binary[lit].append((blocker, clause))
        else:
            self.watches[lit].append([blocker, clause])

    def watchers_of(self, lit: int) -> List[SolverClause]:
        """All clauses (binary first, then long) watching ``lit``."""
        return [rec[1] for rec in self.binary[lit]] + [
            rec[1] for rec in self.watches[lit]
        ]

    def attach(self, clause: SolverClause) -> None:
        """Watch the first two literals of a clause (length >= 2)."""
        lits = clause.lits
        assert len(lits) >= 2, "unit/empty clauses are not watched"
        a, b = lits[0], lits[1]
        if len(lits) == 2:
            self.binary[a].append((b, clause))
            self.binary[b].append((a, clause))
        else:
            # The other watched literal doubles as the initial blocker.
            self.watches[a].append([b, clause])
            self.watches[b].append([a, clause])

    def detach_garbage(self) -> None:
        """Drop garbage clauses from every watch list (single-pass sweep).

        Each list is compacted in place: live records slide down over
        dead ones and the tail is truncated once — no ``any()`` pre-scan,
        no throwaway filtered copy.
        """
        for table in (self.binary, self.watches):
            for lst in table:
                kept = 0
                for rec in lst:
                    if not rec[1].garbage:
                        lst[kept] = rec
                        kept += 1
                if kept != len(lst):
                    del lst[kept:]

    def total_watches(self) -> int:
        return sum(len(lst) for lst in self.watches) + sum(
            len(lst) for lst in self.binary
        )
