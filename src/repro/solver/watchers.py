"""Two-watched-literal index.

``watches[lit]`` lists the clauses currently watching internal literal
``lit``.  The propagator visits ``watches[neg(l)]`` when ``l`` becomes
true, relocating watches so that a clause is only ever touched when it
might propagate or conflict — the key to sub-quadratic BCP.
"""

from __future__ import annotations

from typing import List

from repro.solver.clause_db import SolverClause


class WatchLists:
    """Per-literal watcher lists, indexed by internal literal."""

    def __init__(self, num_vars: int):
        self.watches: List[List[SolverClause]] = [
            [] for _ in range(2 * (num_vars + 1))
        ]

    def watch(self, lit: int, clause: SolverClause) -> None:
        self.watches[lit].append(clause)

    def watchers_of(self, lit: int) -> List[SolverClause]:
        return self.watches[lit]

    def attach(self, clause: SolverClause) -> None:
        """Watch the first two literals of a clause (length >= 2)."""
        assert len(clause.lits) >= 2, "unit/empty clauses are not watched"
        self.watches[clause.lits[0]].append(clause)
        self.watches[clause.lits[1]].append(clause)

    def detach_garbage(self) -> None:
        """Drop garbage clauses from every watch list (bulk sweep)."""
        for i, lst in enumerate(self.watches):
            if any(c.garbage for c in lst):
                self.watches[i] = [c for c in lst if not c.garbage]

    def total_watches(self) -> int:
        return sum(len(lst) for lst in self.watches)
