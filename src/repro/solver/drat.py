"""Forward DRAT (RUP) proof checker.

Validates the proofs emitted by :class:`~repro.solver.proof.ProofLog`:
every added clause must be a *reverse unit propagation* (RUP)
consequence of the current clause set — assuming all its literals false
and propagating units must yield a conflict — and the proof must end
with (or derive) the empty clause for a valid refutation.

This is a reference checker: simple counter-based unit propagation over
frozen clause lists, built for correctness and test use, not speed.
Clauses learned by CDCL with 1-UIP analysis are always RUP, so the
checker doubles as an oracle that the solver's conflict analysis is
sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cnf.formula import CNF


class DratError(ValueError):
    """Raised when a proof line is malformed or a step is not RUP."""


def parse_proof(text: str) -> List[Tuple[str, Tuple[int, ...]]]:
    """Parse DRAT text into ('a'|'d', literals) steps."""
    steps: List[Tuple[str, Tuple[int, ...]]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        kind = "a"
        if line.startswith("d "):
            kind = "d"
            line = line[2:]
        try:
            numbers = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise DratError(f"line {line_no}: bad token") from exc
        if not numbers or numbers[-1] != 0:
            raise DratError(f"line {line_no}: missing 0 terminator")
        steps.append((kind, tuple(numbers[:-1])))
    return steps


def _propagate(
    clauses: List[Optional[Tuple[int, ...]]],
    assignment: Dict[int, bool],
) -> bool:
    """Saturating unit propagation; True when a conflict is reached."""
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            if clause is None:
                continue
            unassigned: Optional[int] = None
            satisfied = False
            more_than_one = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                elif unassigned is None:
                    unassigned = lit
                else:
                    more_than_one = True
            if satisfied:
                continue
            if unassigned is None:
                return True  # conflict: all literals false
            if not more_than_one:
                assignment[abs(unassigned)] = unassigned > 0
                changed = True
    return False


def _is_rup(
    clauses: List[Optional[Tuple[int, ...]]], clause: Sequence[int]
) -> bool:
    """True when asserting the negation of ``clause`` propagates to conflict."""
    assignment: Dict[int, bool] = {}
    for lit in clause:
        var = abs(lit)
        value = lit < 0  # literal must be false
        if var in assignment and assignment[var] != value:
            return True  # clause is a tautology: trivially RUP
        assignment[var] = value
    return _propagate(clauses, assignment)


def _propagate_tracking(
    clauses: List[Optional[Tuple[int, ...]]],
    assignment: Dict[int, bool],
) -> Tuple[bool, Set[int]]:
    """Unit propagation returning the *conflict cone* of clause indices.

    Each propagated variable remembers its reason clause; on conflict,
    walking reasons backward from the conflict clause yields exactly the
    antecedents the derivation needs — units that fired but do not feed
    the conflict stay out of the cone, which is what makes proof
    trimming actually shrink proofs.
    """
    reasons: Dict[int, int] = {}  # var -> clause index that propagated it
    conflict_index: Optional[int] = None
    changed = True
    while changed and conflict_index is None:
        changed = False
        for index, clause in enumerate(clauses):
            if clause is None:
                continue
            unassigned: Optional[int] = None
            satisfied = False
            more = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                elif unassigned is None:
                    unassigned = lit
                else:
                    more = True
            if satisfied:
                continue
            if unassigned is None:
                conflict_index = index
                break
            if not more:
                assignment[abs(unassigned)] = unassigned > 0
                reasons[abs(unassigned)] = index
                changed = True
    if conflict_index is None:
        return False, set()

    # Backward cone: from the conflict clause through reasons.
    cone: Set[int] = set()
    queue = [conflict_index]
    seen_vars: Set[int] = set()
    while queue:
        index = queue.pop()
        if index in cone:
            continue
        cone.add(index)
        clause = clauses[index]
        assert clause is not None
        for lit in clause:
            var = abs(lit)
            if var in seen_vars:
                continue
            seen_vars.add(var)
            if var in reasons:
                queue.append(reasons[var])
    return True, cone


def trim_proof(cnf: CNF, proof_text: str) -> str:
    """Shrink a DRAT refutation to the additions the empty clause needs.

    Forward pass: replay the proof, recording for each addition the
    clauses its RUP check touched.  Backward pass: mark the terminal
    (empty or final) clause and transitively everything it depends on;
    emit only marked additions.  Deletions are dropped entirely — extra
    available clauses never invalidate a RUP step, so the trimmed proof
    remains checkable (and is verified by the caller via
    :func:`check_drat`).

    Raises :class:`DratError` when the input proof is invalid.
    """
    original = [tuple(c.literals) for c in cnf.clauses]
    clauses: List[Optional[Tuple[int, ...]]] = list(original)
    num_original = len(clauses)

    steps = parse_proof(proof_text)
    additions: List[Tuple[int, Tuple[int, ...], Set[int]]] = []  # (index, lits, deps)
    terminal: Optional[int] = None

    for kind, lits in steps:
        if kind == "d":
            continue  # trimming ignores deletions (they only remove options)
        assignment: Dict[int, bool] = {}
        tautology = False
        for lit in lits:
            var = abs(lit)
            value = lit < 0
            if var in assignment and assignment[var] != value:
                tautology = True
                break
            assignment[var] = value
        if tautology:
            deps: Set[int] = set()
        else:
            conflict, deps = _propagate_tracking(clauses, assignment)
            if not conflict:
                raise DratError(f"clause {list(lits)} is not RUP")
        index = len(clauses)
        clauses.append(tuple(lits))
        additions.append((index, tuple(lits), deps))
        if not lits:
            terminal = index
            break

    if terminal is None:
        if not additions:
            raise DratError("proof adds no clauses")
        terminal = additions[-1][0]

    by_index = {index: (lits, deps) for index, lits, deps in additions}
    marked: Set[int] = set()
    stack = [terminal]
    while stack:
        index = stack.pop()
        if index in marked or index < num_original:
            continue
        marked.add(index)
        _, deps = by_index[index]
        stack.extend(deps)

    lines = []
    for index, lits, _ in additions:
        if index in marked:
            lines.append(" ".join(map(str, lits)) + " 0" if lits else "0")
    return "\n".join(lines) + ("\n" if lines else "")


def check_drat(cnf: CNF, proof_text: str, require_empty: bool = True) -> bool:
    """Check a DRAT proof against a formula.

    Raises :class:`DratError` on the first invalid step.  With
    ``require_empty`` the proof must contain (or derive) the empty
    clause, i.e. certify unsatisfiability.
    """
    clauses: List[Optional[Tuple[int, ...]]] = [
        tuple(c.literals) for c in cnf.clauses
    ]
    index: Dict[frozenset, List[int]] = {}
    for i, clause in enumerate(clauses):
        index.setdefault(frozenset(clause), []).append(i)

    derived_empty = any(not c for c in clauses)
    for step_no, (kind, lits) in enumerate(parse_proof(proof_text), start=1):
        if kind == "d":
            key = frozenset(lits)
            slots = index.get(key)
            if not slots:
                # Deleting an unknown clause is harmless (checkers warn);
                # we tolerate it to match drat-trim's default behaviour.
                continue
            clauses[slots.pop()] = None
            continue
        if not lits:
            derived_empty = True
            if not _is_rup(clauses, ()):
                raise DratError(f"step {step_no}: empty clause is not RUP")
            continue
        if not _is_rup(clauses, lits):
            raise DratError(f"step {step_no}: clause {list(lits)} is not RUP")
        clauses.append(tuple(lits))
        index.setdefault(frozenset(lits), []).append(len(clauses) - 1)
        if len(lits) == 0:
            derived_empty = True

    if require_empty and not derived_empty:
        raise DratError("proof does not derive the empty clause")
    return True
