"""Restart policies: Luby sequence and Glucose-style EMA glue restarts.

Restarts periodically abandon the current search prefix (keeping learned
clauses and activities) to escape unproductive subtrees.  Two policies:

* **Luby**: restart after ``base * luby(i)`` conflicts — the reluctant
  doubling sequence 1 1 2 1 1 2 4 ... with optimal worst-case properties.
* **EMA** (Glucose): restart when the fast exponential moving average of
  learned-clause glue exceeds the slow average by a margin, i.e. when the
  solver is currently learning unusually bad clauses.
"""

from __future__ import annotations

from typing import Callable, Optional


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby sequence: 1 1 2 1 1 2 4 1 1 2 ...

    Defined by: luby(2^k - 1) = 2^(k-1); otherwise, with k the smallest
    power such that i < 2^k - 1, luby(i) = luby(i - (2^(k-1) - 1)).
    """
    if i < 1:
        raise ValueError("luby is defined for i >= 1")
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class LubyRestarts:
    """Restart after ``base * luby(n)`` conflicts since the last restart."""

    def __init__(self, base: int = 100):
        self.base = base
        self._index = 1
        self._limit = base * luby(1)
        self._conflicts = 0

    def on_conflict(self, glue: int) -> None:
        self._conflicts += 1

    def should_restart(self) -> bool:
        return self._conflicts >= self._limit

    def on_restart(self) -> None:
        self._index += 1
        self._limit = self.base * luby(self._index)
        self._conflicts = 0


class SwitchingRestarts:
    """Kissat-style alternation between *focused* and *stable* modes.

    Focused mode restarts aggressively on glue spikes (EMA policy);
    stable mode restarts on the slow Luby schedule.  The solver starts
    focused and toggles every ``mode_interval`` conflicts, doubling the
    interval after each switch so later phases run longer — the shape of
    Kissat's ``mode`` limits.
    """

    def __init__(
        self,
        luby_base: int = 100,
        mode_interval: int = 1000,
        fast_alpha: float = 1.0 / 32.0,
        slow_alpha: float = 1.0 / 4096.0,
        on_switch: Optional[Callable[[int, str], None]] = None,
    ):
        if mode_interval < 1:
            raise ValueError("mode_interval must be >= 1")
        self.focused = EMARestarts(fast_alpha=fast_alpha, slow_alpha=slow_alpha)
        self.stable = LubyRestarts(base=luby_base)
        self.in_stable = False
        self.switches = 0
        self._conflicts = 0
        self._switch_limit = mode_interval
        self._interval = mode_interval
        #: Called as ``on_switch(switch_count, new_mode)`` after every
        #: mode change; lets the solver trace mode switches without this
        #: class knowing about observability.
        self.on_switch = on_switch

    @property
    def _current(self):
        return self.stable if self.in_stable else self.focused

    def on_conflict(self, glue: int) -> None:
        self._conflicts += 1
        self._current.on_conflict(glue)
        if self._conflicts >= self._switch_limit:
            self.in_stable = not self.in_stable
            self.switches += 1
            self._interval *= 2
            self._switch_limit = self._conflicts + self._interval
            if self.on_switch is not None:
                self.on_switch(
                    self.switches, "stable" if self.in_stable else "focused"
                )

    def should_restart(self) -> bool:
        return self._current.should_restart()

    def on_restart(self) -> None:
        self._current.on_restart()


class EMARestarts:
    """Glucose-style restarts from fast/slow glue moving averages."""

    def __init__(
        self,
        fast_alpha: float = 1.0 / 32.0,
        slow_alpha: float = 1.0 / 4096.0,
        margin: float = 1.25,
        min_conflicts: int = 50,
    ):
        self.fast_alpha = fast_alpha
        self.slow_alpha = slow_alpha
        self.margin = margin
        self.min_conflicts = min_conflicts
        self.fast = 0.0
        self.slow = 0.0
        self._conflicts = 0
        self._since_restart = 0

    def on_conflict(self, glue: int) -> None:
        if self._conflicts == 0:
            # Seed both averages with the first observation; otherwise the
            # fast EMA leaves the all-zero start far sooner than the slow
            # one and the very first conflicts look like a glue spike.
            self.fast = float(glue)
            self.slow = float(glue)
        self._conflicts += 1
        self._since_restart += 1
        self.fast += self.fast_alpha * (glue - self.fast)
        self.slow += self.slow_alpha * (glue - self.slow)

    def should_restart(self) -> bool:
        if self._since_restart < self.min_conflicts:
            return False
        return self.fast > self.margin * self.slow

    def on_restart(self) -> None:
        self._since_restart = 0
        self.fast = self.slow
