"""Solver statistics counters.

``propagations`` doubles as the deterministic effort measure used
throughout the evaluation harness (the paper labels its training data by
propagation counts for the same reason — CPU time is noisy, Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict, fields
from typing import Dict


@dataclass
class SolverStatistics:
    """Mutable counters updated by the solving loop."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    reductions: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    deleted_clauses: int = 0
    minimized_literals: int = 0
    max_trail: int = 0
    glue_sum: int = 0
    #: Number of ``propagate()`` invocations; ``propagations /
    #: bcp_rounds`` is the mean BCP batch size.
    bcp_rounds: int = 0
    rephases: int = 0

    def mean_glue(self) -> float:
        """Average LBD of learned clauses so far (0 when none learned)."""
        if self.learned_clauses == 0:
            return 0.0
        return self.glue_sum / self.learned_clauses

    def mean_learned_size(self) -> float:
        """Average learned-clause length so far (0 when none learned)."""
        if self.learned_clauses == 0:
            return 0.0
        return self.learned_literals / self.learned_clauses

    def to_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(asdict(self))
        out["mean_glue"] = self.mean_glue()
        out["mean_learned_size"] = self.mean_learned_size()
        return out

    def reset(self) -> None:
        """Zero every counter.

        The field list is derived from ``dataclasses.fields`` so new
        counters are reset automatically instead of silently surviving
        a reset (the failure mode of the old hand-maintained tuple).
        """
        for spec in fields(self):
            setattr(self, spec.name, spec.default)
