"""Solver statistics counters.

``propagations`` doubles as the deterministic effort measure used
throughout the evaluation harness (the paper labels its training data by
propagation counts for the same reason — CPU time is noisy, Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict


@dataclass
class SolverStatistics:
    """Mutable counters updated by the solving loop."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    reductions: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    deleted_clauses: int = 0
    minimized_literals: int = 0
    max_trail: int = 0
    glue_sum: int = 0

    def mean_glue(self) -> float:
        """Average LBD of learned clauses so far (0 when none learned)."""
        if self.learned_clauses == 0:
            return 0.0
        return self.glue_sum / self.learned_clauses

    def mean_learned_size(self) -> float:
        """Average learned-clause length so far (0 when none learned)."""
        if self.learned_clauses == 0:
            return 0.0
        return self.learned_literals / self.learned_clauses

    def to_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(asdict(self))
        out["mean_glue"] = self.mean_glue()
        out["mean_learned_size"] = self.mean_learned_size()
        return out

    def reset(self) -> None:
        for name in (
            "decisions",
            "propagations",
            "conflicts",
            "restarts",
            "reductions",
            "learned_clauses",
            "learned_literals",
            "deleted_clauses",
            "minimized_literals",
            "max_trail",
            "glue_sum",
        ):
            setattr(self, name, 0)
