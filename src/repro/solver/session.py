"""IPASIR-style incremental solving sessions.

:class:`SolverSession` is the warm-restart facade over
:class:`~repro.solver.solver.Solver`: one long-lived solver instance
answers a *sequence* of closely related queries, keeping everything a
fresh solver would have to rebuild — learned clauses, VSIDS/VMTF
activity and saved phases, restart state, and (on the arena core) the
flat clause arena itself — alive between calls.  The interface follows
IPASIR's shape:

``add(*literals)``
    Add one clause between solves (DIMACS literals).
``assume(*literals)``
    Queue assumption literals for the *next* ``solve()`` call only;
    IPASIR semantics — assumptions never persist across calls.
``solve(...)``
    Run CDCL under the queued (or explicitly passed) assumptions.
    Unlike :meth:`Solver.solve`, the ``max_conflicts`` /
    ``max_propagations`` / ``max_decisions`` budgets here are
    **per-call**: they are translated into absolute counter targets on
    top of whatever previous calls already spent, so every call gets
    the full budget it asked for.
``failed()``
    The failed-assumption core of the most recent
    UNSAT-under-assumptions answer (MiniSat's ``analyzeFinal``), as
    DIMACS literals; ``failed(lit)`` tests membership.

Both engine cores (``SolverConfig(core="arena"|"object")``) sit behind
the same facade; the differential battery in ``tests/test_sessions.py``
pins them to fresh-solver re-solves on random clause/assumption
schedules.

Variables are declared up front (``SolverSession(num_vars=...)`` or via
the seed formula): the watcher tables and trail are sized once, which
is what keeps the hot path allocation-free.  ``add`` rejects literals
outside that range, exactly like :meth:`Solver.add_clause`.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.cnf.formula import CNF
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.base import DeletionPolicy
from repro.solver.proof import ProofLog
from repro.solver.solver import Solver, SolverConfig, SolveResult
from repro.solver.types import Status


class SolverSession:
    """One warm incremental solving session over a single solver core."""

    def __init__(
        self,
        formula: Union[CNF, int],
        policy: Optional[DeletionPolicy] = None,
        config: Optional[SolverConfig] = None,
        proof: Optional[ProofLog] = None,
        observer: Optional[Observer] = None,
        session_id: Optional[str] = None,
    ):
        """Open a session over ``formula`` (a :class:`CNF`, or an int
        declaring ``num_vars`` over an initially empty formula)."""
        if isinstance(formula, int):
            if formula < 0:
                raise ValueError("num_vars must be >= 0")
            formula = CNF(clauses=[], num_vars=formula)
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.solver = Solver(
            formula,
            policy=policy,
            config=config,
            proof=proof,
            observer=observer,
        )
        self.id = session_id or ""
        #: Completed ``solve()`` calls in this session.
        self.solves = 0
        #: Clauses added through :meth:`add` (not counting the seed formula).
        self.added_clauses = 0
        self._pending: List[int] = []
        self._failed: List[int] = []
        self._last_status: Optional[Status] = None

    # -- introspection -----------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self.solver.trail.num_vars

    @property
    def cnf(self) -> CNF:
        """The accumulated formula (the solver's own copy once grown)."""
        return self.solver.cnf

    @property
    def core(self) -> str:
        return self.solver.config.core

    @property
    def last_status(self) -> Optional[Status]:
        return self._last_status

    # -- the IPASIR-shaped surface ----------------------------------------

    def add(self, *literals: int) -> "SolverSession":
        """Add one clause (DIMACS literals); returns self for chaining."""
        if len(literals) == 1 and isinstance(literals[0], (list, tuple)):
            literals = tuple(literals[0])
        self.solver.add_clause(literals)
        self.added_clauses += 1
        return self

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> "SolverSession":
        """Add several clauses at once."""
        for clause in clauses:
            self.add(*clause)
        return self

    def assume(self, *literals: int) -> "SolverSession":
        """Queue assumptions for the next ``solve()`` call only."""
        if len(literals) == 1 and isinstance(literals[0], (list, tuple)):
            literals = tuple(literals[0])
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise ValueError("0 is not a literal")
            if abs(lit) > self.num_vars:
                raise ValueError(
                    f"assumption on unknown variable {abs(lit)} "
                    f"(session declares {self.num_vars})"
                )
            self._pending.append(lit)
        return self

    def solve(
        self,
        assumptions: Optional[Sequence[int]] = None,
        max_conflicts: Optional[int] = None,
        max_propagations: Optional[int] = None,
        max_decisions: Optional[int] = None,
    ) -> SolveResult:
        """Solve under the queued (or given) assumptions; budgets are
        per-call.

        Passing ``assumptions`` explicitly *replaces* anything queued
        via :meth:`assume` for this call.  Either way the assumption
        set is cleared afterwards (IPASIR semantics).
        """
        if assumptions is None:
            assumed = list(self._pending)
        else:
            assumed = [int(lit) for lit in assumptions]
        self._pending.clear()
        stats = self.solver.stats
        result = self.solver.solve(
            assumptions=assumed,
            max_conflicts=self._absolute(max_conflicts, stats.conflicts),
            max_propagations=self._absolute(
                max_propagations, stats.propagations
            ),
            max_decisions=self._absolute(max_decisions, stats.decisions),
        )
        self.solves += 1
        self._last_status = result.status
        self._failed = list(result.core or [])
        if self.observer.tracing:
            self.observer.event(
                "session-solve",
                session=self.id,
                call=self.solves,
                core=self.core,
                status=result.status.name,
                assumptions=len(assumed),
                failed=len(self._failed),
                clauses=self.solver.cnf.num_clauses,
                learned=self.solver.stats.learned_clauses,
            )
        return result

    def failed(self, literal: Optional[int] = None):
        """Failed-assumption core of the last UNSAT-under-assumptions
        answer.

        With no argument, returns the core as a list of DIMACS
        literals (empty unless the last call was UNSAT under
        assumptions).  With a literal, returns whether it is in that
        core — IPASIR's ``ipasir_failed``.
        """
        if literal is None:
            return list(self._failed)
        return int(literal) in self._failed

    def set_policy(self, policy: DeletionPolicy) -> None:
        """Swap the clause-deletion policy without losing warm state.

        The drift-aware selector uses this when a session's formula has
        drifted enough to change the predicted label: the solver keeps
        its learned clauses, phases, and activities — only the reduce
        scheduler's scoring changes.
        """
        self.solver.policy = policy
        self.solver.reducer.policy = policy

    @property
    def policy_name(self) -> str:
        return self.solver.policy.name

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _absolute(budget: Optional[int], spent: int) -> Optional[int]:
        """Translate a per-call budget into an absolute counter target."""
        if budget is None:
            return None
        return spent + max(0, int(budget))


def replay_schedule(
    session: SolverSession, steps: Iterable[Sequence]
) -> List[SolveResult]:
    """Run a recorded schedule of ``("add", lits)`` / ``("solve", lits)``
    steps against a session; returns the results of the solve steps.

    The differential battery and the cross-core fuzz oracle both speak
    this schedule format, so a failing schedule can be replayed
    verbatim against either core.
    """
    results: List[SolveResult] = []
    for step in steps:
        op, lits = step[0], list(step[1])
        if op == "add":
            session.add(*lits)
        elif op == "solve":
            results.append(session.solve(assumptions=lits))
        else:
            raise ValueError(f"unknown schedule op {op!r}")
    return results


def timed_session_solve(
    session: SolverSession, **kwargs
) -> Tuple[SolveResult, float]:
    """``session.solve`` plus wall-clock seconds (serve bookkeeping)."""
    start = time.perf_counter()
    result = session.solve(**kwargs)
    return result, time.perf_counter() - start
