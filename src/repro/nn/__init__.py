"""A small numpy-based autograd and neural-network framework.

The offline stand-in for PyTorch: reverse-mode autodiff
(:class:`~repro.nn.tensor.Tensor`), layers, optimizers, and losses —
exactly the operator set the paper's models require, at float64.
"""

from repro.nn.tensor import Tensor, tensor, zeros, ones
from repro.nn.layers import (
    Module,
    Linear,
    MLP,
    LayerNorm,
    Sequential,
    relu,
    sigmoid,
    tanh,
)
from repro.nn.optim import Optimizer, SGD, Adam
from repro.nn.loss import bce_loss, bce_with_logits, mse_loss
from repro.nn.serialization import save_module, load_module
from repro.nn.schedulers import (
    Scheduler,
    ConstantLR,
    StepLR,
    CosineAnnealingLR,
    WarmupLR,
    EarlyStopping,
)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "Module",
    "Linear",
    "MLP",
    "LayerNorm",
    "Sequential",
    "relu",
    "sigmoid",
    "tanh",
    "Optimizer",
    "SGD",
    "Adam",
    "bce_loss",
    "bce_with_logits",
    "mse_loss",
    "save_module",
    "load_module",
    "Scheduler",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "EarlyStopping",
]
