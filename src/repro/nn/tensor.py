"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps a float64 ``numpy.ndarray`` and records the
operations applied to it; :meth:`Tensor.backward` then walks the recorded
graph in reverse topological order accumulating gradients.  The op set is
exactly what the paper's models need — dense linear algebra, pointwise
nonlinearities, reductions, broadcasting arithmetic, and the
gather/scatter primitives that make message passing differentiable —
nothing more.

Broadcasting follows numpy semantics; gradients of broadcast operands are
summed back over the broadcast axes (:func:`_unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = requires_grad
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # -- helpers ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        out.requires_grad = any(p.requires_grad for p in parents)
        if out.requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make(out_data, (self, other), backward)

    # -- shape ops ----------------------------------------------------------

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(self.data.T, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split gradient among ties, like numpy-compatible frameworks.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return self._make(out_data, (self,), backward)

    # -- pointwise nonlinearities ------------------------------------------

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        return self._make(out_data, (self,), backward)

    # -- graph primitives -------------------------------------------------

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Rows ``self[index]`` with scatter-add backward (edge expansion)."""
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def scatter_sum(self, index: np.ndarray, num_segments: int) -> "Tensor":
        """Per-segment sum of rows: out[s] = sum of self[e] with index[e]==s."""
        index = np.asarray(index, dtype=np.int64)
        out_data = np.zeros((num_segments,) + self.data.shape[1:], dtype=np.float64)
        np.add.at(out_data, index, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[index])

        return self._make(out_data, (self,), backward)

    # -- autograd driver -----------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless ``grad`` given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate_seed(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate_seed(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.asarray(grad, dtype=np.float64).copy()
        else:
            self.grad += grad


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-zeros tensor of the given shape."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-ones tensor of the given shape."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)
