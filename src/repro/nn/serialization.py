"""Model checkpointing: save/load a Module's state dict as ``.npz``."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.layers import Module


#: npz keys with this prefix carry scalar metadata, not parameters.
_META_PREFIX = "__meta__"

#: Module attributes persisted alongside the parameters when present.
_META_ATTRIBUTES = ("decision_threshold",)


def save_module(module: Module, path: Union[str, Path]) -> None:
    """Write a module's parameters (plus metadata) to a ``.npz`` file.

    Scalar attributes listed in ``_META_ATTRIBUTES`` — notably the
    calibrated ``decision_threshold`` a trainer stashes on the model —
    travel with the weights so a reloaded model keeps its operating
    point.
    """
    state = module.state_dict()
    for name in _META_ATTRIBUTES:
        value = getattr(module, name, None)
        if value is not None:
            state[f"{_META_PREFIX}{name}"] = np.asarray(float(value))
    np.savez_compressed(str(path), **state)


def load_module(module: Module, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_module` into ``module``.

    The module must already have the identical architecture; names and
    shapes are validated by :meth:`Module.load_state_dict`.  Metadata
    keys are restored as plain attributes.
    """
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    for key in list(state):
        if key.startswith(_META_PREFIX):
            setattr(module, key[len(_META_PREFIX):], float(state.pop(key)))
    module.load_state_dict(state)
