"""Optimizers: SGD with momentum and Adam (the paper trains with Adam,
learning rate 1e-4, Sec. 5.2)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base: holds parameters, steps on their ``.grad`` fields."""

    def __init__(self, parameters: List[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: List[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0.0:
                v = self._velocity.get(id(param))
                if v is None:
                    v = np.zeros_like(param.data)
                v = self.momentum * v + update
                self._velocity[id(param)] = v
                update = v
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        parameters: List[Tensor],
        lr: float = 1e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = b1 * m + (1.0 - b1) * grad
            v = b2 * v + (1.0 - b2) * grad * grad
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
