"""Loss functions.

The paper optimizes binary cross-entropy on the policy label (Eq. 11).
Both the probability-space form and the numerically stable logit-space
form are provided; training uses the logit form.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def bce_loss(probability: Tensor, target: float, eps: float = 1e-12) -> Tensor:
    """Eq. (11): ``-(y log p + (1-y) log(1-p))`` for a scalar prediction.

    ``probability`` must already be in (0, 1); it is clamped away from the
    endpoints by ``eps`` for numerical safety (clamping is constant w.r.t.
    the graph, so gradients at the endpoints saturate rather than explode).
    """
    target = float(target)
    if not 0.0 <= target <= 1.0:
        raise ValueError("target must be in [0, 1]")
    p = probability
    # Clamp via data (outside the graph) to avoid log(0).
    p_data = np.clip(p.data, eps, 1.0 - eps)
    safe = Tensor(p_data)
    safe.requires_grad = p.requires_grad
    if p.requires_grad:
        safe._parents = (p,)

        def backward(grad: np.ndarray) -> None:
            inside = (p.data > eps) & (p.data < 1.0 - eps)
            p._accumulate(grad * inside)

        safe._backward = backward
    return -(target * safe.log() + (1.0 - target) * (1.0 - safe).log()).sum()


def bce_with_logits(logit: Tensor, target: float) -> Tensor:
    """Numerically stable BCE on a raw logit.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))`` which never overflows.
    """
    target = float(target)
    if not 0.0 <= target <= 1.0:
        raise ValueError("target must be in [0, 1]")
    x = logit
    relu_x = x.relu()
    abs_x = relu_x + (-x).relu()
    return (relu_x - x * target + (1.0 + (-abs_x).exp()).log()).sum()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
