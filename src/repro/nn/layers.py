"""Neural-network modules: parameter containers and standard layers.

:class:`Module` mirrors the familiar torch API surface — ``parameters()``
walks nested submodules and registered :class:`Tensor` parameters,
``state_dict``/``load_state_dict`` (de)serialize — so the model code in
:mod:`repro.models` reads like its PyTorch original.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Module:
    """Base class: anything with trainable parameters."""

    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its submodules."""
        params: List[Tensor] = []
        seen = set()
        for value in self.__dict__.values():
            for param in _collect(value):
                if id(param) not in seen:
                    seen.add(id(param))
                    params.append(param)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- serialization -----------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for key, value in sorted(self.__dict__.items()):
            name = f"{prefix}{key}"
            yield from _named(value, name)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise ValueError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


def _collect(value) -> Iterator[Tensor]:
    if isinstance(value, Tensor):
        if value.requires_grad:
            yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item)


def _named(value, name: str) -> Iterator[tuple]:
    if isinstance(value, Tensor):
        if value.requires_grad:
            yield name, value
    elif isinstance(value, Module):
        for sub_name, param in value.named_parameters(prefix=f"{name}."):
            yield sub_name, param
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _named(item, f"{name}.{i}")


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Apply modules (or plain callables such as activations) in order."""

    def __init__(self, *steps: Callable):
        self.steps = list(steps)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x


def relu(x: Tensor) -> Tensor:
    """Functional ReLU (for use inside Sequential)."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Functional sigmoid (for use inside Sequential)."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Functional tanh (for use inside Sequential)."""
    return x.tanh()


class MLP(Module):
    """Multi-layer perceptron with ReLU between hidden layers.

    ``dims = [in, h1, ..., out]``; no activation after the final layer
    (callers append sigmoid for probabilities).
    """

    def __init__(
        self,
        dims: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        activation: Callable[[Tensor], Tensor] = relu,
    ):
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.layers = [
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)
        ]
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i + 1 < len(self.layers):
                x = self.activation(x)
        return x


class LayerNorm(Module):
    """Per-row layer normalization with learnable scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1 if x.ndim > 1 else None, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1 if x.ndim > 1 else None, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
