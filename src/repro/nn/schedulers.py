"""Learning-rate schedulers.

Small, torch-like schedulers that mutate their optimizer's ``lr`` when
:meth:`step` is called once per epoch.  Used by the trainer's longer
runs, where a decaying rate stabilizes the batch-size-1 regime the paper
trains in.
"""

from __future__ import annotations

import math
from typing import List

from repro.nn.optim import Optimizer


class Scheduler:
    """Base: tracks epochs and rewrites ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(Scheduler):
    """No-op scheduler (keeps the base rate)."""

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupLR(Scheduler):
    """Linear warmup to the base rate, then delegate to another scheduler."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, after: Scheduler):
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.after = after

    def _lr_at(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        return self.after._lr_at(epoch - self.warmup_epochs)


class EarlyStopping:
    """Patience-based stopping on a monitored value (lower is better)."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = math.inf
        self.bad_epochs = 0
        self.history: List[float] = []

    def update(self, value: float) -> bool:
        """Record a value; returns True when training should stop."""
        self.history.append(value)
        if value < self.best - self.min_delta:
            self.best = value
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
        return self.bad_epochs >= self.patience
