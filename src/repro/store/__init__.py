"""Queryable run store: index every trace, bench, fuzz, and chaos run.

The observability layer (PR 3) made every heavyweight path emit
self-describing trace manifests; this package is the layer above it —
the fleet-scale accounting the ROADMAP names.  One SQLite database
(:class:`~repro.store.store.RunStore`) indexes every observed run into
``runs`` / ``phases`` / ``metrics`` / ``artifacts`` rows, plus
``bench_results`` series flattened from ``BENCH_*.json`` files, so
questions like *"which labelling sweeps ran last week"*, *"did arena
props/sec regress since commit X"*, or *"which chaos scenarios ever
went red"* are one query instead of a JSONL grep.

Auto-registration is caller-free: ``start_run`` registers every traced
run the moment its trace is created (status ``running``), and
``Observer.finish`` ingests the finished trace — so solve, dataset,
train, bench, fuzz, serve, and chaos runs all land in
``<trace_dir>/runstore.sqlite`` (or ``$REPRO_STORE``) without any
caller changes.  The benchmark writer and the fuzz corpus register
their artifacts the same way.  Set ``REPRO_STORE=off`` to disable.

Surfaces:

* ``repro query runs|metrics|traces|bench-trend`` — filterable
  table/csv/json output (:mod:`repro.store.render`);
* ``repro trend`` — ingest ``BENCH_*.json`` across commits, compute
  rolling-baseline deltas, and gate regressions
  (:mod:`repro.store.trend`);
* ``repro report <run-id>`` / ``--latest kind=bench`` — resolve trace
  artifacts through the store instead of raw paths.

See ``docs/run_store.md`` for the schema and a query cookbook.
"""

from repro.store.render import FORMATS, format_rows, humanize_unix
from repro.store.schema import (
    ARTIFACT_COLUMNS,
    METRIC_COLUMNS,
    RUN_COLUMNS,
    STORE_SCHEMA_VERSION,
    TREND_COLUMNS,
)
from repro.store.store import (
    IngestReport,
    RunStore,
    StoreError,
    StoreIngestError,
    file_sha256,
    resolve_auto_store,
)
from repro.store.trend import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    TrendCheck,
    bench_trend,
    check_regression,
)

__all__ = [
    "ARTIFACT_COLUMNS",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "FORMATS",
    "IngestReport",
    "METRIC_COLUMNS",
    "RUN_COLUMNS",
    "RunStore",
    "STORE_SCHEMA_VERSION",
    "StoreError",
    "StoreIngestError",
    "TREND_COLUMNS",
    "TrendCheck",
    "bench_trend",
    "check_regression",
    "file_sha256",
    "format_rows",
    "humanize_unix",
    "resolve_auto_store",
]
