"""SQLite schema for the run store (see :mod:`repro.store.store`).

One database indexes every observed run — traced solves, labelling
sweeps, benchmark suites, fuzz campaigns, serve/chaos sessions — plus
standalone benchmark result files, in five tables:

* ``runs``          — one row per run: kind, status, commit, policy,
  wall clock, event/warning counts, the manifest config as JSON;
* ``phases``        — per-run phase totals (the ``run-end`` span
  summary): name, count, seconds;
* ``metrics``       — flattened metrics snapshot: counters, gauges,
  histogram summaries (full histogram JSON kept in ``payload_json``),
  and per-event-type counts (``events.<type>`` rows);
* ``artifacts``     — content-addressed file references (sha256 +
  size): the trace, its manifest, ingested ``BENCH_*.json`` files,
  shrunk fuzz-corpus repros.  The store never copies artifact bytes —
  it records where they live and what they hashed to;
* ``bench_results`` — one row per (workload, engine) measurement from
  a ``BENCH_*.json`` file, the substrate for cross-commit trend
  queries and the regression gate.

``quarantine`` records inputs the ingester refused (corrupt JSON,
schema-version skew, empty traces) — ingest never aborts a batch, it
quarantines and continues.  ``meta`` pins the store schema version so
a newer store is rejected loudly instead of misread.

Everything is plain SQLite (stdlib ``sqlite3``), WAL-journaled when the
filesystem allows, so concurrent writers — parallel sweeps finishing at
once — serialize on short transactions instead of corrupting the index.
"""

from __future__ import annotations

#: Bump when tables/columns change incompatibly.  An older library
#: refuses to open a newer store (the reverse is handled by additive
#: migrations; none exist yet).
STORE_SCHEMA_VERSION = 1

#: Executed on every open; all statements are idempotent.
SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY,
    run_id         TEXT NOT NULL UNIQUE,
    kind           TEXT NOT NULL,
    status         TEXT NOT NULL,
    exit_code      INTEGER,
    commit_ref     TEXT NOT NULL DEFAULT '',
    policy         TEXT NOT NULL DEFAULT '',
    created_unix   REAL NOT NULL DEFAULT 0,
    wall_seconds   REAL NOT NULL DEFAULT 0,
    events         INTEGER NOT NULL DEFAULT 0,
    warnings       INTEGER NOT NULL DEFAULT 0,
    format_version INTEGER NOT NULL DEFAULT 0,
    config_json    TEXT NOT NULL DEFAULT '{}',
    ingested_unix  REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_runs_kind    ON runs (kind);
CREATE INDEX IF NOT EXISTS idx_runs_commit  ON runs (commit_ref);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs (created_unix);

CREATE TABLE IF NOT EXISTS phases (
    run_ref INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    count   INTEGER NOT NULL DEFAULT 0,
    seconds REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_phases_run ON phases (run_ref);

CREATE TABLE IF NOT EXISTS metrics (
    run_ref      INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name         TEXT NOT NULL,
    kind         TEXT NOT NULL,
    value        REAL NOT NULL DEFAULT 0,
    payload_json TEXT
);
CREATE INDEX IF NOT EXISTS idx_metrics_run  ON metrics (run_ref);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);

CREATE TABLE IF NOT EXISTS artifacts (
    id      INTEGER PRIMARY KEY,
    run_ref INTEGER REFERENCES runs (id) ON DELETE CASCADE,
    role    TEXT NOT NULL,
    path    TEXT NOT NULL,
    sha256  TEXT NOT NULL,
    bytes   INTEGER NOT NULL DEFAULT 0,
    UNIQUE (run_ref, role, path)
);
CREATE INDEX IF NOT EXISTS idx_artifacts_sha ON artifacts (sha256);

CREATE TABLE IF NOT EXISTS bench_results (
    id           INTEGER PRIMARY KEY,
    run_ref      INTEGER REFERENCES runs (id) ON DELETE CASCADE,
    source       TEXT NOT NULL,
    commit_ref   TEXT NOT NULL DEFAULT '',
    workload     TEXT NOT NULL,
    engine       TEXT NOT NULL,
    propagations INTEGER NOT NULL DEFAULT 0,
    seconds      REAL NOT NULL DEFAULT 0,
    props_per_sec REAL NOT NULL DEFAULT 0,
    smoke        INTEGER NOT NULL DEFAULT 0,
    created_unix REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_bench_series
    ON bench_results (workload, engine, created_unix);

CREATE TABLE IF NOT EXISTS quarantine (
    id               INTEGER PRIMARY KEY,
    path             TEXT NOT NULL,
    reason           TEXT NOT NULL,
    detail           TEXT NOT NULL DEFAULT '',
    quarantined_unix REAL NOT NULL DEFAULT 0
);
"""

#: Columns (and their order) the ``runs`` query surface exposes.
RUN_COLUMNS = (
    "run_id", "kind", "status", "exit_code", "commit_ref", "policy",
    "created_unix", "wall_seconds", "events", "warnings",
)

#: Columns the ``metrics`` query surface exposes.
METRIC_COLUMNS = ("run_id", "kind", "name", "metric_kind", "value")

#: Columns the ``traces``/artifact query surface exposes.
ARTIFACT_COLUMNS = ("run_id", "kind", "role", "path", "sha256", "bytes")

#: Columns the ``bench-trend`` query surface exposes.
TREND_COLUMNS = (
    "source", "commit_ref", "workload", "engine", "metric",
    "value", "baseline", "delta_pct",
)
