"""The queryable run store: ingest + query over every observed run.

:class:`RunStore` owns one SQLite database (see
:mod:`repro.store.schema`) and exposes three surfaces:

* **registration** — :meth:`RunStore.register_run` inserts a ``running``
  placeholder the moment ``start_run`` creates a trace, so even a run
  that crashes before ``run-end`` is visible (and queryable as
  unfinished);
* **ingest** — :meth:`RunStore.ingest_trace` parses a finished trace
  (plus its sibling manifest) into ``runs`` / ``phases`` / ``metrics``
  / ``artifacts`` rows; :meth:`RunStore.ingest_bench` flattens a
  ``BENCH_*.json`` file into ``bench_results`` series rows.
  :meth:`RunStore.ingest_many` is the batch form with the ingest
  contract the tests pin: **quarantine and continue** — a corrupt,
  truncated, or schema-skewed input lands in the ``quarantine`` table
  and the rest of the batch still ingests;
* **query** — :meth:`RunStore.runs`, :meth:`RunStore.metrics`,
  :meth:`RunStore.artifacts`, :meth:`RunStore.bench_rows`,
  :meth:`RunStore.latest_run` — plain-dict rows for the ``repro
  query`` CLI and the trend gate.

Ingest is idempotent: runs are keyed by ``run_id`` (bench files by the
sha256 of their bytes), and re-ingesting replaces that run's dependent
rows instead of duplicating them.  Writers from separate processes are
safe: WAL journaling where available, a 30s busy timeout, and one
short transaction per run.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import TRACE_FORMAT_VERSION, read_trace
from repro.store.schema import SCHEMA_SQL, STORE_SCHEMA_VERSION

#: ``REPRO_STORE`` values that switch auto-registration off entirely.
_OFF_VALUES = ("0", "off", "none", "disabled", "false")

#: Exit codes that mean the run did what it was asked (``repro solve``
#: answers with 10/20 for SAT/UNSAT by DIMACS convention).
_OK_EXIT_CODES = (0, 10, 20)


class StoreError(Exception):
    """Base error for run-store failures."""


class StoreIngestError(StoreError):
    """One input could not be ingested (quarantined in batch mode)."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


@dataclass
class IngestReport:
    """Outcome of a batch ingest (see :meth:`RunStore.ingest_many`)."""

    ingested: int = 0
    updated: int = 0
    quarantined: int = 0
    warnings: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Inputs touched, good or bad."""
        return self.ingested + self.updated + self.quarantined


def resolve_auto_store(
    trace_dir: Optional[Union[str, Path]]
) -> Optional[Path]:
    """Where auto-registration should write, or ``None`` when disabled.

    ``REPRO_STORE`` wins: a path routes every run there, an off-value
    (``0``/``off``/``none``) disables the store entirely.  Otherwise a
    traced run defaults to ``<trace_dir>/runstore.sqlite`` — beside the
    traces it indexes — and an untraced run has no store.
    """
    env = os.environ.get("REPRO_STORE", "").strip()
    if env.lower() in _OFF_VALUES:
        return None
    if env:
        return Path(env)
    if trace_dir is None:
        return None
    return Path(trace_dir) / "runstore.sqlite"


def file_sha256(path: Union[str, Path]) -> Tuple[str, int]:
    """(hex digest, byte count) of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def _sibling_manifest(trace_path: Path) -> Path:
    """``<stem>.manifest.json`` beside a ``<stem>.jsonl`` trace."""
    return trace_path.with_name(trace_path.name[: -len(".jsonl")]
                                + ".manifest.json") \
        if trace_path.name.endswith(".jsonl") \
        else trace_path.with_suffix(".manifest.json")


class RunStore:
    """One SQLite run index; safe for short-lived concurrent writers."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA busy_timeout = 30000")
        try:
            self._conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.DatabaseError:
            pass  # network filesystems: rollback journal is fine
        self._conn.executescript(SCHEMA_SQL)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(STORE_SCHEMA_VERSION)),
            )
            self._conn.commit()
        elif int(row["value"]) > STORE_SCHEMA_VERSION:
            version = int(row["value"])
            self._conn.close()
            raise StoreError(
                f"{self.path} has store schema v{version}, newer than "
                f"this library's v{STORE_SCHEMA_VERSION} — upgrade the "
                f"code, the store is not downgradable"
            )

    def close(self) -> None:
        """Commit and release the connection (idempotent)."""
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration (the start_run hook) --------------------------------

    def register_run(
        self,
        run_id: str,
        kind: str,
        commit: str = "",
        policy: str = "",
        created_unix: float = 0.0,
        config: Optional[Dict[str, Any]] = None,
        trace_path: Optional[Union[str, Path]] = None,
        manifest_path: Optional[Union[str, Path]] = None,
    ) -> int:
        """Insert a ``running`` placeholder row; returns the row id.

        Called by ``start_run`` before any work happens, so a run that
        dies mid-flight still appears (status ``running``) instead of
        vanishing.  A later :meth:`ingest_trace` of the same ``run_id``
        replaces the placeholder with the finished record.
        """
        cur = self._conn.execute(
            """
            INSERT INTO runs (run_id, kind, status, commit_ref, policy,
                              created_unix, format_version, config_json,
                              ingested_unix)
            VALUES (?, ?, 'running', ?, ?, ?, ?, ?, ?)
            ON CONFLICT (run_id) DO UPDATE SET
                kind = excluded.kind,
                commit_ref = excluded.commit_ref,
                policy = excluded.policy,
                created_unix = excluded.created_unix,
                config_json = excluded.config_json
            """,
            (
                run_id, kind, commit, policy, created_unix,
                TRACE_FORMAT_VERSION,
                json.dumps(config or {}, sort_keys=True, default=str),
                time.time(),
            ),
        )
        run_ref = cur.lastrowid or self._run_ref(run_id)
        for role, path in (("trace", trace_path), ("manifest", manifest_path)):
            if path is not None and Path(path).exists():
                self._record_artifact(run_ref, role, Path(path))
        self._conn.commit()
        return run_ref

    def register_artifact(
        self,
        path: Union[str, Path],
        role: str,
        run_id: Optional[str] = None,
    ) -> None:
        """Record a standalone artifact (e.g. a shrunk fuzz repro)."""
        run_ref = self._run_ref(run_id) if run_id else None
        self._record_artifact(run_ref, role, Path(path))
        self._conn.commit()

    def _record_artifact(
        self, run_ref: Optional[int], role: str, path: Path
    ) -> None:
        sha, size = file_sha256(path)
        self._conn.execute(
            """
            INSERT INTO artifacts (run_ref, role, path, sha256, bytes)
            VALUES (?, ?, ?, ?, ?)
            ON CONFLICT (run_ref, role, path) DO UPDATE SET
                sha256 = excluded.sha256, bytes = excluded.bytes
            """,
            (run_ref, role, str(Path(path).resolve()), sha, size),
        )

    def _run_ref(self, run_id: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT id FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return row["id"] if row else None

    # -- trace ingest ------------------------------------------------------

    def ingest_trace(
        self,
        trace_path: Union[str, Path],
        manifest_path: Optional[Union[str, Path]] = None,
    ) -> str:
        """Index one trace file; returns ``"inserted"`` or ``"updated"``.

        Raises :class:`StoreIngestError` on unusable input — batch
        callers go through :meth:`ingest_many`, which converts that
        into a quarantine row and continues.
        """
        trace_path = Path(trace_path)
        try:
            loaded = read_trace(trace_path)
            events, errors, warnings = (
                loaded.events, loaded.errors, loaded.warnings
            )
        except OSError as exc:
            raise StoreIngestError("unreadable-trace", str(exc))
        except ValueError as exc:
            raise StoreIngestError("corrupt-trace", str(exc))
        if not events:
            detail = errors[0] if errors else "no parseable events"
            raise StoreIngestError("empty-trace", detail)

        manifest = self._load_manifest(trace_path, manifest_path, events)
        if manifest is None:
            raise StoreIngestError(
                "missing-manifest",
                "no run-start event and no readable sibling manifest",
            )
        version = int(
            manifest.get("trace_format_version")
            or next(
                (e.get("format_version", 0) for e in events
                 if e["event"] == "run-start"), 0
            )
            or 0
        )
        if version > TRACE_FORMAT_VERSION:
            raise StoreIngestError(
                "schema-version-skew",
                f"trace format v{version} is newer than this library's "
                f"v{TRACE_FORMAT_VERSION}",
            )

        run_id = manifest.get("run_id") or events[0]["run_id"]
        kind = manifest.get("command") or "unknown"
        run_end = next(
            (e for e in reversed(events) if e["event"] == "run-end"), None
        )
        exit_code = None
        status = "incomplete"
        phases: Dict[str, Dict[str, float]] = {}
        metrics: Dict[str, Any] = {}
        if run_end is not None:
            raw_code = run_end.get("exit_code")
            exit_code = int(raw_code) if raw_code is not None else None
            status = (
                "ok" if exit_code in _OK_EXIT_CODES or exit_code is None
                else "failed"
            )
            phases = run_end.get("phases", {}) or {}
            metrics = run_end.get("metrics", {}) or {}

        event_counts: Dict[str, int] = {}
        for record in events:
            event_counts[record["event"]] = (
                event_counts.get(record["event"], 0) + 1
            )

        existed = self._run_ref(run_id) is not None
        with self._conn:  # one transaction per run
            self._conn.execute(
                """
                INSERT INTO runs (run_id, kind, status, exit_code,
                                  commit_ref, policy, created_unix,
                                  wall_seconds, events, warnings,
                                  format_version, config_json,
                                  ingested_unix)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (run_id) DO UPDATE SET
                    kind = excluded.kind,
                    status = excluded.status,
                    exit_code = excluded.exit_code,
                    commit_ref = excluded.commit_ref,
                    policy = excluded.policy,
                    created_unix = excluded.created_unix,
                    wall_seconds = excluded.wall_seconds,
                    events = excluded.events,
                    warnings = excluded.warnings,
                    format_version = excluded.format_version,
                    config_json = excluded.config_json,
                    ingested_unix = excluded.ingested_unix
                """,
                (
                    run_id, kind, status, exit_code,
                    str(manifest.get("git", "")),
                    str(manifest.get("policy", "")),
                    float(manifest.get("created_unix", 0.0) or 0.0),
                    float(events[-1]["ts"]),
                    len(events),
                    len(warnings),
                    version,
                    json.dumps(
                        manifest.get("config", {}), sort_keys=True,
                        default=str,
                    ),
                    time.time(),
                ),
            )
            run_ref = self._run_ref(run_id)
            self._conn.execute(
                "DELETE FROM phases WHERE run_ref = ?", (run_ref,)
            )
            self._conn.execute(
                "DELETE FROM metrics WHERE run_ref = ?", (run_ref,)
            )
            for name, entry in sorted(phases.items()):
                self._conn.execute(
                    "INSERT INTO phases (run_ref, name, count, seconds) "
                    "VALUES (?, ?, ?, ?)",
                    (run_ref, name, int(entry.get("count", 0)),
                     float(entry.get("seconds", 0.0))),
                )
            self._insert_metrics(run_ref, metrics, event_counts)
            self._record_artifact(run_ref, "trace", trace_path)
            sibling = (
                Path(manifest_path) if manifest_path is not None
                else _sibling_manifest(trace_path)
            )
            if sibling.exists():
                self._record_artifact(run_ref, "manifest", sibling)
        return "updated" if existed else "inserted"

    def _insert_metrics(
        self,
        run_ref: int,
        metrics: Dict[str, Any],
        event_counts: Dict[str, int],
    ) -> None:
        rows: List[Tuple[int, str, str, float, Optional[str]]] = []
        for name, value in sorted(metrics.get("counters", {}).items()):
            rows.append((run_ref, name, "counter", float(value), None))
        for name, value in sorted(metrics.get("gauges", {}).items()):
            rows.append((run_ref, name, "gauge", float(value), None))
        for name, snap in sorted(metrics.get("histograms", {}).items()):
            rows.append((
                run_ref, name, "histogram",
                float(snap.get("count", 0)),
                json.dumps(snap, sort_keys=True, default=str),
            ))
        for name, count in sorted(event_counts.items()):
            rows.append((run_ref, f"events.{name}", "event", float(count),
                         None))
        self._conn.executemany(
            "INSERT INTO metrics (run_ref, name, kind, value, payload_json) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )

    def _load_manifest(
        self,
        trace_path: Path,
        manifest_path: Optional[Union[str, Path]],
        events: List[Dict[str, Any]],
    ) -> Optional[Dict[str, Any]]:
        """Embedded run-start manifest, else the sibling file, else None."""
        for record in events:
            if record["event"] == "run-start":
                manifest = record.get("manifest")
                if isinstance(manifest, dict):
                    return manifest
        candidate = (
            Path(manifest_path) if manifest_path is not None
            else _sibling_manifest(trace_path)
        )
        try:
            loaded = json.loads(candidate.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return loaded if isinstance(loaded, dict) else None

    # -- bench ingest ------------------------------------------------------

    def ingest_bench(
        self,
        path: Union[str, Path],
        commit: Optional[str] = None,
    ) -> int:
        """Flatten one ``BENCH_*.json`` into series rows; returns count.

        The synthetic run row is keyed by the file's content hash, so
        re-ingesting the identical file replaces (never duplicates) its
        series rows.  Ordering for trend queries comes from the
        payload's ``created_unix`` stamp when present, else the file
        mtime — so a freshly measured file always sorts after the
        committed baseline it is compared against.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreIngestError("unreadable-bench", str(exc))
        except ValueError as exc:
            raise StoreIngestError("corrupt-bench", str(exc))
        if not isinstance(payload, dict) or "bcp" not in payload:
            raise StoreIngestError(
                "unrecognized-bench", f"{path.name} has no 'bcp' section"
            )
        bcp = payload["bcp"]
        workloads = bcp.get("workloads", {})
        aggregate = bcp.get("aggregate", {})
        if not isinstance(workloads, dict) or not workloads:
            raise StoreIngestError(
                "unrecognized-bench", f"{path.name} has no workloads"
            )

        sha, size = file_sha256(path)
        run_id = f"b-{sha[:12]}"
        commit_ref = str(commit or payload.get("git", "") or "")
        created = float(
            payload.get("created_unix") or path.stat().st_mtime
        )
        smoke = 1 if payload.get("smoke") else 0

        rows: List[Tuple[str, str, int, float, float]] = []
        for workload, engines in sorted(workloads.items()):
            for engine, cell in sorted(engines.items()):
                if not isinstance(cell, dict):
                    continue  # speedup ratios, recomputed at query time
                rows.append((
                    workload, engine,
                    int(cell.get("propagations", 0)),
                    float(cell.get("seconds", 0.0)),
                    float(cell.get("props_per_sec", 0.0)),
                ))
        for engine, pps in sorted(aggregate.items()):
            if engine.startswith("speedup"):
                continue
            rows.append(("aggregate", engine, 0, 0.0, float(pps)))

        with self._conn:
            self._conn.execute(
                """
                INSERT INTO runs (run_id, kind, status, commit_ref,
                                  created_unix, config_json, ingested_unix)
                VALUES (?, 'bench-file', 'ok', ?, ?, ?, ?)
                ON CONFLICT (run_id) DO UPDATE SET
                    commit_ref = excluded.commit_ref,
                    created_unix = excluded.created_unix,
                    ingested_unix = excluded.ingested_unix
                """,
                (
                    run_id, commit_ref, created,
                    json.dumps({"source": str(path), "smoke": bool(smoke)}),
                    time.time(),
                ),
            )
            run_ref = self._run_ref(run_id)
            self._conn.execute(
                "DELETE FROM bench_results WHERE run_ref = ?", (run_ref,)
            )
            self._conn.executemany(
                """
                INSERT INTO bench_results
                    (run_ref, source, commit_ref, workload, engine,
                     propagations, seconds, props_per_sec, smoke,
                     created_unix)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                [
                    (run_ref, path.name, commit_ref, workload, engine,
                     props, seconds, pps, smoke, created)
                    for workload, engine, props, seconds, pps in rows
                ],
            )
            self._record_artifact(run_ref, "bench-json", path)
        return len(rows)

    # -- batch ingest (quarantine and continue) ---------------------------

    def ingest_many(
        self, paths: Sequence[Union[str, Path]]
    ) -> IngestReport:
        """Ingest a mixed batch of traces and bench files.

        The contract the tests pin: a bad input **never aborts the
        batch**.  Each failure becomes a ``quarantine`` row (reason +
        detail) and a line in the returned report; every good input
        still lands.
        """
        report = IngestReport()
        for path in paths:
            path = Path(path)
            try:
                if path.name.endswith(".manifest.json"):
                    continue  # ingested alongside its trace
                if path.suffix == ".json":
                    self.ingest_bench(path)
                    report.ingested += 1
                else:
                    outcome = self.ingest_trace(path)
                    if outcome == "updated":
                        report.updated += 1
                    else:
                        report.ingested += 1
                    report.warnings += len(read_trace(path).warnings)
            except StoreIngestError as exc:
                self._quarantine(path, exc.reason, exc.detail)
                report.quarantined += 1
                report.problems.append(f"{path}: {exc}")
            except Exception as exc:  # defensive: never abort the batch
                self._quarantine(path, "ingest-error",
                                 f"{type(exc).__name__}: {exc}")
                report.quarantined += 1
                report.problems.append(f"{path}: {exc}")
        return report

    def _quarantine(self, path: Path, reason: str, detail: str) -> None:
        self._conn.execute(
            "INSERT INTO quarantine (path, reason, detail, quarantined_unix) "
            "VALUES (?, ?, ?, ?)",
            (str(path), reason, detail, time.time()),
        )
        self._conn.commit()

    def quarantined(self) -> List[Dict[str, Any]]:
        """All quarantine rows, oldest first."""
        rows = self._conn.execute(
            "SELECT path, reason, detail, quarantined_unix "
            "FROM quarantine ORDER BY id"
        ).fetchall()
        return [dict(row) for row in rows]

    # -- queries -----------------------------------------------------------

    def runs(
        self,
        kind: Optional[str] = None,
        status: Optional[str] = None,
        commit: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Filtered run rows, newest first."""
        clauses: List[str] = []
        params: List[Any] = []
        for column, value in (
            ("kind", kind), ("status", status), ("commit_ref", commit)
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if since is not None:
            clauses.append("created_unix >= ?")
            params.append(since)
        if until is not None:
            clauses.append("created_unix <= ?")
            params.append(until)
        sql = (
            "SELECT run_id, kind, status, exit_code, commit_ref, policy, "
            "created_unix, wall_seconds, events, warnings FROM runs"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_unix DESC, id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [dict(row) for row in self._conn.execute(sql, params)]

    def run(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One full run record (config included), or ``None``."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            return None
        record = dict(row)
        record["config"] = json.loads(record.pop("config_json") or "{}")
        return record

    def latest_run(self, kind: str) -> Optional[Dict[str, Any]]:
        """The most recently created run of one kind, or ``None``."""
        row = self._conn.execute(
            "SELECT run_id FROM runs WHERE kind = ? "
            "ORDER BY created_unix DESC, id DESC LIMIT 1",
            (kind,),
        ).fetchone()
        return self.run(row["run_id"]) if row else None

    def metrics(
        self,
        run_id: Optional[str] = None,
        name: Optional[str] = None,
        metric_kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Flattened metric rows joined with their run identity.

        ``name`` matches exactly, unless it contains a ``*`` or ``%``
        wildcard — then SQL ``LIKE`` semantics apply (``*`` is mapped
        to ``%``, so ``serve.*`` selects every serve metric).
        """
        clauses: List[str] = []
        params: List[Any] = []
        if run_id is not None:
            clauses.append("r.run_id = ?")
            params.append(run_id)
        if name is not None:
            if "*" in name or "%" in name:
                clauses.append("m.name LIKE ?")
                params.append(name.replace("*", "%"))
            else:
                clauses.append("m.name = ?")
                params.append(name)
        if metric_kind is not None:
            clauses.append("m.kind = ?")
            params.append(metric_kind)
        sql = (
            "SELECT r.run_id AS run_id, r.kind AS kind, m.name AS name, "
            "m.kind AS metric_kind, m.value AS value "
            "FROM metrics m JOIN runs r ON r.id = m.run_ref"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY r.created_unix DESC, m.name"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [dict(row) for row in self._conn.execute(sql, params)]

    def phases(self, run_id: str) -> List[Dict[str, Any]]:
        """Phase totals for one run (empty for unknown runs)."""
        rows = self._conn.execute(
            "SELECT p.name AS name, p.count AS count, p.seconds AS seconds "
            "FROM phases p JOIN runs r ON r.id = p.run_ref "
            "WHERE r.run_id = ? ORDER BY p.seconds DESC",
            (run_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def artifacts(
        self,
        run_id: Optional[str] = None,
        role: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Artifact references, newest-run first."""
        clauses: List[str] = []
        params: List[Any] = []
        if run_id is not None:
            clauses.append("r.run_id = ?")
            params.append(run_id)
        if role is not None:
            clauses.append("a.role = ?")
            params.append(role)
        if kind is not None:
            clauses.append("r.kind = ?")
            params.append(kind)
        sql = (
            "SELECT r.run_id AS run_id, r.kind AS kind, a.role AS role, "
            "a.path AS path, a.sha256 AS sha256, a.bytes AS bytes "
            "FROM artifacts a LEFT JOIN runs r ON r.id = a.run_ref"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY a.id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [dict(row) for row in self._conn.execute(sql, params)]

    def trace_path(self, run_id: str) -> Optional[Path]:
        """The stored trace artifact path for one run, or ``None``."""
        for row in self.artifacts(run_id=run_id, role="trace"):
            return Path(row["path"])
        return None

    def bench_rows(
        self,
        workload: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Bench series rows, oldest first (trend order)."""
        clauses: List[str] = []
        params: List[Any] = []
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if engine is not None:
            clauses.append("engine = ?")
            params.append(engine)
        sql = (
            "SELECT run_ref, source, commit_ref, workload, engine, "
            "propagations, seconds, props_per_sec, smoke, created_unix "
            "FROM bench_results"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_unix, id"
        return [dict(row) for row in self._conn.execute(sql, params)]

    def counts(self) -> Dict[str, int]:
        """Row counts per table (the smoke test's round-trip check)."""
        out: Dict[str, int] = {}
        for table in ("runs", "phases", "metrics", "artifacts",
                      "bench_results", "quarantine"):
            out[table] = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM {table}"
            ).fetchone()["n"]
        return out
