"""Row rendering for the query CLI: aligned table, csv, or json.

The shape follows percell3's query CLI (SNIPPETS.md): every query
returns ``(rows, columns)`` and one formatter turns them into the
requested output.  The table form is plain aligned text (no third-party
table library — the repo is stdlib + numpy only), csv goes through the
stdlib writer so quoting is correct, and json is the raw row dicts.
"""

from __future__ import annotations

import csv
import io
import json
import time
from typing import Any, Dict, List, Sequence

#: Formats ``--format`` accepts.
FORMATS = ("table", "csv", "json")


def _cell(value: Any) -> str:
    """One value as display text (floats trimmed, None blanked)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def humanize_unix(value: Any) -> str:
    """A unix timestamp as local ``YYYY-MM-DD HH:MM:SS`` (or blank)."""
    try:
        stamp = float(value)
    except (TypeError, ValueError):
        return ""
    if stamp <= 0:
        return ""
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stamp))


def format_rows(
    rows: List[Dict[str, Any]],
    columns: Sequence[str],
    fmt: str = "table",
) -> str:
    """Render rows in the requested format; returns the full text.

    ``table`` right-aligns numeric columns and pads with the widest
    cell; ``csv`` emits a header row then data rows; ``json`` emits the
    row dicts restricted to ``columns`` (stable key order).
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r} (expected {FORMATS})")
    if fmt == "json":
        shaped = [{col: row.get(col) for col in columns} for row in rows]
        return json.dumps(shaped, indent=2, default=str)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([_cell(row.get(col)) for col in columns])
        return buffer.getvalue().rstrip("\n")
    # table
    if not rows:
        return "(no rows)"
    rendered = [[_cell(row.get(col)) for col in columns] for row in rows]
    numeric = [
        all(
            isinstance(row.get(col), (int, float)) or row.get(col) is None
            for row in rows
        )
        for col in columns
    ]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    def fit(text: str, i: int) -> str:
        return text.rjust(widths[i]) if numeric[i] else text.ljust(widths[i])

    lines = [
        "  ".join(fit(str(col), i) for i, col in enumerate(columns)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for line in rendered:
        lines.append(
            "  ".join(fit(cell, i) for i, cell in enumerate(line)).rstrip()
        )
    return "\n".join(lines)
