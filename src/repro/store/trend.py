"""Cross-commit benchmark trends and the regression gate.

Feeds on the ``bench_results`` series the store builds from
``BENCH_*.json`` files (see :meth:`repro.store.store.RunStore.ingest_bench`)
and answers two questions:

* **trend** — for every (workload, engine) series, and for the derived
  host-independent ``arena_vs_new`` speedup ratio, what is each
  measurement's delta against a *rolling baseline* (the mean of the
  previous ``window`` measurements)?
* **gate** — did the newest measurement regress more than ``threshold``
  below its rolling baseline?  ``repro trend --check-regression`` turns
  the answer into a process exit code CI can consume.

The gate defaults to the ``speedup`` metric on the ``aggregate``
pseudo-workload: the arena/object throughput ratio is measured within
one process, so absolute machine speed cancels out — the same
reasoning as the existing ``bench_bcp_micro.py --check-regression``
gate, now generalized to any depth of history.  ``--per-workload``
widens the gate to every workload series (noisier on busy CI hosts;
the aggregate is the stable contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.store.store import RunStore

#: Default regression threshold: fail when the newest value drops more
#: than 10% below the rolling baseline (matches the bench smoke gate).
DEFAULT_THRESHOLD = 0.10

#: Default rolling-baseline depth (measurements, not commits).
DEFAULT_WINDOW = 5

#: The derived ratio series: arena props/sec over object-core props/sec
#: from the same benchmark run, per workload.
SPEEDUP_METRIC = "speedup_arena_vs_new"


@dataclass
class TrendCheck:
    """Outcome of a regression gate pass."""

    failures: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no series regressed past the threshold."""
        return not self.failures


def _series(rows: List[Dict[str, Any]]) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
    """Group bench rows into ordered (workload, engine) series."""
    grouped: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for row in rows:  # rows arrive oldest-first from bench_rows()
        grouped.setdefault((row["workload"], row["engine"]), []).append(row)
    return grouped


def _speedup_series(
    rows: List[Dict[str, Any]]
) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
    """Derive per-workload arena/new ratio series, one point per run."""
    by_run: Dict[Any, Dict[Tuple[str, str], Dict[str, Any]]] = {}
    run_order: List[Any] = []
    for row in rows:
        if row["run_ref"] not in by_run:
            run_order.append(row["run_ref"])
        by_run.setdefault(row["run_ref"], {})[
            (row["workload"], row["engine"])
        ] = row
    series: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for run_ref in run_order:
        cells = by_run[run_ref]
        workloads = {workload for workload, _ in cells}
        for workload in sorted(workloads):
            arena = cells.get((workload, "arena"))
            new = cells.get((workload, "new"))
            if arena is None or new is None or not new["props_per_sec"]:
                continue
            point = dict(arena)
            point["engine"] = SPEEDUP_METRIC
            point["props_per_sec"] = (
                arena["props_per_sec"] / new["props_per_sec"]
            )
            series.setdefault((workload, SPEEDUP_METRIC), []).append(point)
    return series


def bench_trend(
    store: RunStore,
    metric: str = "speedup",
    workload: Optional[str] = None,
    engine: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
) -> List[Dict[str, Any]]:
    """Trend rows: each measurement with its rolling-baseline delta.

    ``metric`` is ``"speedup"`` (the derived arena-vs-object ratio) or
    ``"props_per_sec"`` (raw per-engine throughput).  Rows are ordered
    series-by-series, oldest measurement first, and carry ``baseline``
    (rolling mean of up to ``window`` prior points, ``None`` for the
    first point of a series) and ``delta_pct``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    rows = store.bench_rows(workload=workload)
    if metric == "speedup":
        grouped = _speedup_series(rows)
    elif metric == "props_per_sec":
        if engine is not None:
            rows = [row for row in rows if row["engine"] == engine]
        grouped = _series(rows)
    else:
        raise ValueError(
            f"unknown trend metric {metric!r} "
            f"(expected 'speedup' or 'props_per_sec')"
        )

    out: List[Dict[str, Any]] = []
    for (series_workload, series_engine), points in sorted(grouped.items()):
        history: List[float] = []
        for point in points:
            value = float(point["props_per_sec"])
            baseline = (
                sum(history[-window:]) / len(history[-window:])
                if history else None
            )
            delta_pct = (
                round(100.0 * (value / baseline - 1.0), 2)
                if baseline else None
            )
            out.append({
                "source": point["source"],
                "commit_ref": point["commit_ref"],
                "workload": series_workload,
                "engine": series_engine,
                "metric": metric,
                "value": round(value, 4),
                "baseline": round(baseline, 4) if baseline else None,
                "delta_pct": delta_pct,
            })
            history.append(value)
    return out


def check_regression(
    store: RunStore,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    metric: str = "speedup",
    per_workload: bool = False,
) -> TrendCheck:
    """Gate the newest measurement of each series against its baseline.

    Only series with at least two measurements are gated (a lone
    baseline has nothing to regress from).  By default just the
    ``aggregate`` pseudo-workload is checked — the host-independent
    contract — unless ``per_workload`` widens it.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    rows = bench_trend(store, metric=metric, window=window)
    check = TrendCheck()
    last_by_series: Dict[Tuple[str, str], Dict[str, Any]] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for row in rows:
        key = (row["workload"], row["engine"])
        last_by_series[key] = row
        counts[key] = counts.get(key, 0) + 1
    for key, row in sorted(last_by_series.items()):
        if not per_workload and row["workload"] != "aggregate":
            continue
        if counts[key] < 2 or row["baseline"] is None:
            continue
        check.checked += 1
        floor = (1.0 - threshold) * row["baseline"]
        if row["value"] < floor:
            check.failures.append(
                f"{row['workload']}/{row['engine']}: {row['value']} is "
                f"{-row['delta_pct']:.1f}% below the rolling baseline "
                f"{row['baseline']} (threshold {100 * threshold:.0f}%, "
                f"newest source {row['source']})"
            )
    return check
