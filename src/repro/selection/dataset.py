"""Dataset construction: the Table 1 analogue.

The paper trains on SAT Competition 2016-2021 main tracks and tests on
2022, filtering out formulas whose graph exceeds 400,000 nodes.  Offline,
each "year" is a seed block over the synthetic generator families: the
year determines the base seed, so every year yields a distinct but
reproducible instance mix, and 2022 is held out for testing exactly as in
the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cnf.formula import CNF
from repro.cnf.generators import (
    cardinality_conflict,
    community_sat,
    graph_coloring,
    parity_chain,
    pigeonhole,
    random_ksat,
)
from repro.graph.bipartite import BipartiteGraph
from repro.obs.observer import Observer
from repro.parallel.runner import ParallelRunner
from repro.selection.labeling import PolicyComparison, label_instances

TRAIN_YEARS: Tuple[int, ...] = (2016, 2017, 2018, 2019, 2020, 2021)
TEST_YEAR: int = 2022

#: Paper's GPU-memory filter, scaled to our instance sizes.  Any formula
#: whose bipartite graph exceeds this node count is excluded.
DEFAULT_MAX_NODES = 400_000


@dataclass
class LabeledInstance:
    """One dataset entry: formula, provenance, and ground-truth label."""

    cnf: CNF
    year: int
    family: str
    comparison: PolicyComparison

    @property
    def label(self) -> int:
        return self.comparison.label


@dataclass
class PolicyDataset:
    """Instances grouped into the paper's train/test year split."""

    train: List[LabeledInstance] = field(default_factory=list)
    test: List[LabeledInstance] = field(default_factory=list)

    def all_instances(self) -> List[LabeledInstance]:
        return self.train + self.test

    def label_balance(self) -> Dict[str, float]:
        """Fraction of label-1 instances in each split."""
        out = {}
        for name, split in (("train", self.train), ("test", self.test)):
            out[name] = (
                sum(inst.label for inst in split) / len(split) if split else 0.0
            )
        return out


def _instance_pool(year: int, count: int, scale: float) -> List[Tuple[str, CNF]]:
    """A reproducible mixed-family batch for one synthetic "year".

    ``scale`` stretches instance sizes so different years have slightly
    different statistics, as in Table 1.
    """
    rng = random.Random(year * 7919)
    out: List[Tuple[str, CNF]] = []
    for i in range(count):
        seed = year * 1000 + i
        family_pick = rng.random()
        if family_pick < 0.40:
            n = int(rng.randint(130, 220) * scale)
            ratio = rng.uniform(4.0, 4.4)
            cnf = random_ksat(n, int(n * ratio), seed=seed)
            family = "random_ksat"
        elif family_pick < 0.50:
            n = int(rng.randint(10, 14) * scale)
            cnf = parity_chain(
                n,
                chain_length=3,
                parity=rng.randint(0, 1),
                seed=seed,
                contradiction=rng.random() < 0.7,
            )
            family = "parity_chain"
        elif family_pick < 0.75:
            comms = rng.randint(2, 3)
            vpc = int(rng.randint(100, 150) * scale)
            cpc = int(vpc * rng.uniform(4.05, 4.35))
            cnf = community_sat(comms, vpc, cpc, seed=seed)
            family = "community_sat"
        elif family_pick < 0.80:
            nodes = int(rng.randint(30, 50) * scale)
            cnf = graph_coloring(nodes, 3, rng.uniform(4.2, 5.0) / nodes, seed=seed)
            family = "graph_coloring"
        elif family_pick < 0.92:
            n = int(rng.randint(16, 26) * scale)
            cnf = cardinality_conflict(n, overconstrained=rng.random() < 0.75, seed=seed)
            family = "cardinality_conflict"
        else:
            cnf = pigeonhole(rng.randint(6, 7))
            family = "pigeonhole"
        out.append((family, cnf))
    return out


def build_dataset(
    instances_per_year: int = 20,
    train_years: Sequence[int] = TRAIN_YEARS,
    test_year: int = TEST_YEAR,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_conflicts: int = 20_000,
    scale: float = 1.0,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    runner: Optional[ParallelRunner] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[Union[str, Path]] = None,
    observer: Optional[Observer] = None,
) -> PolicyDataset:
    """Generate, filter, and label the full dataset.

    This is the expensive step (two solver runs per instance).  Callers
    size it with ``instances_per_year`` and ``max_conflicts``, and scale
    it with ``workers`` (process fan-out) and ``cache_dir`` (on-disk
    result cache: rebuilding an already-labelled dataset does zero
    solver work).  The labels are identical for every worker count —
    parallelism only reorders execution, never results.

    ``task_timeout`` / ``retries`` / ``journal`` route labelling through
    the supervised execution layer (see
    :class:`~repro.parallel.runner.ParallelRunner`): pathological
    instances time out into label 0 instead of hanging the build, and an
    interrupted build resumed with the same journal re-solves only the
    unfinished tasks.
    """
    if runner is None:
        runner = ParallelRunner(
            workers=workers, cache_dir=cache_dir,
            task_timeout=task_timeout, retries=retries, journal=journal,
            observer=observer,
        )

    # Generate and filter every instance first, then label as one batch
    # so the runner sees the full fan-out width.
    entries: List[Tuple[int, str, CNF]] = []
    for year in list(train_years) + [test_year]:
        for family, cnf in _instance_pool(year, instances_per_year, scale):
            if BipartiteGraph(cnf).num_nodes > max_nodes:
                continue  # the paper's 400k-node GPU-memory filter
            entries.append((year, family, cnf))

    comparisons = label_instances(
        [cnf for _, _, cnf in entries],
        max_conflicts=max_conflicts,
        runner=runner,
        observer=observer,
    )

    dataset = PolicyDataset()
    for (year, family, cnf), comparison in zip(entries, comparisons):
        split = dataset.test if year == test_year else dataset.train
        split.append(
            LabeledInstance(cnf=cnf, year=year, family=family, comparison=comparison)
        )
    return dataset


def augment_dataset(
    instances: Sequence[LabeledInstance],
    copies: int = 1,
    base_seed: int = 0,
) -> List[LabeledInstance]:
    """Symmetry-based data augmentation for training splits.

    Each copy applies a random satisfiability-preserving transform
    (variable renaming + polarity flip + clause shuffle) and inherits the
    original's label.  Caveat, stated honestly: solver *effort* is not
    exactly invariant under these symmetries (heuristic tie-breaking
    shifts), but the label is treated as a structural property — the
    standard augmentation assumption, and precisely the invariance a
    graph classifier should satisfy.  Use on training data only.
    """
    from repro.cnf.transforms import augment

    if copies < 0:
        raise ValueError("copies must be non-negative")
    out: List[LabeledInstance] = list(instances)
    for copy_index in range(copies):
        for i, inst in enumerate(instances):
            seed = base_seed + copy_index * 100_003 + i
            out.append(
                LabeledInstance(
                    cnf=augment(inst.cnf, seed=seed),
                    year=inst.year,
                    family=inst.family,
                    comparison=inst.comparison,
                )
            )
    return out


@dataclass(frozen=True)
class YearStatistics:
    """One row of the Table 1 analogue."""

    split: str
    year: int
    num_cnfs: int
    mean_variables: float
    mean_clauses: float


def dataset_statistics(dataset: PolicyDataset) -> List[YearStatistics]:
    """Per-year dataset statistics (reproduces Table 1's columns)."""
    rows: List[YearStatistics] = []
    by_year: Dict[Tuple[str, int], List[LabeledInstance]] = {}
    for inst in dataset.train:
        by_year.setdefault(("Training", inst.year), []).append(inst)
    for inst in dataset.test:
        by_year.setdefault(("Test", inst.year), []).append(inst)
    for (split, year), instances in sorted(by_year.items(), key=lambda kv: kv[0][1]):
        rows.append(
            YearStatistics(
                split=split,
                year=year,
                num_cnfs=len(instances),
                mean_variables=sum(i.cnf.num_vars for i in instances) / len(instances),
                mean_clauses=sum(i.cnf.num_clauses for i in instances) / len(instances),
            )
        )
    return rows
