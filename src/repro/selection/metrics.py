"""Binary-classification metrics for the Table 2 comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ClassificationMetrics:
    """Precision / recall / F1 / accuracy plus the raw confusion counts."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        return (
            (self.true_positives + self.true_negatives) / self.total
            if self.total
            else 0.0
        )

    def as_row(self) -> dict:
        """Percentages in Table 2's column order."""
        return {
            "precision": 100.0 * self.precision,
            "recall": 100.0 * self.recall,
            "F1": 100.0 * self.f1,
            "accuracy": 100.0 * self.accuracy,
        }


def classification_metrics(
    predictions: Sequence[int], labels: Sequence[int]
) -> ClassificationMetrics:
    """Compute metrics from aligned prediction/label sequences."""
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels differ in length")
    tp = fp = tn = fn = 0
    for pred, label in zip(predictions, labels):
        if pred not in (0, 1) or label not in (0, 1):
            raise ValueError("labels and predictions must be 0/1")
        if pred == 1 and label == 1:
            tp += 1
        elif pred == 1 and label == 0:
            fp += 1
        elif pred == 0 and label == 0:
            tn += 1
        else:
            fn += 1
    return ClassificationMetrics(tp, fp, tn, fn)
