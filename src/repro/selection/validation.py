"""Cross-validation utilities for the selection pipeline.

The paper's single train/test split (years 2016-2021 vs 2022) is the
headline protocol; k-fold cross-validation over the training years gives
variance estimates for model comparisons at reproduction scale, where
test sets are small.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.selection.dataset import LabeledInstance
from repro.selection.metrics import ClassificationMetrics
from repro.selection.trainer import Trainer


def k_fold_splits(
    instances: Sequence[LabeledInstance],
    k: int = 5,
    seed: int = 0,
    stratify: bool = True,
) -> List[Tuple[List[LabeledInstance], List[LabeledInstance]]]:
    """Partition into ``k`` (train, validation) splits.

    With ``stratify``, folds are drawn per label so each keeps roughly
    the global class balance — important with our skewed labels.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if len(instances) < k:
        raise ValueError(f"need at least k={k} instances, got {len(instances)}")
    rng = random.Random(seed)

    folds: List[List[LabeledInstance]] = [[] for _ in range(k)]
    if stratify:
        by_label: dict = {}
        for inst in instances:
            by_label.setdefault(inst.label, []).append(inst)
        slot = 0
        for label_group in by_label.values():
            rng.shuffle(label_group)
            for inst in label_group:
                folds[slot % k].append(inst)
                slot += 1
    else:
        shuffled = list(instances)
        rng.shuffle(shuffled)
        for i, inst in enumerate(shuffled):
            folds[i % k].append(inst)

    splits = []
    for i in range(k):
        validation = folds[i]
        train = [inst for j, fold in enumerate(folds) if j != i for inst in fold]
        splits.append((train, validation))
    return splits


@dataclass
class CrossValidationResult:
    """Per-fold metrics plus aggregates."""

    fold_metrics: List[ClassificationMetrics] = field(default_factory=list)

    @property
    def accuracies(self) -> List[float]:
        return [m.accuracy for m in self.fold_metrics]

    @property
    def mean_accuracy(self) -> float:
        return statistics.fmean(self.accuracies) if self.fold_metrics else 0.0

    @property
    def std_accuracy(self) -> float:
        if len(self.fold_metrics) < 2:
            return 0.0
        return statistics.stdev(self.accuracies)

    @property
    def mean_f1(self) -> float:
        return (
            statistics.fmean(m.f1 for m in self.fold_metrics)
            if self.fold_metrics
            else 0.0
        )


def cross_validate(
    model_factory: Callable[[], object],
    instances: Sequence[LabeledInstance],
    k: int = 5,
    seed: int = 0,
    learning_rate: float = 3e-3,
    epochs: int = 20,
) -> CrossValidationResult:
    """k-fold cross-validation of a classifier factory.

    A fresh model is built per fold (``model_factory``), trained on the
    fold's training part, and evaluated on its validation part.
    """
    result = CrossValidationResult()
    for train, validation in k_fold_splits(instances, k=k, seed=seed):
        model = model_factory()
        trainer = Trainer(model, learning_rate=learning_rate, epochs=epochs)
        trainer.fit(train)
        result.fold_metrics.append(trainer.evaluate(validation))
    return result
