"""Learning-aided policy selection: labels, datasets, training, inference."""

from repro.selection.labeling import (
    PolicyComparison,
    compare_policies,
    comparison_from_outcomes,
    label_instances,
    labeling_tasks,
    run_policy,
    REDUCTION_THRESHOLD,
)
from repro.selection.dataset import (
    augment_dataset,
    LabeledInstance,
    PolicyDataset,
    YearStatistics,
    build_dataset,
    dataset_statistics,
    TRAIN_YEARS,
    TEST_YEAR,
    DEFAULT_MAX_NODES,
)
from repro.selection.metrics import ClassificationMetrics, classification_metrics
from repro.selection.trainer import Trainer, TrainingHistory
from repro.selection.selector import NeuroSelectSolver, SelectionOutcome
from repro.selection.session import (
    DEFAULT_DRIFT_THRESHOLD,
    SelectorSession,
    SessionSelection,
    feature_distance,
    new_session_id,
)
from repro.selection.storage import save_dataset, load_dataset
from repro.selection.validation import (
    CrossValidationResult,
    cross_validate,
    k_fold_splits,
)

__all__ = [
    "PolicyComparison",
    "compare_policies",
    "comparison_from_outcomes",
    "label_instances",
    "labeling_tasks",
    "run_policy",
    "REDUCTION_THRESHOLD",
    "LabeledInstance",
    "augment_dataset",
    "PolicyDataset",
    "YearStatistics",
    "build_dataset",
    "dataset_statistics",
    "TRAIN_YEARS",
    "TEST_YEAR",
    "DEFAULT_MAX_NODES",
    "ClassificationMetrics",
    "classification_metrics",
    "Trainer",
    "TrainingHistory",
    "NeuroSelectSolver",
    "SelectionOutcome",
    "DEFAULT_DRIFT_THRESHOLD",
    "SelectorSession",
    "SessionSelection",
    "feature_distance",
    "new_session_id",
    "CrossValidationResult",
    "cross_validate",
    "k_fold_splits",
    "save_dataset",
    "load_dataset",
]
