"""NeuroSelect-Kissat: one model inference, then solve (paper Sec. 5.4).

The selector runs a single forward pass of the trained classifier on the
input CNF (CPU-friendly by design — this is the paper's headline
efficiency argument over per-clause evaluation), maps the predicted label
to a deletion policy, and solves with it.  Instances whose graph exceeds
the node cap skip inference and use the default policy, exactly as the
paper handles its >400k-node instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.cnf.formula import CNF
from repro.graph.bipartite import BipartiteGraph
from repro.policies.registry import policy_for_label
from repro.selection.dataset import DEFAULT_MAX_NODES
from repro.solver.solver import Solver, SolverConfig, SolveResult


@dataclass
class SelectionOutcome:
    """A solve guided by the selector, with inference accounting."""

    result: SolveResult
    predicted_label: int
    policy_name: str
    inference_seconds: float
    used_model: bool  # False when the node cap forced the default policy

    @property
    def propagations(self) -> int:
        return self.result.stats.propagations


class NeuroSelectSolver:
    """End-to-end adaptive solver: classify once, then run CDCL."""

    def __init__(
        self,
        model,
        max_nodes: int = DEFAULT_MAX_NODES,
        config: Optional[SolverConfig] = None,
        threshold: Optional[float] = None,
    ):
        self.model = model
        self.max_nodes = max_nodes
        self.config = config
        # Default to the threshold calibrated during training when the
        # model carries one (set by Trainer.fit), else 0.5.
        if threshold is None:
            threshold = getattr(model, "decision_threshold", 0.5)
        self.threshold = threshold

    def select_policy(self, cnf: CNF):
        """Model inference only; returns (label, policy, seconds, used_model)."""
        graph = BipartiteGraph(cnf)
        if graph.num_nodes > self.max_nodes:
            return 0, policy_for_label(0), 0.0, False
        start = time.perf_counter()
        label = self.model.predict(graph, threshold=self.threshold)
        elapsed = time.perf_counter() - start
        return label, policy_for_label(label), elapsed, True

    def solve(
        self,
        cnf: CNF,
        max_conflicts: Optional[int] = None,
        max_propagations: Optional[int] = None,
    ) -> SelectionOutcome:
        """Classify, pick the deletion policy, and solve."""
        label, policy, inference_seconds, used_model = self.select_policy(cnf)
        solver = Solver(cnf, policy=policy, config=self.config)
        result = solver.solve(
            max_conflicts=max_conflicts, max_propagations=max_propagations
        )
        return SelectionOutcome(
            result=result,
            predicted_label=label,
            policy_name=policy.name,
            inference_seconds=inference_seconds,
            used_model=used_model,
        )
