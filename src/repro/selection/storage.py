"""Dataset persistence: save/load labelled datasets as JSON.

Labelling costs two full solver runs per instance, so being able to
build a dataset once and reload it across sessions matters.  The format
is a single human-inspectable JSON document embedding each formula in
DIMACS text together with its provenance and both policies' measured
effort.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.selection.dataset import LabeledInstance, PolicyDataset
from repro.selection.labeling import PolicyComparison
from repro.solver.types import Status

FORMAT_VERSION = 1


def _instance_to_dict(instance: LabeledInstance) -> dict:
    comparison = instance.comparison
    return {
        "dimacs": to_dimacs(instance.cnf, include_comments=True),
        "year": instance.year,
        "family": instance.family,
        "comparison": {
            "default_status": comparison.default_result_status.value,
            "frequency_status": comparison.frequency_result_status.value,
            "default_propagations": comparison.default_propagations,
            "frequency_propagations": comparison.frequency_propagations,
            "label": comparison.label,
            "default_wall_seconds": comparison.default_wall_seconds,
            "frequency_wall_seconds": comparison.frequency_wall_seconds,
        },
    }


def _instance_from_dict(payload: dict) -> LabeledInstance:
    raw = payload["comparison"]
    comparison = PolicyComparison(
        default_result_status=Status(raw["default_status"]),
        frequency_result_status=Status(raw["frequency_status"]),
        default_propagations=int(raw["default_propagations"]),
        frequency_propagations=int(raw["frequency_propagations"]),
        label=int(raw["label"]),
        # Absent in datasets written before wall-clock recording; the
        # format stays version 1 because old files remain fully valid.
        default_wall_seconds=float(raw.get("default_wall_seconds", 0.0)),
        frequency_wall_seconds=float(raw.get("frequency_wall_seconds", 0.0)),
    )
    return LabeledInstance(
        cnf=parse_dimacs(payload["dimacs"]),
        year=int(payload["year"]),
        family=str(payload["family"]),
        comparison=comparison,
    )


def save_dataset(dataset: PolicyDataset, path: Union[str, Path]) -> None:
    """Write a dataset (both splits) to a JSON file."""
    document = {
        "format_version": FORMAT_VERSION,
        "train": [_instance_to_dict(i) for i in dataset.train],
        "test": [_instance_to_dict(i) for i in dataset.test],
    }
    Path(path).write_text(json.dumps(document))


def load_dataset(path: Union[str, Path]) -> PolicyDataset:
    """Load a dataset written by :func:`save_dataset`."""
    document = json.loads(Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return PolicyDataset(
        train=[_instance_from_dict(d) for d in document["train"]],
        test=[_instance_from_dict(d) for d in document["test"]],
    )
