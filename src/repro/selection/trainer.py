"""Training loop for policy classifiers.

Matches the paper's recipe (Sec. 5.2): Adam, binary cross-entropy,
batch size 1 (one graph per step).  Works with any model exposing
``forward(graph) -> logit``, ``predict(graph)``, and a ``graph_type``
attribute naming its CNF encoding — NeuroSelect and both baselines do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.nn.loss import bce_with_logits
from repro.nn.optim import Adam
from repro.nn.schedulers import CosineAnnealingLR, EarlyStopping, Scheduler, StepLR
from repro.selection.dataset import LabeledInstance
from repro.selection.metrics import ClassificationMetrics, classification_metrics


@dataclass
class TrainingHistory:
    """Per-epoch mean loss and training accuracy."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Trainer:
    """Fits one classifier on labelled instances."""

    def __init__(
        self,
        model,
        learning_rate: float = 1e-4,
        epochs: int = 400,
        shuffle_seed: int = 0,
        class_balance: bool = True,
        scheduler: Optional[str] = None,
        early_stopping_patience: Optional[int] = None,
        batch_size: int = 1,
        observer: Optional[Observer] = None,
    ):
        self.model = model
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.epochs = epochs
        self.shuffle_seed = shuffle_seed
        self.class_balance = class_balance
        #: Decision threshold used by :meth:`evaluate`; recalibrated on the
        #: training split at the end of :meth:`fit`.
        self.threshold = 0.5
        if scheduler is None:
            self.scheduler: Optional[Scheduler] = None
        elif scheduler == "cosine":
            self.scheduler = CosineAnnealingLR(self.optimizer, total_epochs=epochs)
        elif scheduler == "step":
            self.scheduler = StepLR(self.optimizer, step_size=max(1, epochs // 4))
        else:
            raise ValueError(f"unknown scheduler {scheduler!r} (cosine|step)")
        self.early_stopping = (
            EarlyStopping(patience=early_stopping_patience)
            if early_stopping_patience
            else None
        )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size > 1 and not hasattr(model, "forward_batch"):
            raise ValueError(
                f"{type(model).__name__} has no batched forward; use batch_size=1"
            )
        self.batch_size = batch_size

    def fit(
        self,
        instances: Sequence[LabeledInstance],
        validation: Optional[Sequence[LabeledInstance]] = None,
        log_every: int = 0,
    ) -> TrainingHistory:
        """Train; returns the loss/accuracy history.

        Graphs are encoded once up front.  With ``class_balance``, each
        example's loss is weighted inversely to its class frequency —
        synthetic datasets are rarely 50/50 and an unweighted model
        otherwise collapses to the majority label.
        """
        if not instances:
            raise ValueError("cannot train on an empty dataset")
        graphs = [self.model.graph_type(inst.cnf) for inst in instances]
        if hasattr(self.model, "fit_scaler"):
            # Feature-based models freeze input standardization on the
            # training encodings before the first step.
            self.model.fit_scaler(graphs)
        labels = [inst.label for inst in instances]
        weights = self._weights(labels)
        order = list(range(len(instances)))
        rng = random.Random(self.shuffle_seed)
        history = TrainingHistory()
        obs = self.observer
        obs.event(
            "train-start",
            model=type(self.model).__name__,
            instances=len(instances),
            epochs=self.epochs,
            batch_size=self.batch_size,
        )

        for epoch in range(self.epochs):
            rng.shuffle(order)
            total_loss = 0.0
            correct = 0
            if self.batch_size == 1:
                for i in order:
                    self.optimizer.zero_grad()
                    logit = self.model(graphs[i])
                    loss = bce_with_logits(logit, labels[i]) * weights[i]
                    loss.backward()
                    self.optimizer.step()
                    total_loss += loss.item()
                    prediction = 1 if float(logit.data.ravel()[0]) >= 0.0 else 0
                    correct += prediction == labels[i]
            else:
                from repro.graph.batching import batch_graphs

                for start in range(0, len(order), self.batch_size):
                    chunk = order[start : start + self.batch_size]
                    batch = batch_graphs([graphs[i] for i in chunk])
                    self.optimizer.zero_grad()
                    logits = self.model.forward_batch(batch)
                    loss = None
                    for row, i in enumerate(chunk):
                        member = bce_with_logits(logits[row], labels[i]) * weights[i]
                        loss = member if loss is None else loss + member
                        raw = float(logits.data[row].ravel()[0])
                        correct += (1 if raw >= 0.0 else 0) == labels[i]
                    loss = loss * (1.0 / len(chunk))
                    loss.backward()
                    self.optimizer.step()
                    total_loss += loss.item() * len(chunk)
            history.losses.append(total_loss / len(order))
            history.accuracies.append(correct / len(order))
            if obs.enabled:
                obs.event(
                    "epoch-end",
                    epoch=epoch + 1,
                    loss=round(history.losses[-1], 6),
                    accuracy=round(history.accuracies[-1], 6),
                    grad_norm=round(self._grad_norm(), 6),
                    lr=getattr(self.optimizer, "lr", 0.0),
                )
                obs.histogram("trainer.epoch_loss").observe(history.losses[-1])
            if log_every and (epoch + 1) % log_every == 0:
                msg = (
                    f"epoch {epoch + 1}/{self.epochs} "
                    f"loss={history.losses[-1]:.4f} "
                    f"acc={history.accuracies[-1]:.3f}"
                )
                if validation:
                    msg += f" val_acc={self.evaluate(validation).accuracy:.3f}"
                print(msg)
            if self.scheduler is not None:
                self.scheduler.step()
            if self.early_stopping is not None and self.early_stopping.update(
                history.losses[-1]
            ):
                break
        self.calibrate_threshold(instances, mode="balanced")
        obs.event(
            "train-end",
            epochs_run=len(history.losses),
            final_loss=round(history.final_loss, 6)
            if history.losses else None,
            threshold=round(self.threshold, 6),
        )
        obs.flush()
        return history

    def _grad_norm(self) -> float:
        """L2 norm of the most recent step's gradients (0 when absent)."""
        total = 0.0
        for parameter in self.model.parameters():
            grad = getattr(parameter, "grad", None)
            if grad is None:
                continue
            total += float((grad ** 2).sum())
        return total ** 0.5

    def evaluate(self, instances: Sequence[LabeledInstance]) -> ClassificationMetrics:
        """Classification metrics of the current model on a split.

        Uses the decision threshold calibrated by :meth:`fit` (0.5 until
        then).
        """
        predictions = [
            self.model.predict(inst.cnf, threshold=self.threshold)
            for inst in instances
        ]
        labels = [inst.label for inst in instances]
        return classification_metrics(predictions, labels)

    def calibrate_threshold(
        self, instances: Sequence[LabeledInstance], mode: str = "effort"
    ) -> float:
        """Pick the decision threshold on the *training* split.

        Class-weighted training on an imbalanced dataset shifts the
        natural operating point away from 0.5; calibration restores a
        sensible one.  Two modes:

        * ``"effort"`` (default) — cost-sensitive: every training
          instance carries both policies' propagation counts (the
          labelling byproduct), so the threshold can directly maximize
          the total propagations *saved* by following the model's
          advice.  This optimizes the Table 3 objective rather than a
          surrogate.
        * ``"balanced"`` — maximize balanced accuracy (mean of the two
          class recalls), tie-broken towards the *higher* threshold: on
          skewed label distributions this degrades gracefully to the
          majority prediction instead of flooding positives.
        * ``"f1"`` — maximize F1 (tie-broken by accuracy) over the hard
          labels, the conventional classification calibration.

        Falls back to 0.5 when the split carries no signal.
        """
        if mode not in ("effort", "f1", "balanced"):
            raise ValueError(f"unknown calibration mode {mode!r}")
        probabilities = [self.model.predict_proba(inst.cnf) for inst in instances]
        candidates = sorted(set(probabilities))
        midpoints = [
            (candidates[i] + candidates[i + 1]) / 2
            for i in range(len(candidates) - 1)
        ]
        # Endpoints: predict everything 1 / everything 0.
        thresholds = [0.0] + midpoints + [1.0 + 1e-9]

        best_threshold = 0.5
        if mode == "effort":
            savings = [
                inst.comparison.default_propagations
                - inst.comparison.frequency_propagations
                for inst in instances
            ]
            if not any(savings):
                self.threshold = 0.5
                self.model.decision_threshold = self.threshold
                return self.threshold
            best_saving = float("-inf")
            for threshold in thresholds:
                total = sum(
                    s for p, s in zip(probabilities, savings) if p >= threshold
                )
                if total > best_saving:
                    best_saving = total
                    best_threshold = threshold
        else:
            labels = [inst.label for inst in instances]
            if len(set(labels)) < 2:
                self.threshold = 0.5
                self.model.decision_threshold = self.threshold
                return self.threshold
            best_key = (-1.0, -1.0, float("-inf"))
            for threshold in thresholds:
                predictions = [int(q >= threshold) for q in probabilities]
                metrics = classification_metrics(predictions, labels)
                if mode == "balanced":
                    positive_recall = metrics.recall
                    denom = metrics.true_negatives + metrics.false_positives
                    negative_recall = metrics.true_negatives / denom if denom else 0.0
                    primary = (positive_recall + negative_recall) / 2.0
                    # Prefer conservative (higher) thresholds on ties.
                    key = (primary, metrics.accuracy, threshold)
                else:
                    key = (metrics.f1, metrics.accuracy, -threshold)
                if key > best_key:
                    best_key = key
                    best_threshold = threshold

        self.threshold = best_threshold
        # Stash on the model so downstream consumers (NeuroSelectSolver)
        # inherit the calibrated operating point automatically.
        self.model.decision_threshold = self.threshold
        return self.threshold

    def _weights(self, labels: Sequence[int]) -> List[float]:
        if not self.class_balance:
            return [1.0] * len(labels)
        positives = sum(labels)
        negatives = len(labels) - positives
        if positives == 0 or negatives == 0:
            return [1.0] * len(labels)
        # Mean weight is 1 so the learning rate keeps its meaning.
        w_pos = len(labels) / (2.0 * positives)
        w_neg = len(labels) / (2.0 * negatives)
        return [w_pos if y == 1 else w_neg for y in labels]
