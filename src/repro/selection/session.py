"""Drift-aware policy selection for incremental sessions.

NeuroSelect pays one HGT forward pass per instance.  On session traffic
— families of closely related formulas (configuration deltas, CI of
hardware designs) — that is almost always wasted: the policy choice for
delta *k+1* is overwhelmingly the choice for delta *k*.
:class:`SelectorSession` caches the embedding-backed choice per session
and gates recomputation behind the *cheap* expert features of
:mod:`repro.cnf.features` (the GraSS-style screen): a new forward pass
runs only when the feature-space distance between the current formula
and the snapshot that was last embedded exceeds a configurable drift
threshold.

Distance is a relative per-dimension infinity norm over
:meth:`~repro.cnf.features.FormulaFeatures.as_vector`::

    d(a, b) = max_i |a_i - b_i| / max(1, |b_i|)

so a 14-dimensional vector mixing counts in the thousands with
fractions in [0, 1] compares scale-free: adding two clauses to a
400-clause formula is ~0.5% drift regardless of the absolute feature
magnitudes.  The default threshold (:data:`DEFAULT_DRIFT_THRESHOLD`)
tolerates ~10% relative drift on every dimension.

Observability: each selection emits a ``session-select`` trace event
(reused or recomputed, with the measured distance) and bumps the
``session.embedding_reuse`` / ``session.embedding_recompute`` counters,
so the amortization claim — forward passes strictly fewer than
instances solved — is measured from traces, never asserted.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import List, Optional

from repro.cnf.features import extract_features
from repro.cnf.formula import CNF
from repro.graph.bipartite import BipartiteGraph
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.policies.registry import LABEL_TO_POLICY
from repro.selection.dataset import DEFAULT_MAX_NODES

#: Relative per-dimension drift tolerated before re-embedding.
DEFAULT_DRIFT_THRESHOLD = 0.1


def new_session_id() -> str:
    """A fresh session identifier (``sess-`` + 12 hex chars)."""
    return "sess-" + uuid.uuid4().hex[:12]


def feature_distance(a: List[float], b: List[float]) -> float:
    """Relative infinity-norm distance between two feature vectors."""
    if len(a) != len(b):
        raise ValueError(
            f"feature vectors disagree in length ({len(a)} vs {len(b)})"
        )
    worst = 0.0
    for x, y in zip(a, b):
        delta = abs(x - y) / max(1.0, abs(y))
        if delta > worst:
            worst = delta
    return worst


@dataclass
class SessionSelection:
    """One policy choice made inside a session."""

    label: int
    policy: str
    probability: Optional[float]
    #: True when the cached embedding answered (no forward pass).
    reused: bool
    #: Measured feature drift against the embedded snapshot (0.0 on the
    #: first selection of a session).
    distance: float
    #: False when the node cap (or a missing model) forced the default
    #: policy instead of a real forward pass.
    used_model: bool
    inference_seconds: float = 0.0


class SelectorSession:
    """Per-session policy selection with drift-gated HGT inference."""

    def __init__(
        self,
        model,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        max_nodes: int = DEFAULT_MAX_NODES,
        threshold: Optional[float] = None,
        observer: Observer = NULL_OBSERVER,
        session_id: Optional[str] = None,
    ):
        if drift_threshold < 0:
            raise ValueError("drift_threshold must be >= 0")
        self.model = model
        self.drift_threshold = drift_threshold
        self.max_nodes = max_nodes
        if threshold is None:
            threshold = getattr(model, "decision_threshold", 0.5)
        self.threshold = threshold
        self.observer = observer
        self.id = session_id or new_session_id()
        #: Forward passes actually performed for this session.
        self.inference_passes = 0
        #: Selections answered from the cached embedding.
        self.reuses = 0
        #: Total selections made.
        self.selections = 0
        self._snapshot: Optional[List[float]] = None
        self._cached: Optional[SessionSelection] = None
        self._reuse_counter = observer.counter("session.embedding_reuse")
        self._recompute_counter = observer.counter(
            "session.embedding_recompute"
        )

    def select(self, cnf: CNF) -> SessionSelection:
        """Pick a deletion policy for ``cnf``, reusing the cached
        embedding while the formula stays within the drift threshold."""
        features = extract_features(cnf).as_vector()
        self.selections += 1
        if self._cached is not None and self._snapshot is not None:
            distance = feature_distance(features, self._snapshot)
            if distance <= self.drift_threshold:
                self.reuses += 1
                self._reuse_counter.inc()
                cached = self._cached
                selection = SessionSelection(
                    label=cached.label,
                    policy=cached.policy,
                    probability=cached.probability,
                    reused=True,
                    distance=distance,
                    used_model=cached.used_model,
                    inference_seconds=0.0,
                )
                self._emit(selection)
                return selection
        else:
            distance = 0.0
        selection = self._classify(cnf, distance)
        # The *embedded* snapshot is the drift reference: distances are
        # always measured against the formula the model last saw, never
        # against an intermediate reused one — small deltas cannot creep
        # arbitrarily far from the embedding by chaining.
        self._snapshot = features
        self._cached = selection
        self._recompute_counter.inc()
        self._emit(selection)
        return selection

    def _classify(self, cnf: CNF, distance: float) -> SessionSelection:
        """Run (or skip, per the node cap) one real forward pass."""
        if self.model is None:
            return SessionSelection(
                label=0,
                policy=LABEL_TO_POLICY[0],
                probability=None,
                reused=False,
                distance=distance,
                used_model=False,
            )
        graph = BipartiteGraph(cnf)
        if graph.num_nodes > self.max_nodes:
            return SessionSelection(
                label=0,
                policy=LABEL_TO_POLICY[0],
                probability=None,
                reused=False,
                distance=distance,
                used_model=False,
            )
        start = time.perf_counter()
        probability = float(self.model.predict_proba(graph))
        elapsed = time.perf_counter() - start
        self.inference_passes += 1
        label = int(probability >= self.threshold)
        return SessionSelection(
            label=label,
            policy=LABEL_TO_POLICY[label],
            probability=probability,
            reused=False,
            distance=distance,
            used_model=True,
            inference_seconds=elapsed,
        )

    def _emit(self, selection: SessionSelection) -> None:
        if not self.observer.tracing:
            return
        self.observer.event(
            "session-select",
            session=self.id,
            reused=selection.reused,
            distance=round(selection.distance, 6),
            label=selection.label,
            policy=selection.policy,
            used_model=selection.used_model,
            passes=self.inference_passes,
            selections=self.selections,
        )

    def invalidate(self) -> None:
        """Drop the cached embedding; the next selection recomputes."""
        self._snapshot = None
        self._cached = None

    def stats(self) -> dict:
        """Point-in-time reuse accounting for service introspection."""
        return {
            "selections": self.selections,
            "inference_passes": self.inference_passes,
            "embedding_reuses": self.reuses,
        }
