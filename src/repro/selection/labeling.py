"""Ground-truth label generation (paper Sec. 5.1).

Each training instance is solved twice — once under Kissat's default
deletion policy and once under the propagation-frequency policy — and
labelled ``1`` when the frequency policy needs at least 2% fewer total
propagations, else ``0``.  Propagations, not wall-clock, are the paper's
own labelling measure ("due to the variability of CPU time, we focus on
the total number of propagations ... a more reliable and deterministic
measure").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cnf.formula import CNF
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver.solver import Solver, SolverConfig, SolveResult
from repro.solver.types import Status

#: Paper's labelling threshold: >= 2% propagation reduction -> label 1.
REDUCTION_THRESHOLD = 0.02


def default_labeling_config() -> SolverConfig:
    """Scaled-down Kissat reduce schedule used across the evaluation.

    Kissat's stock intervals assume runs of millions of conflicts; our
    instances run thousands, so the reduce interval is scaled down
    proportionally to keep the *number of reduction rounds per run*
    comparable.  Both policies always share one config, so comparisons
    stay apples-to-apples.
    """
    return SolverConfig(reduce_interval=75, reduce_interval_growth=30, reduce_fraction=0.75)


@dataclass(frozen=True)
class PolicyComparison:
    """Effort of both policies on one instance, plus the derived label."""

    default_result_status: Status
    frequency_result_status: Status
    default_propagations: int
    frequency_propagations: int
    label: int

    @property
    def reduction(self) -> float:
        """Fractional propagation reduction of the frequency policy."""
        if self.default_propagations == 0:
            return 0.0
        return 1.0 - self.frequency_propagations / self.default_propagations


def run_policy(
    cnf: CNF,
    policy_name: str,
    max_conflicts: Optional[int] = None,
    max_propagations: Optional[int] = None,
    config: Optional[SolverConfig] = None,
) -> SolveResult:
    """Solve one instance under a named deletion policy."""
    policy = FrequencyPolicy() if policy_name == "frequency" else DefaultPolicy()
    solver = Solver(cnf, policy=policy, config=config or default_labeling_config())
    return solver.solve(
        max_conflicts=max_conflicts, max_propagations=max_propagations
    )


def compare_policies(
    cnf: CNF,
    max_conflicts: Optional[int] = 20_000,
    max_propagations: Optional[int] = None,
    threshold: float = REDUCTION_THRESHOLD,
    config: Optional[SolverConfig] = None,
) -> PolicyComparison:
    """Run both policies and derive the Sec. 5.1 label.

    Instances that neither policy decides within budget get label 0 (the
    safe default — keep Kissat's stock policy), mirroring the paper's
    treatment of its unsolved training instances.
    """
    config = config or default_labeling_config()
    default_result = run_policy(
        cnf, "default", max_conflicts=max_conflicts,
        max_propagations=max_propagations, config=config,
    )
    frequency_result = run_policy(
        cnf, "frequency", max_conflicts=max_conflicts,
        max_propagations=max_propagations, config=config,
    )
    d = default_result.stats.propagations
    f = frequency_result.stats.propagations
    decided = (
        default_result.status is not Status.UNKNOWN
        or frequency_result.status is not Status.UNKNOWN
    )
    label = 1 if (decided and d > 0 and (d - f) / d >= threshold) else 0
    return PolicyComparison(
        default_result_status=default_result.status,
        frequency_result_status=frequency_result.status,
        default_propagations=d,
        frequency_propagations=f,
        label=label,
    )
