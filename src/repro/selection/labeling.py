"""Ground-truth label generation (paper Sec. 5.1).

Each training instance is solved twice — once under Kissat's default
deletion policy and once under the propagation-frequency policy — and
labelled ``1`` when the frequency policy needs at least 2% fewer total
propagations, else ``0``.  Propagations, not wall-clock, are the paper's
own labelling measure ("due to the variability of CPU time, we focus on
the total number of propagations ... a more reliable and deterministic
measure").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.cnf.formula import CNF
from repro.obs.observer import Observer
from repro.parallel.runner import ParallelRunner, SolveOutcome, SolveTask
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver.solver import Solver, SolverConfig, SolveResult
from repro.solver.types import Status

#: Paper's labelling threshold: >= 2% propagation reduction -> label 1.
REDUCTION_THRESHOLD = 0.02


def default_labeling_config() -> SolverConfig:
    """Scaled-down Kissat reduce schedule used across the evaluation.

    Kissat's stock intervals assume runs of millions of conflicts; our
    instances run thousands, so the reduce interval is scaled down
    proportionally to keep the *number of reduction rounds per run*
    comparable.  Both policies always share one config, so comparisons
    stay apples-to-apples.
    """
    return SolverConfig(reduce_interval=75, reduce_interval_growth=30, reduce_fraction=0.75)


@dataclass(frozen=True)
class PolicyComparison:
    """Effort of both policies on one instance, plus the derived label."""

    default_result_status: Status
    frequency_result_status: Status
    default_propagations: int
    frequency_propagations: int
    label: int
    #: Measured wall-clock per policy run.  Labels are derived from
    #: propagations (the paper's deterministic measure); wall-clock is
    #: recorded alongside for cost accounting and latency reports, and
    #: defaults to 0.0 so datasets written before it existed still load.
    #: Excluded from equality: two runs of the same instance are the
    #: same comparison even though their timings jitter.
    default_wall_seconds: float = field(default=0.0, compare=False)
    frequency_wall_seconds: float = field(default=0.0, compare=False)

    @property
    def reduction(self) -> float:
        """Fractional propagation reduction of the frequency policy."""
        if self.default_propagations == 0:
            return 0.0
        return 1.0 - self.frequency_propagations / self.default_propagations


def run_policy(
    cnf: CNF,
    policy_name: str,
    max_conflicts: Optional[int] = None,
    max_propagations: Optional[int] = None,
    config: Optional[SolverConfig] = None,
) -> SolveResult:
    """Solve one instance under a named deletion policy."""
    policy = FrequencyPolicy() if policy_name == "frequency" else DefaultPolicy()
    solver = Solver(cnf, policy=policy, config=config or default_labeling_config())
    return solver.solve(
        max_conflicts=max_conflicts, max_propagations=max_propagations
    )


def compare_policies(
    cnf: CNF,
    max_conflicts: Optional[int] = 20_000,
    max_propagations: Optional[int] = None,
    threshold: float = REDUCTION_THRESHOLD,
    config: Optional[SolverConfig] = None,
) -> PolicyComparison:
    """Run both policies and derive the Sec. 5.1 label.

    Instances that neither policy decides within budget get label 0 (the
    safe default — keep Kissat's stock policy), mirroring the paper's
    treatment of its unsolved training instances.
    """
    config = config or default_labeling_config()
    start = time.perf_counter()
    default_result = run_policy(
        cnf, "default", max_conflicts=max_conflicts,
        max_propagations=max_propagations, config=config,
    )
    default_wall = time.perf_counter() - start
    start = time.perf_counter()
    frequency_result = run_policy(
        cnf, "frequency", max_conflicts=max_conflicts,
        max_propagations=max_propagations, config=config,
    )
    frequency_wall = time.perf_counter() - start
    return _derive_comparison(
        default_result.status,
        frequency_result.status,
        default_result.stats.propagations,
        frequency_result.stats.propagations,
        threshold,
        default_wall_seconds=default_wall,
        frequency_wall_seconds=frequency_wall,
    )


def _derive_comparison(
    default_status: Status,
    frequency_status: Status,
    default_propagations: int,
    frequency_propagations: int,
    threshold: float,
    default_wall_seconds: float = 0.0,
    frequency_wall_seconds: float = 0.0,
) -> PolicyComparison:
    """The Sec. 5.1 labelling rule, shared by serial and parallel paths."""
    d = default_propagations
    f = frequency_propagations
    # ``decided`` means SAT/UNSAT: a budget-UNKNOWN or a supervision
    # failure (TIMEOUT / ERROR / MEMOUT) contributes no evidence, and an
    # instance with no decided run keeps the safe label 0.  A failed run
    # also reports zero effort, which would fake a 100% reduction — any
    # failure on either side therefore forces the safe label too.
    decided = default_status.decided or frequency_status.decided
    comparable = not (default_status.failed or frequency_status.failed)
    label = 1 if (decided and comparable and d > 0 and (d - f) / d >= threshold) else 0
    return PolicyComparison(
        default_result_status=default_status,
        frequency_result_status=frequency_status,
        default_propagations=d,
        frequency_propagations=f,
        label=label,
        default_wall_seconds=default_wall_seconds,
        frequency_wall_seconds=frequency_wall_seconds,
    )


def comparison_from_outcomes(
    default_outcome: SolveOutcome,
    frequency_outcome: SolveOutcome,
    threshold: float = REDUCTION_THRESHOLD,
) -> PolicyComparison:
    """Build the label from two :class:`SolveOutcome` records."""
    return _derive_comparison(
        default_outcome.status,
        frequency_outcome.status,
        default_outcome.propagations,
        frequency_outcome.propagations,
        threshold,
        default_wall_seconds=default_outcome.wall_seconds,
        frequency_wall_seconds=frequency_outcome.wall_seconds,
    )


def labeling_tasks(
    cnfs: Sequence[CNF],
    max_conflicts: Optional[int] = 20_000,
    max_propagations: Optional[int] = None,
    config: Optional[SolverConfig] = None,
) -> List[SolveTask]:
    """Both-policy task list for a batch of instances (default, frequency,
    default, frequency, ... — two consecutive tasks per instance)."""
    config = config or default_labeling_config()
    tasks: List[SolveTask] = []
    for index, cnf in enumerate(cnfs):
        for policy in ("default", "frequency"):
            tasks.append(
                SolveTask(
                    cnf=cnf,
                    policy=policy,
                    config=config,
                    max_conflicts=max_conflicts,
                    max_propagations=max_propagations,
                    tag=f"label-{index:05d}",
                )
            )
    return tasks


def label_instances(
    cnfs: Sequence[CNF],
    max_conflicts: Optional[int] = 20_000,
    max_propagations: Optional[int] = None,
    threshold: float = REDUCTION_THRESHOLD,
    config: Optional[SolverConfig] = None,
    runner: Optional[ParallelRunner] = None,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[Union[str, Path]] = None,
    observer: Optional[Observer] = None,
) -> List[PolicyComparison]:
    """Dual-policy labelling of a batch, fanned out across cores.

    The scaling path of Sec. 5.1: every instance is solved once per
    deletion policy (2N tasks), the runner spreads the tasks over
    ``workers`` processes, and any task already present in the
    ``cache_dir`` result cache is not re-solved.  With ``workers=1`` and
    no cache this is exactly ``[compare_policies(c) for c in cnfs]``.

    ``task_timeout`` / ``retries`` / ``journal`` enable the supervised
    execution layer: a hung or crashed solve becomes a failed outcome
    (and the safe label 0) instead of stalling or aborting the sweep,
    and re-running with the same ``journal`` path resumes an
    interrupted sweep without re-solving finished tasks.
    """
    if runner is None:
        runner = ParallelRunner(
            workers=workers, cache_dir=cache_dir,
            task_timeout=task_timeout, retries=retries, journal=journal,
            observer=observer,
        )
    observer = observer if observer is not None else runner.observer
    tasks = labeling_tasks(
        cnfs, max_conflicts=max_conflicts,
        max_propagations=max_propagations, config=config,
    )
    outcomes = runner.run(tasks)
    comparisons: List[PolicyComparison] = []
    for i in range(0, len(outcomes), 2):
        comparison = comparison_from_outcomes(
            outcomes[i], outcomes[i + 1], threshold
        )
        comparisons.append(comparison)
        observer.event(
            "label",
            instance=i // 2,
            label=comparison.label,
            reduction=round(comparison.reduction, 6),
            default_propagations=comparison.default_propagations,
            frequency_propagations=comparison.frequency_propagations,
        )
    observer.flush()
    return comparisons
