"""The NeuroSelect classifier (paper Section 4).

Pipeline (Figure 6): CNF -> bipartite graph -> input encoders -> ``L``
HGT layers -> variable-node readout (Eq. 10) -> MLP -> sigmoid, yielding
the probability that the propagation-frequency deletion policy (label 1)
beats the default policy (label 0) on this instance.

Defaults follow Sec. 5.2: hidden dimension 32, two HGT layers, three
message-passing layers per HGT layer.
"""

from __future__ import annotations

import numpy as np

from repro.cnf.formula import CNF
from repro.graph.bipartite import BipartiteGraph
from repro.models.hgt import HGTLayer
from repro.models.readout import READOUTS
from repro.nn.layers import Linear, MLP, Module
from repro.nn.tensor import Tensor


class NeuroSelect(Module):
    """Hybrid-graph-transformer policy classifier."""

    def __init__(
        self,
        hidden_dim: int = 32,
        num_hgt_layers: int = 2,
        mpnn_layers_per_hgt: int = 3,
        use_attention: bool = True,
        readout: str = "mean",
        seed: int = 0,
    ):
        if readout not in READOUTS:
            raise ValueError(f"unknown readout {readout!r}; options: {sorted(READOUTS)}")
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.use_attention = use_attention
        # Initial scalar embeddings (1 for variables, 0 for clauses, Sec. 4.2)
        # are lifted to the hidden width by per-partition encoders.
        self.var_encoder = Linear(1, hidden_dim, rng=rng)
        self.clause_encoder = Linear(1, hidden_dim, rng=rng)
        self.hgt_layers = [
            HGTLayer(
                hidden_dim,
                mpnn_layers=mpnn_layers_per_hgt,
                use_attention=use_attention,
                rng=rng,
            )
            for _ in range(num_hgt_layers)
        ]
        self.head = MLP([hidden_dim, hidden_dim, 1], rng=rng)
        self.readout_name = readout

    # -- forward -------------------------------------------------------------

    def forward(self, graph: BipartiteGraph) -> Tensor:
        """Raw logit for one instance (shape (1, 1))."""
        var_x = self.var_encoder(Tensor(graph.initial_var_features(1)))
        clause_x = self.clause_encoder(Tensor(graph.initial_clause_features(1)))
        for layer in self.hgt_layers:
            var_x, clause_x = layer(var_x, clause_x, graph)
        h_graph = READOUTS[self.readout_name](var_x)  # Eq. (10)
        return self.head(h_graph)

    def forward_batch(self, batch) -> Tensor:
        """Logits for a :class:`~repro.graph.batching.BatchedBipartiteGraph`.

        One forward pass over the disjoint union; linear attention and
        readout respect member-graph boundaries via the batch's segment
        indices.  Returns shape ``(num_graphs, 1)`` — identical values to
        running :meth:`forward` per member.
        """
        if self.readout_name != "mean":
            raise NotImplementedError(
                "batched forward currently supports the mean readout only"
            )
        var_x = self.var_encoder(Tensor(batch.initial_var_features(1)))
        clause_x = self.clause_encoder(Tensor(batch.initial_clause_features(1)))
        for layer in self.hgt_layers:
            var_x, clause_x = layer(var_x, clause_x, batch)
        # Per-graph mean readout (Eq. 10) over each member's variables.
        summed = var_x.scatter_sum(batch.var_graph_index, batch.num_graphs)
        h_graphs = summed / Tensor(batch.var_counts[:, None])
        return self.head(h_graphs)

    def predict_proba_batch(self, batch) -> list:
        """Per-member probabilities for a batched graph."""
        logits = self.forward_batch(batch).data.ravel()
        return [
            float(1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0)))) for raw in logits
        ]

    def predict_proba(self, instance) -> float:
        """P(frequency policy wins) for a CNF or a prebuilt graph."""
        graph = instance if isinstance(instance, BipartiteGraph) else BipartiteGraph(instance)
        logit = self.forward(graph)
        raw = float(logit.data.ravel()[0])
        return float(1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0))))

    def predict(self, instance, threshold: float = 0.5) -> int:
        """Hard policy label: 1 = frequency policy, 0 = default policy."""
        return int(self.predict_proba(instance) >= threshold)

    #: Graph encoding this model consumes (used by the generic trainer).
    graph_type = BipartiteGraph


def neuroselect_without_attention(
    hidden_dim: int = 32,
    num_hgt_layers: int = 2,
    mpnn_layers_per_hgt: int = 3,
    seed: int = 0,
) -> NeuroSelect:
    """The Table 2 ablation: identical model with attention blocks removed."""
    return NeuroSelect(
        hidden_dim=hidden_dim,
        num_hgt_layers=num_hgt_layers,
        mpnn_layers_per_hgt=mpnn_layers_per_hgt,
        use_attention=False,
        seed=seed,
    )
