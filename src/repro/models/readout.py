"""Graph readout — Eq. (10) of the paper.

``h_G = READOUT({h_v^L : v in V1})``: the graph embedding aggregates the
final variable-node embeddings only.  Mean pooling is the default; max
and mean-plus-max are provided for ablation.
"""

from __future__ import annotations

from repro.nn.tensor import Tensor


def mean_readout(var_features: Tensor) -> Tensor:
    """Mean over variable nodes; output shape (1, d)."""
    return var_features.mean(axis=0, keepdims=True)


def max_readout(var_features: Tensor) -> Tensor:
    """Max over variable nodes; output shape (1, d)."""
    return var_features.max(axis=0, keepdims=True)


def mean_max_readout(var_features: Tensor) -> Tensor:
    """Concatenation-free combination: mean + max (same width)."""
    return mean_readout(var_features) + max_readout(var_features)


READOUTS = {
    "mean": mean_readout,
    "max": max_readout,
    "mean_max": mean_max_readout,
}
