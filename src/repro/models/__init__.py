"""Learning models: the NeuroSelect HGT classifier and Table 2 baselines."""

from repro.models.mpnn import DirectedMessagePass, BipartiteMPNNLayer, MPNNStack
from repro.models.linear_attention import LinearAttention
from repro.models.hgt import HGTLayer
from repro.models.readout import mean_readout, max_readout, mean_max_readout, READOUTS
from repro.models.neuroselect import NeuroSelect, neuroselect_without_attention
from repro.models.baselines import NeuroSATClassifier, GINClassifier, FeatureLogisticRegression

__all__ = [
    "DirectedMessagePass",
    "BipartiteMPNNLayer",
    "MPNNStack",
    "LinearAttention",
    "HGTLayer",
    "mean_readout",
    "max_readout",
    "mean_max_readout",
    "READOUTS",
    "NeuroSelect",
    "neuroselect_without_attention",
    "NeuroSATClassifier",
    "GINClassifier",
    "FeatureLogisticRegression",
]
