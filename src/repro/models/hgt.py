"""The Hybrid Graph Transformer layer — Eqs. (3)-(5) of the paper.

One HGT layer runs the MPNN block over the bipartite graph (Eq. 3), then
applies linear global attention to the *variable* node features only
(Eq. 4); clause features pass through unchanged from the MPNN (Eq. 5).
Attention is restricted to variables because (a) the graph readout is
built from variable embeddings alone and (b) clauses usually outnumber
variables, so this halves-or-better the attention cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.models.linear_attention import LinearAttention
from repro.models.mpnn import MPNNStack
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class HGTLayer(Module):
    """MPNN + variable-node linear attention (one Eq. 3-5 block)."""

    def __init__(
        self,
        dim: int,
        mpnn_layers: int = 3,
        use_attention: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.mpnn = MPNNStack(dim, num_layers=mpnn_layers, rng=rng)
        self.attention = LinearAttention(dim, rng=rng) if use_attention else None

    def forward(
        self,
        var_features: Tensor,
        clause_features: Tensor,
        graph: BipartiteGraph,
    ) -> Tuple[Tensor, Tensor]:
        var_m, clause_m = self.mpnn(var_features, clause_features, graph)  # Eq. (3)
        if self.attention is not None:
            # Batched graphs carry segment indices; attention must then
            # stay within each member graph.
            segments = getattr(graph, "var_graph_index", None)
            counts = getattr(graph, "var_counts", None)
            var_out = self.attention(var_m, segments=segments, counts=counts)  # Eq. (4)
        else:
            var_out = var_m  # ablation: NeuroSelect w/o attention
        return var_out, clause_m  # Eq. (5)
