"""Message-passing layers over the bipartite variable-clause graph.

Implements Eqs. (6)-(7) of the paper.  Aggregation (Eq. 6) computes, for
every node ``v``,

    m_v = (1 / |N(v)|) * sum_{u in N(v)} w_uv * MLP(h_u)

where the MLP is a single linear layer and ``w_uv`` is the ±1 edge
weight.  The update (Eq. 7) is

    h_v' = sigma(MLP(m_v + MLP(h_v)))

with ReLU as the activation.  On the bipartite graph one
:class:`BipartiteMPNNLayer` performs a full round: variables -> clauses,
then clauses -> variables, each direction with its own parameters.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class DirectedMessagePass(Module):
    """One direction of Eq. (6)-(7): messages from source to target nodes."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        self.message_mlp = Linear(dim, dim, rng=rng)  # MLP(h_u) in Eq. (6)
        self.self_mlp = Linear(dim, dim, rng=rng)  # inner MLP(h_v) in Eq. (7)
        self.update_mlp = Linear(dim, dim, rng=rng)  # outer MLP in Eq. (7)

    def forward(
        self,
        source: Tensor,
        target: Tensor,
        edge_source: np.ndarray,
        edge_target: np.ndarray,
        edge_weight: np.ndarray,
        target_degree: np.ndarray,
    ) -> Tensor:
        transformed = self.message_mlp(source)
        per_edge = transformed.gather_rows(edge_source)
        weighted = per_edge * Tensor(edge_weight[:, None])
        summed = weighted.scatter_sum(edge_target, target.shape[0])
        mean = summed / Tensor(target_degree[:, None])  # Eq. (6)
        return self.update_mlp(mean + self.self_mlp(target)).relu()  # Eq. (7)


class BipartiteMPNNLayer(Module):
    """One full message-passing round on the variable-clause graph.

    Clause features are refreshed from variable messages first, then
    variable features from the *new* clause features — information moves
    two hops per layer, matching the usual bipartite GNN convention.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        self.var_to_clause = DirectedMessagePass(dim, rng=rng)
        self.clause_to_var = DirectedMessagePass(dim, rng=rng)

    def forward(
        self,
        var_features: Tensor,
        clause_features: Tensor,
        graph: BipartiteGraph,
    ) -> Tuple[Tensor, Tensor]:
        new_clause = self.var_to_clause(
            var_features,
            clause_features,
            graph.edge_var,
            graph.edge_clause,
            graph.edge_weight,
            graph.clause_degree,
        )
        new_var = self.clause_to_var(
            new_clause,
            var_features,
            graph.edge_clause,
            graph.edge_var,
            graph.edge_weight,
            graph.var_degree,
        )
        return new_var, new_clause


class MPNNStack(Module):
    """``num_layers`` chained rounds — the "MPNN" block of Eq. (3)."""

    def __init__(
        self,
        dim: int,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_layers < 1:
            raise ValueError("need at least one message-passing layer")
        rng = rng or np.random.default_rng(0)
        self.layers = [BipartiteMPNNLayer(dim, rng=rng) for _ in range(num_layers)]

    def forward(
        self,
        var_features: Tensor,
        clause_features: Tensor,
        graph: BipartiteGraph,
    ) -> Tuple[Tensor, Tensor]:
        for layer in self.layers:
            var_features, clause_features = layer(var_features, clause_features, graph)
        return var_features, clause_features
