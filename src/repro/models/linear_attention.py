"""Linear (SGFormer-style) global attention — Eqs. (8)-(9) of the paper.

All-pair attention over the ``N`` variable nodes at O(N·d²) cost instead
of the quadratic O(N²·d) of softmax attention:

    Q = f_Q(Z),  K = f_K(Z),  V = f_V(Z)
    Q̃ = Q / ‖Q‖_F,   K̃ = K / ‖K‖_F
    D = diag(1 + (1/N) · Q̃ (K̃ᵀ 1))
    LinearAttn(Z) = D⁻¹ [ V + (1/N) · Q̃ (K̃ᵀ V) ]

The trick: ``K̃ᵀ V`` and ``K̃ᵀ 1`` are d×d and d×1 reductions computed
once, so no N×N matrix ever materializes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class LinearAttention(Module):
    """The linear global-attention unit applied to variable-node features.

    ``forward`` runs attention over *all* rows as one graph.  For a
    disjoint batch of graphs, pass ``segments``/``counts``: attention is
    then computed independently within each segment (graphs must never
    attend to each other), still without materializing any N x N matrix.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        self.f_q = Linear(dim, dim, rng=rng)
        self.f_k = Linear(dim, dim, rng=rng)
        self.f_v = Linear(dim, dim, rng=rng)
        self.eps = 1e-12

    def forward(
        self,
        z: Tensor,
        segments: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ) -> Tensor:
        if segments is not None:
            if counts is None:
                raise ValueError("segmented attention needs per-segment counts")
            return self._forward_segmented(z, segments, counts)
        n = float(z.shape[0])
        q = self.f_q(z)
        k = self.f_k(z)
        v = self.f_v(z)

        q_norm = ((q * q).sum() + self.eps).sqrt()
        k_norm = ((k * k).sum() + self.eps).sqrt()
        q_tilde = q / q_norm
        k_tilde = k / k_norm

        # K̃ᵀ 1 — column sums of K̃, shape (d,); K̃ᵀ V — shape (d, d).
        kt_one = k_tilde.sum(axis=0)
        kt_v = k_tilde.T @ v

        # D entries: 1 + (1/N) Q̃ (K̃ᵀ 1), shape (N,).
        d_vec = (q_tilde @ kt_one.reshape(-1, 1)) * (1.0 / n) + 1.0

        numerator = v + (q_tilde @ kt_v) * (1.0 / n)
        return numerator / d_vec  # row-wise D⁻¹

    def _forward_segmented(
        self, z: Tensor, segments: np.ndarray, counts: np.ndarray
    ) -> Tensor:
        """Eq. (8)-(9) independently per segment, fully vectorized.

        All per-segment reductions (Frobenius norms, K̃ᵀ1, K̃ᵀV) become
        scatter-sums over the segment index followed by gathers back to
        the rows, so the cost stays linear in the total node count.
        """
        num_segments = len(counts)
        dim = z.shape[1]
        n_per_row = Tensor(counts[segments][:, None])  # (N, 1)

        q = self.f_q(z)
        k = self.f_k(z)
        v = self.f_v(z)

        # Per-segment Frobenius norms, gathered back per row.
        q_norm = (
            ((q * q).scatter_sum(segments, num_segments).sum(axis=1, keepdims=True)
             + self.eps).sqrt()
        ).gather_rows(segments)
        k_norm = (
            ((k * k).scatter_sum(segments, num_segments).sum(axis=1, keepdims=True)
             + self.eps).sqrt()
        ).gather_rows(segments)
        q_tilde = q / q_norm
        k_tilde = k / k_norm

        # K̃ᵀ1 per segment -> per row: (N, d).
        kt_one = k_tilde.scatter_sum(segments, num_segments).gather_rows(segments)
        d_vec = (q_tilde * kt_one).sum(axis=1, keepdims=True) / n_per_row + 1.0

        # K̃ᵀV per segment: sum of per-row outer products k̃_i v_iᵀ.
        outer = k_tilde.reshape(-1, dim, 1) * v.reshape(-1, 1, dim)  # (N, d, d)
        kt_v = outer.scatter_sum(segments, num_segments).gather_rows(segments)
        # q̃_i · K̃ᵀV[segment(i)] -> (N, d).
        attended = (q_tilde.reshape(-1, dim, 1) * kt_v).sum(axis=1)

        numerator = v + attended / n_per_row
        return numerator / d_vec
