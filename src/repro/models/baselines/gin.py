"""GIN classifier on the variable-clause graph (G4SATBench baseline).

Graph Isomorphism Network (Xu et al., 2019) as benchmarked by
G4SATBench: per layer, every node's state becomes

    h_v' = MLP((1 + eps) * h_v + sum_{u in N(v)} h_u)

with *sum* aggregation and a learnable ``eps``.  Layers alternate
variable->clause and clause->variable halves on the bipartite graph; edge
polarity is ignored (GIN is unweighted), which is one reason it trails
NeuroSelect in Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.nn.layers import Linear, MLP, Module
from repro.nn.tensor import Tensor


class GINHalfLayer(Module):
    """One GIN update of the target partition from the source partition."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        self.mlp = MLP([dim, dim, dim], rng=rng)
        self.eps = Tensor(np.zeros(1), requires_grad=True)

    def forward(
        self,
        source: Tensor,
        target: Tensor,
        edge_source: np.ndarray,
        edge_target: np.ndarray,
    ) -> Tensor:
        neighbor_sum = source.gather_rows(edge_source).scatter_sum(
            edge_target, target.shape[0]
        )
        return self.mlp(target * (self.eps + 1.0) + neighbor_sum)


class GINClassifier(Module):
    """Stacked bipartite GIN layers + mean variable readout."""

    def __init__(self, hidden_dim: int = 32, num_layers: int = 3, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.var_encoder = Linear(1, hidden_dim, rng=rng)
        self.clause_encoder = Linear(1, hidden_dim, rng=rng)
        self.var_to_clause = [GINHalfLayer(hidden_dim, rng=rng) for _ in range(num_layers)]
        self.clause_to_var = [GINHalfLayer(hidden_dim, rng=rng) for _ in range(num_layers)]
        self.head = MLP([hidden_dim, hidden_dim, 1], rng=rng)

    def forward(self, graph: BipartiteGraph) -> Tensor:
        var_x = self.var_encoder(Tensor(graph.initial_var_features(1)))
        clause_x = self.clause_encoder(Tensor(graph.initial_clause_features(1)))
        for v2c, c2v in zip(self.var_to_clause, self.clause_to_var):
            clause_x = v2c(var_x, clause_x, graph.edge_var, graph.edge_clause).relu()
            var_x = c2v(clause_x, var_x, graph.edge_clause, graph.edge_var).relu()
        h_graph = var_x.mean(axis=0, keepdims=True)
        return self.head(h_graph)

    def predict_proba(self, instance) -> float:
        graph = instance if isinstance(instance, BipartiteGraph) else BipartiteGraph(instance)
        logit = self.forward(graph)
        raw = float(logit.data.ravel()[0])
        return float(1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0))))

    def predict(self, instance, threshold: float = 0.5) -> int:
        return int(self.predict_proba(instance) >= threshold)

    graph_type = BipartiteGraph
