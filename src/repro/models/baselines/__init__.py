"""Baseline CNF classifiers for the Table 2 comparison.

* :class:`NeuroSATClassifier` — literal-clause-graph recurrent message
  passing after Selsam et al. (2018), adapted to policy classification.
* :class:`GINClassifier` — Graph Isomorphism Network on the
  variable-clause graph, the strongest G4SATBench configuration.
"""

from repro.models.baselines.neurosat import NeuroSATClassifier
from repro.models.baselines.gin import GINClassifier
from repro.models.baselines.feature_lr import FeatureLogisticRegression, FeatureVector

__all__ = ["NeuroSATClassifier", "GINClassifier", "FeatureLogisticRegression", "FeatureVector"]
