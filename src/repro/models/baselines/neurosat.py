"""NeuroSAT-style classifier (Table 2 baseline).

Follows Selsam et al. (2018): the CNF is a *literal*-clause graph; for
``T`` rounds, clause states aggregate messages from their literals and
literal states aggregate messages from their clauses plus the state of
their complement literal (the "flip").  The original uses LSTM updates;
this reproduction uses gateless tanh recurrences of matching widths —
the simplification is documented in DESIGN.md and only needs to hold up
as a classification baseline, which is all Table 2 asks of it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.lcg import LiteralClauseGraph
from repro.nn.layers import Linear, MLP, Module
from repro.nn.tensor import Tensor


class NeuroSATClassifier(Module):
    """Recurrent literal/clause message passing + mean literal readout."""

    def __init__(
        self,
        hidden_dim: int = 32,
        num_rounds: int = 6,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.num_rounds = num_rounds
        # Learned initial states (shared across all literals / clauses).
        self.lit_init = Tensor(rng.normal(scale=0.1, size=(1, hidden_dim)), requires_grad=True)
        self.clause_init = Tensor(rng.normal(scale=0.1, size=(1, hidden_dim)), requires_grad=True)
        # Message encoders and state updates.
        self.lit_msg = MLP([hidden_dim, hidden_dim, hidden_dim], rng=rng)
        self.clause_msg = MLP([hidden_dim, hidden_dim, hidden_dim], rng=rng)
        self.clause_update = Linear(2 * hidden_dim, hidden_dim, rng=rng)
        self.lit_update = Linear(3 * hidden_dim, hidden_dim, rng=rng)
        self.head = MLP([hidden_dim, hidden_dim, 1], rng=rng)

    def forward(self, graph: LiteralClauseGraph) -> Tensor:
        ones_l = Tensor(np.ones((graph.num_literals, 1)))
        ones_c = Tensor(np.ones((graph.num_clauses, 1)))
        lit_state = ones_l @ self.lit_init
        clause_state = ones_c @ self.clause_init
        flip = graph.flip_index()

        for _ in range(self.num_rounds):
            # Clauses <- literals.
            lit_messages = self.lit_msg(lit_state)
            incoming_c = lit_messages.gather_rows(graph.edge_lit).scatter_sum(
                graph.edge_clause, graph.num_clauses
            ) / Tensor(graph.clause_degree[:, None])
            clause_state = _concat(clause_state, incoming_c)
            clause_state = self.clause_update(clause_state).tanh()
            # Literals <- clauses (+ complement state).
            clause_messages = self.clause_msg(clause_state)
            incoming_l = clause_messages.gather_rows(graph.edge_clause).scatter_sum(
                graph.edge_lit, graph.num_literals
            ) / Tensor(graph.lit_degree[:, None])
            flipped = lit_state.gather_rows(flip)
            lit_state = self.lit_update(
                _concat(_concat(lit_state, incoming_l), flipped)
            ).tanh()

        h_graph = lit_state.mean(axis=0, keepdims=True)
        return self.head(h_graph)

    def predict_proba(self, instance) -> float:
        graph = (
            instance
            if isinstance(instance, LiteralClauseGraph)
            else LiteralClauseGraph(instance)
        )
        logit = self.forward(graph)
        raw = float(logit.data.ravel()[0])
        return float(1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0))))

    def predict(self, instance, threshold: float = 0.5) -> int:
        return int(self.predict_proba(instance) >= threshold)

    #: Graph encoding this model consumes (used by the generic trainer).
    graph_type = LiteralClauseGraph


def _concat(a: Tensor, b: Tensor) -> Tensor:
    """Column-wise concatenation built from differentiable primitives.

    Equivalent to ``np.concatenate([a, b], axis=1)``: each operand is
    right-multiplied by a constant selector matrix placing it into its
    column block, then the two placements are added.
    """
    n, da = a.shape
    _, db = b.shape
    left = np.zeros((da, da + db))
    left[:, :da] = np.eye(da)
    right = np.zeros((db, da + db))
    right[:, da:] = np.eye(db)
    return a @ Tensor(left) + b @ Tensor(right)
