"""Feature-based logistic-regression baseline.

A classical-ML reference point below the graph networks of Table 2: a
single linear layer over the static formula features of
:mod:`repro.cnf.features` (optionally plus the VIG structure measures),
trained with the same BCE/Adam recipe.  How far the GNNs beat this
baseline measures how much of the signal is *structural* rather than
reachable from summary statistics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cnf.features import extract_features
from repro.cnf.formula import CNF
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class FeatureVector:
    """The "graph" encoding of this model: a standardized feature row.

    Standardization statistics are fixed at construction of the model's
    first training batch via :meth:`FeatureLogisticRegression.fit_scaler`;
    until then, raw features pass through (tests and inference on single
    instances still work).
    """

    def __init__(self, cnf: CNF):
        self.raw = np.asarray(extract_features(cnf).as_vector(), dtype=np.float64)


class FeatureLogisticRegression(Module):
    """Logistic regression over :class:`~repro.cnf.features.FormulaFeatures`."""

    NUM_FEATURES = 14

    def __init__(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.linear = Linear(self.NUM_FEATURES, 1, rng=rng)
        # Feature standardization (identity until fit_scaler is called).
        self._mean = np.zeros(self.NUM_FEATURES)
        self._scale = np.ones(self.NUM_FEATURES)

    #: Encoding consumed by the generic trainer.
    graph_type = FeatureVector

    def fit_scaler(self, vectors: List[FeatureVector]) -> None:
        """Freeze standardization statistics from training feature rows."""
        matrix = np.stack([v.raw for v in vectors])
        self._mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self._scale = scale

    def _standardize(self, vector: FeatureVector) -> np.ndarray:
        return (vector.raw - self._mean) / self._scale

    def forward(self, vector: FeatureVector) -> Tensor:
        x = Tensor(self._standardize(vector)[None, :])
        return self.linear(x)

    def predict_proba(self, instance) -> float:
        vector = instance if isinstance(instance, FeatureVector) else FeatureVector(instance)
        raw = float(self.forward(vector).data.ravel()[0])
        return float(1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0))))

    def predict(self, instance, threshold: float = 0.5) -> int:
        return int(self.predict_proba(instance) >= threshold)
