"""Effort-to-time calibration.

The paper reports wall-clock seconds under a 5,000 s timeout on its
testbed.  Our substrate measures deterministic *propagations* (the
paper's own labelling metric).  For paper-style tables we map effort to
"virtual seconds" with a fixed linear scale chosen so that the
experiment's effort budget corresponds to the paper's 5,000 s timeout —
ratios, medians, and crossovers are invariant under this scaling, which
is exactly the "shape" the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's wall-clock timeout (Sec. 3.2, Sec. 5.4).
PAPER_TIMEOUT_SECONDS = 5_000.0


@dataclass(frozen=True)
class EffortScale:
    """Linear map from propagation counts to virtual seconds."""

    propagations_at_timeout: int
    timeout_seconds: float = PAPER_TIMEOUT_SECONDS

    @property
    def propagations_per_second(self) -> float:
        return self.propagations_at_timeout / self.timeout_seconds

    def to_seconds(self, propagations: int) -> float:
        """Virtual seconds of a run, capped at the timeout."""
        seconds = propagations / self.propagations_per_second
        return min(seconds, self.timeout_seconds)

    def is_timeout(self, propagations: int) -> bool:
        return propagations >= self.propagations_at_timeout


def scale_for_budget(max_propagations: int) -> EffortScale:
    """The scale under which ``max_propagations`` plays the 5,000 s role."""
    if max_propagations <= 0:
        raise ValueError("budget must be positive")
    return EffortScale(propagations_at_timeout=max_propagations)
