"""Plain-text table and series formatting for experiment output.

Every bench prints its result through these helpers so the harness
output visually parallels the paper's tables and figures.
"""

from __future__ import annotations

from typing import Dict, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_dict_table(rows: Sequence[Dict[str, object]]) -> str:
    """Table from homogeneous dict rows (keys of the first row = headers)."""
    if not rows:
        return "(empty)"
    headers = list(rows[0].keys())
    return format_table(headers, [[row.get(h, "") for h in headers] for row in rows])


def format_scatter(
    pairs: Sequence[Sequence[float]],
    x_label: str,
    y_label: str,
    width: int = 48,
    height: int = 16,
) -> str:
    """ASCII scatter plot with the y=x diagonal, for Figure 4 / 7(a)."""
    if not pairs:
        return "(no points)"
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    hi = max(max(xs), max(ys)) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for row in range(height):
        # The y = x diagonal (origin bottom-left).
        col = int((height - 1 - row) / (height - 1) * (width - 1))
        grid[row][col] = "."
    for x, y in pairs:
        col = min(int(x / hi * (width - 1)), width - 1)
        row = height - 1 - min(int(y / hi * (height - 1)), height - 1)
        grid[row][col] = "o"
    lines = ["".join(r) for r in grid]
    lines.append(f"x: {x_label} (0..{hi:.0f}), y: {y_label}; '.' = diagonal")
    return "\n".join(lines)


def format_box_stats(values: Sequence[float], label: str) -> str:
    """Five-number summary standing in for a box-and-whisker plot (Fig 7b)."""
    if not values:
        return f"{label}: (no data)"
    ordered = sorted(values)
    n = len(ordered)

    def quantile(q: float) -> float:
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    return (
        f"{label}: min={ordered[0]:.4g} q1={quantile(0.25):.4g} "
        f"median={quantile(0.5):.4g} q3={quantile(0.75):.4g} max={ordered[-1]:.4g}"
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
