"""EXPERIMENTS.md generation from benchmark results.

``pytest benchmarks/ --benchmark-only`` writes each experiment's
paper-style output into ``benchmarks/results/``;
:func:`build_experiments_md` assembles those files, together with the
paper's reference numbers, into the repository's ``EXPERIMENTS.md`` so
the published comparison always reflects an actual run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

#: Paper-reported reference values, quoted verbatim for the comparison.
PAPER_REFERENCE = {
    "fig3_propagation_frequency": (
        "Figure 3 — distribution of variable propagation frequency",
        "A handful of variables are propagated far more often than the rest "
        "(heavily skewed distribution on a SAT Competition 2022 instance).",
    ),
    "fig4_policy_scatter": (
        "Figure 4 — default vs. new clause deletion policy",
        "Instances fall on both sides of the diagonal under a 5,000 s "
        "timeout: neither policy dominates, motivating adaptive selection.",
    ),
    "table1_dataset_stats": (
        "Table 1 — dataset statistics",
        "736 training CNFs from 2016-2021 (means 12k-17k variables, "
        "69k-100k clauses per year) and 144 test CNFs from 2022, after "
        "excluding formulas whose graphs exceed 400k nodes.",
    ),
    "table2_classification": (
        "Table 2 — SAT classification models",
        "NeuroSAT 56.94%, G4SATBench 54.86%, NeuroSelect w/o attention "
        "63.89%, NeuroSelect 69.44% accuracy; full NeuroSelect best on "
        "precision (66.00%) and F1 (60.50%).",
    ),
    "fig7_neuroselect": (
        "Figure 7 — NeuroSelect-Kissat performance",
        "(a) most instances at or below the diagonal vs. Kissat; wrong "
        "selections are few and near the diagonal.  (b) inference takes "
        "0.01-2.22 s; runtime improvements reach 4,425 s.",
    ),
    "table3_runtime": (
        "Table 3 — runtime statistics on SAT Competition 2022",
        "Kissat: 274 solved, median 307.02 s, average 713.28 s. "
        "NeuroSelect-Kissat: 274 solved, median 271.34 s (-5.8%), "
        "average 671.73 s.",
    ),
    "complexity_scaling": (
        "Sec. 4.3 — complexity analysis (extension measurement)",
        "Claimed: one inference costs O(|E| + |V1|) — linear in formula size.",
    ),
    "ablation_alpha": (
        "Ablation — Eq. (2) threshold α (design choice)",
        "Paper fixes α = 4/5 'according to our empirical studies'.",
    ),
    "ablation_score_layout": (
        "Ablation — packed-score layout (Figure 5 reading)",
        "Paper places frequency below glue and size; the figure's OCR "
        "admits a frequency-first reading, compared here.",
    ),
    "ablation_reduce": (
        "Ablation — reduce scheduling (substitution parameter)",
        "No paper reference; justifies the scaled-down Kissat reduce "
        "interval used throughout (DESIGN.md).",
    ),
    "family_analysis": (
        "Extension — per-family policy preference",
        "No paper reference; breaks Figure 4 down by instance family.",
    ),
    "cactus": (
        "Extension — cactus plot (solved vs. budget)",
        "No paper reference; the standard SAT-competition presentation "
        "complementing Table 3, with the virtual-best oracle as bound.",
    ),
    "ablation_augmentation": (
        "Ablation — symmetry data augmentation (extension)",
        "No paper reference; measures whether CNF-symmetry augmentation "
        "of the small training split helps the classifier.",
    ),
    "ablation_model": (
        "Ablation — NeuroSelect capacity/architecture (design choice)",
        "Paper fixes hidden 32, two HGT layers with three MPNN layers "
        "each, mean readout (Sec. 5.2).",
    ),
}

#: Presentation order of the report sections.
SECTION_ORDER = [
    "fig3_propagation_frequency",
    "fig4_policy_scatter",
    "table1_dataset_stats",
    "table2_classification",
    "fig7_neuroselect",
    "table3_runtime",
    "complexity_scaling",
    "ablation_alpha",
    "ablation_score_layout",
    "ablation_reduce",
    "ablation_model",
    "ablation_augmentation",
    "family_analysis",
    "cactus",
]

HEADER = """# EXPERIMENTS — paper vs. measured

Generated from `benchmarks/results/` (the output of
`pytest benchmarks/ --benchmark-only`).  Absolute numbers are **not**
expected to match the paper — the substrate is a pure-Python CDCL solver
on synthetic instances with propagation-count timeouts (see DESIGN.md
for the substitution table).  What must match, and is asserted by every
benchmark, is the *shape* of each result: who wins, how distributions
skew, how models rank, and where the crossovers fall.

Regenerate with:

```bash
pytest benchmarks/ --benchmark-only      # writes benchmarks/results/
python -m repro.bench.reporting          # rebuilds this file
```
"""


@dataclass
class Section:
    name: str
    title: str
    paper: str
    measured: Optional[str]

    def render(self) -> str:
        measured = (
            f"```\n{self.measured.rstrip()}\n```"
            if self.measured
            else "_no result file found — run the benchmarks first_"
        )
        return (
            f"## {self.title}\n\n"
            f"**Paper:** {self.paper}\n\n"
            f"**Measured (this repository):**\n\n{measured}\n"
        )


def collect_sections(results_dir: Path) -> List[Section]:
    """Pair each known experiment with its result file (if present)."""
    sections = []
    for name in SECTION_ORDER:
        title, paper = PAPER_REFERENCE[name]
        path = results_dir / f"{name}.txt"
        measured = path.read_text() if path.exists() else None
        sections.append(Section(name=name, title=title, paper=paper, measured=measured))
    return sections


def build_experiments_md(
    results_dir: Optional[Path] = None,
    output: Optional[Path] = None,
) -> str:
    """Assemble EXPERIMENTS.md; returns the text (and writes ``output``)."""
    repo_root = Path(__file__).resolve().parents[3]
    results_dir = results_dir or repo_root / "benchmarks" / "results"
    output = output or repo_root / "EXPERIMENTS.md"

    parts = [HEADER]
    parts.extend(section.render() for section in collect_sections(results_dir))
    text = "\n".join(parts)
    output.write_text(text)
    return text


if __name__ == "__main__":
    build_experiments_md()
    print("EXPERIMENTS.md rebuilt")
