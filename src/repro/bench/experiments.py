"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data (lists/dataclasses) plus a ``render()``-ed
string through :mod:`repro.bench.tables`; the ``benchmarks/`` scripts and
the examples call these, so the numbers printed by ``pytest
benchmarks/`` are produced by exactly the same code paths a library user
would run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.calibration import EffortScale, scale_for_budget
from repro.bench.runner import (
    InstanceRecord,
    SuiteStatistics,
    run_suite,
    suite_statistics,
)
from repro.bench.tables import (
    format_box_stats,
    format_dict_table,
    format_scatter,
    format_table,
)
from repro.cnf.formula import CNF
from repro.models import (
    GINClassifier,
    NeuroSATClassifier,
    NeuroSelect,
    neuroselect_without_attention,
)
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.selection import (
    LabeledInstance,
    PolicyDataset,
    Trainer,
    build_dataset,
    dataset_statistics,
)
from repro.selection.labeling import default_labeling_config
from repro.selection.selector import NeuroSelectSolver
from repro.solver.solver import Solver
from repro.solver.types import Status


# ---------------------------------------------------------------------------
# Figure 3 — distribution of variable propagation frequency
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    """Per-variable propagation counts after solving one instance."""

    frequencies: List[int]
    total_propagations: int

    @property
    def max_frequency(self) -> int:
        return max(self.frequencies) if self.frequencies else 0

    @property
    def top_decile_share(self) -> float:
        """Share of all propagations carried by the hottest 10% of variables."""
        if not self.frequencies or self.total_propagations == 0:
            return 0.0
        ordered = sorted(self.frequencies, reverse=True)
        top = ordered[: max(1, len(ordered) // 10)]
        return sum(top) / self.total_propagations

    @property
    def gini(self) -> float:
        """Inequality of the distribution (0 uniform, ->1 skewed)."""
        values = sorted(self.frequencies)
        total = sum(values)
        if total == 0:
            return 0.0
        n = len(values)
        cum = 0.0
        weighted = 0.0
        for v in values:
            cum += v
            weighted += cum
        return 1.0 - 2.0 * (weighted - total / 2.0) / (n * total)

    def histogram(self, bins: int = 10) -> List[Tuple[str, int]]:
        """Frequency histogram rows (range label, variable count)."""
        if not self.frequencies:
            return []
        hi = max(self.frequencies) or 1
        edges = np.linspace(0, hi, bins + 1)
        counts, _ = np.histogram(self.frequencies, bins=edges)
        return [
            (f"[{edges[i]:.0f}, {edges[i + 1]:.0f})", int(counts[i]))
            for i in range(bins)
        ]

    def render(self) -> str:
        rows = [(label, count, "#" * min(60, count)) for label, count in self.histogram()]
        table = format_table(["propagation count", "#variables", ""], rows)
        return (
            f"{table}\n"
            f"variables={len(self.frequencies)} total_propagations={self.total_propagations} "
            f"max={self.max_frequency} gini={self.gini:.3f} "
            f"top-10%-share={self.top_decile_share:.2f}"
        )


def fig3_propagation_frequency(
    cnf: CNF, max_conflicts: int = 10_000
) -> Fig3Result:
    """Solve one instance and report per-variable propagation frequency.

    Reproduces Figure 3: a handful of variables dominate propagation,
    motivating the frequency-guided deletion criterion.
    """
    solver = Solver(cnf, policy=DefaultPolicy(), config=default_labeling_config())
    solver.solve(max_conflicts=max_conflicts)
    freqs = solver.propagator.lifetime_frequency[1:]
    return Fig3Result(frequencies=list(freqs), total_propagations=sum(freqs))


# ---------------------------------------------------------------------------
# Figure 4 — default vs. frequency policy scatter
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    """Head-to-head effort of the two policies on a suite."""

    names: List[str]
    default_seconds: List[float]
    frequency_seconds: List[float]
    scale: EffortScale

    @property
    def wins(self) -> int:
        """Instances where the frequency policy is strictly faster."""
        return sum(
            f < d for d, f in zip(self.default_seconds, self.frequency_seconds)
        )

    @property
    def losses(self) -> int:
        return sum(
            f > d for d, f in zip(self.default_seconds, self.frequency_seconds)
        )

    @property
    def ties(self) -> int:
        return len(self.names) - self.wins - self.losses

    def render(self) -> str:
        pairs = list(zip(self.default_seconds, self.frequency_seconds))
        plot = format_scatter(pairs, "Kissat (s)", "Kissat-new (s)")
        return (
            f"{plot}\n"
            f"instances={len(self.names)} frequency-policy wins={self.wins} "
            f"losses={self.losses} ties={self.ties}"
        )


def fig4_policy_scatter(
    instances: Sequence[LabeledInstance],
    max_propagations: int = 400_000,
) -> Fig4Result:
    """Run both deletion policies on a suite (Figure 4's scatter data)."""
    scale = scale_for_budget(max_propagations)
    default_records = run_suite(instances, "default", max_propagations)
    frequency_records = run_suite(instances, "frequency", max_propagations)
    return Fig4Result(
        names=[r.name for r in default_records],
        default_seconds=[_record_seconds(r, scale) for r in default_records],
        frequency_seconds=[_record_seconds(r, scale) for r in frequency_records],
        scale=scale,
    )


def _record_seconds(record: InstanceRecord, scale: EffortScale) -> float:
    if not record.solved:
        return scale.timeout_seconds
    return scale.to_seconds(record.propagations) + record.inference_seconds


# ---------------------------------------------------------------------------
# Table 1 — dataset statistics
# ---------------------------------------------------------------------------

def table1_dataset_statistics(dataset: PolicyDataset) -> str:
    """Render the Table 1 analogue for a built dataset."""
    rows = [
        {
            "Data Type": s.split,
            "Year": s.year,
            "# CNFs": s.num_cnfs,
            "# Variables": round(s.mean_variables, 1),
            "# Clauses": round(s.mean_clauses, 1),
        }
        for s in dataset_statistics(dataset)
    ]
    return format_dict_table(rows)


# ---------------------------------------------------------------------------
# Table 2 — classifier comparison
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    """Metrics per model, in the paper's row order."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def accuracy_of(self, model_name: str) -> float:
        for row in self.rows:
            if row["model"] == model_name:
                return float(str(row["accuracy"]).rstrip("%"))
        raise KeyError(model_name)

    def render(self) -> str:
        return format_dict_table(self.rows)


def default_table2_models(hidden_dim: int = 32, seed: int = 0) -> Dict[str, object]:
    """The four Table 2 contenders at matched capacity."""
    return {
        "NeuroSAT": NeuroSATClassifier(hidden_dim=hidden_dim, num_rounds=4, seed=seed),
        "G4SATBench (GIN)": GINClassifier(hidden_dim=hidden_dim, num_layers=3, seed=seed),
        "NeuroSelect w/o attention": neuroselect_without_attention(
            hidden_dim=hidden_dim, seed=seed
        ),
        "NeuroSelect": NeuroSelect(hidden_dim=hidden_dim, seed=seed),
    }


def table2_classification(
    dataset: PolicyDataset,
    models: Optional[Dict[str, object]] = None,
    epochs: int = 60,
    learning_rate: float = 3e-3,
) -> Table2Result:
    """Train each classifier on the train years, evaluate on the test year.

    The paper trains 400 epochs at lr 1e-4; at our dataset scale the same
    optimization budget is reached faster, so the default is fewer epochs
    at a proportionally larger step (overridable to the paper's values).
    """
    models = models or default_table2_models()
    result = Table2Result()
    for name, model in models.items():
        trainer = Trainer(model, learning_rate=learning_rate, epochs=epochs)
        trainer.fit(dataset.train)
        metrics = trainer.evaluate(dataset.test)
        row: Dict[str, object] = {"model": name}
        row.update(
            {k: f"{v:.2f}%" for k, v in metrics.as_row().items()}
        )
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 7 + Table 3 — NeuroSelect-Kissat end-to-end
# ---------------------------------------------------------------------------

@dataclass
class EndToEndResult:
    """Everything Figure 7 and Table 3 report, from one evaluation run."""

    names: List[str]
    kissat_seconds: List[float]
    neuroselect_seconds: List[float]
    inference_seconds: List[float]
    improvements: List[float]  # kissat - neuroselect, per instance
    kissat_stats: SuiteStatistics
    neuroselect_stats: SuiteStatistics
    scale: EffortScale

    @property
    def median_improvement_percent(self) -> float:
        base = self.kissat_stats.median_seconds
        if base == 0:
            return 0.0
        return 100.0 * (base - self.neuroselect_stats.median_seconds) / base

    def render_fig7(self) -> str:
        pairs = list(zip(self.kissat_seconds, self.neuroselect_seconds))
        plot = format_scatter(pairs, "Kissat (s)", "NeuroSelect-Kissat (s)")
        boxes = "\n".join(
            [
                format_box_stats(self.inference_seconds, "model inference time (s)"),
                format_box_stats(
                    [i for i in self.improvements if i > 0],
                    "solver runtime improvement (s)",
                ),
            ]
        )
        return f"{plot}\n{boxes}"

    def render_table3(self) -> str:
        table = format_dict_table(
            [self.kissat_stats.as_row(), self.neuroselect_stats.as_row()]
        )
        return (
            f"{table}\n"
            f"median improvement: {self.median_improvement_percent:.1f}% "
            f"(paper: 5.8% [Kissat 307.02 s -> NeuroSelect-Kissat 271.34 s], "
            f"solved 274 = 274)"
        )


def fig7_table3_end_to_end(
    test_instances: Sequence[LabeledInstance],
    model,
    max_propagations: int = 400_000,
) -> EndToEndResult:
    """Compare stock Kissat against NeuroSelect-Kissat on the test year."""
    scale = scale_for_budget(max_propagations)
    kissat_records = run_suite(test_instances, "default", max_propagations)

    # Same solver configuration as the baseline suites, so the only
    # difference between the two rows of Table 3 is the policy choice.
    selector = NeuroSelectSolver(model, config=default_labeling_config())
    neuro_records: List[InstanceRecord] = []
    for i, inst in enumerate(test_instances):
        outcome = selector.solve(inst.cnf, max_propagations=max_propagations)
        neuro_records.append(
            InstanceRecord(
                name=f"inst-{i:03d}",
                family=inst.family,
                policy=outcome.policy_name,
                status=outcome.result.status,
                propagations=outcome.result.stats.propagations,
                conflicts=outcome.result.stats.conflicts,
                wall_seconds=0.0,
                inference_seconds=outcome.inference_seconds,
            )
        )

    kissat_seconds = [_record_seconds(r, scale) for r in kissat_records]
    neuro_seconds = [_record_seconds(r, scale) for r in neuro_records]
    return EndToEndResult(
        names=[r.name for r in kissat_records],
        kissat_seconds=kissat_seconds,
        neuroselect_seconds=neuro_seconds,
        inference_seconds=[r.inference_seconds for r in neuro_records],
        improvements=[k - n for k, n in zip(kissat_seconds, neuro_seconds)],
        kissat_stats=suite_statistics(kissat_records, scale, "Kissat"),
        neuroselect_stats=suite_statistics(neuro_records, scale, "NeuroSelect-Kissat"),
        scale=scale,
    )


@dataclass
class CactusResult:
    """Solved-count-vs-time curves, one per solver variant."""

    series: Dict[str, List[float]]  # name -> sorted per-instance seconds (solved only)
    timeout_seconds: float
    total_instances: int

    def solved_within(self, name: str, seconds: float) -> int:
        return sum(1 for s in self.series[name] if s <= seconds)

    def render(self) -> str:
        lines = []
        checkpoints = [
            self.timeout_seconds * f for f in (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)
        ]
        header = ["budget (s)"] + list(self.series)
        rows = []
        for budget in checkpoints:
            rows.append(
                [f"{budget:.0f}"]
                + [str(self.solved_within(name, budget)) for name in self.series]
            )
        lines.append(format_table(header, rows))
        lines.append(
            f"(solved counts out of {self.total_instances} instances at "
            f"increasing virtual-time budgets)"
        )
        return "\n".join(lines)


def cactus_plot_data(
    test_instances: Sequence[LabeledInstance],
    model,
    max_propagations: int = 400_000,
) -> CactusResult:
    """Solved-vs-budget curves for default, frequency, selector, and oracle.

    The standard SAT-competition presentation: for each solver variant,
    sort its per-instance runtimes; the curve point ``(t, k)`` says "k
    instances solved within budget t".  Curves further right/down are
    better.
    """
    scale = scale_for_budget(max_propagations)
    default_records = run_suite(test_instances, "default", max_propagations)
    frequency_records = run_suite(test_instances, "frequency", max_propagations)

    selector = NeuroSelectSolver(model, config=default_labeling_config())
    selector_seconds: List[float] = []
    for inst in test_instances:
        outcome = selector.solve(inst.cnf, max_propagations=max_propagations)
        if outcome.result.status.decided:
            selector_seconds.append(
                scale.to_seconds(outcome.result.stats.propagations)
                + outcome.inference_seconds
            )

    def solved_seconds(records):
        return sorted(
            scale.to_seconds(r.propagations) for r in records if r.solved
        )

    default_seconds = solved_seconds(default_records)
    frequency_seconds = solved_seconds(frequency_records)
    oracle_seconds = sorted(
        min(d, f)
        for d, f in zip(
            [_record_seconds(r, scale) for r in default_records],
            [_record_seconds(r, scale) for r in frequency_records],
        )
        if min(d, f) < scale.timeout_seconds
    )
    return CactusResult(
        series={
            "Kissat": default_seconds,
            "Kissat-new": frequency_seconds,
            "NeuroSelect-Kissat": sorted(selector_seconds),
            "Oracle": oracle_seconds,
        },
        timeout_seconds=scale.timeout_seconds,
        total_instances=len(test_instances),
    )


def oracle_end_to_end(
    test_instances: Sequence[LabeledInstance],
    max_propagations: int = 400_000,
) -> SuiteStatistics:
    """Virtual-best selector (upper bound for Table 3): per-instance best policy."""
    scale = scale_for_budget(max_propagations)
    default_records = run_suite(test_instances, "default", max_propagations)
    frequency_records = run_suite(test_instances, "frequency", max_propagations)
    best: List[InstanceRecord] = []
    for d, f in zip(default_records, frequency_records):
        best.append(d if _record_seconds(d, scale) <= _record_seconds(f, scale) else f)
    return suite_statistics(best, scale, "Oracle (virtual best)")
