"""Benchmark harness: suite runners, calibration, and per-figure drivers."""

from repro.bench.calibration import EffortScale, scale_for_budget, PAPER_TIMEOUT_SECONDS
from repro.bench.runner import (
    InstanceRecord,
    SuiteStatistics,
    run_instance,
    run_suite,
    suite_statistics,
)
from repro.bench.tables import (
    format_table,
    format_dict_table,
    format_scatter,
    format_box_stats,
)
from repro.bench.reporting import build_experiments_md
from repro.bench.experiments import (
    Fig3Result,
    Fig4Result,
    Table2Result,
    EndToEndResult,
    fig3_propagation_frequency,
    fig4_policy_scatter,
    table1_dataset_statistics,
    table2_classification,
    default_table2_models,
    fig7_table3_end_to_end,
    oracle_end_to_end,
    cactus_plot_data,
    CactusResult,
)

__all__ = [
    "EffortScale",
    "scale_for_budget",
    "PAPER_TIMEOUT_SECONDS",
    "InstanceRecord",
    "SuiteStatistics",
    "run_instance",
    "run_suite",
    "suite_statistics",
    "format_table",
    "format_dict_table",
    "format_scatter",
    "format_box_stats",
    "Fig3Result",
    "Fig4Result",
    "Table2Result",
    "EndToEndResult",
    "fig3_propagation_frequency",
    "fig4_policy_scatter",
    "table1_dataset_statistics",
    "table2_classification",
    "default_table2_models",
    "fig7_table3_end_to_end",
    "oracle_end_to_end",
    "build_experiments_md",
    "cactus_plot_data",
    "CactusResult",
]
