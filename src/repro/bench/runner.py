"""Suite runner: solve instance sets under policies and collect records."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.calibration import EffortScale
from repro.cnf.formula import CNF
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.parallel.runner import ParallelRunner, SolveOutcome, SolveTask
from repro.selection.labeling import default_labeling_config
from repro.policies.registry import get_policy
from repro.solver.solver import Solver, SolverConfig
from repro.solver.types import Status


@dataclass
class InstanceRecord:
    """One (instance, solver-variant) run."""

    name: str
    family: str
    policy: str
    status: Status
    propagations: int
    conflicts: int
    wall_seconds: float
    inference_seconds: float = 0.0

    @property
    def solved(self) -> bool:
        # ``decided`` (SAT/UNSAT), so supervision failures such as
        # TIMEOUT / ERROR / MEMOUT count as unsolved, like UNKNOWN.
        return self.status.decided


def run_instance(
    cnf: CNF,
    policy_name: str,
    max_propagations: int,
    name: str = "",
    family: str = "",
    config: Optional[SolverConfig] = None,
) -> InstanceRecord:
    """Solve one instance under one policy with a propagation timeout."""
    solver = Solver(
        cnf,
        policy=get_policy(policy_name),
        config=config or default_labeling_config(),
    )
    start = time.perf_counter()
    result = solver.solve(max_propagations=max_propagations)
    wall = time.perf_counter() - start
    return InstanceRecord(
        name=name or repr(cnf),
        family=family,
        policy=policy_name,
        status=result.status,
        propagations=result.stats.propagations,
        conflicts=result.stats.conflicts,
        wall_seconds=wall,
    )


def run_suite(
    instances: Sequence,
    policy_name: str,
    max_propagations: int,
    config: Optional[SolverConfig] = None,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    runner: Optional[ParallelRunner] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[Union[str, Path]] = None,
    observer: Optional[Observer] = None,
) -> List[InstanceRecord]:
    """Run every ``LabeledInstance`` (or CNF) under one policy.

    ``workers`` fans the suite out across processes and ``cache_dir``
    (or a pre-built ``runner``) adds the on-disk result cache, so
    repeated suite runs — e.g. the same instances under several policies
    and budgets across benchmark sessions — never re-solve a pair.  The
    records are identical to the sequential path; the solver is
    deterministic per (instance, policy, config, budgets).

    ``task_timeout`` / ``retries`` / ``journal`` enable supervised
    execution: a wedged instance is killed and recorded as a TIMEOUT
    record (unsolved, like UNKNOWN) instead of stalling the suite, and
    re-running with the same journal resumes an interrupted sweep.
    """
    if runner is None:
        runner = ParallelRunner(
            workers=workers, cache_dir=cache_dir,
            task_timeout=task_timeout, retries=retries, journal=journal,
            observer=observer,
        )
    obs = observer if observer is not None else NULL_OBSERVER
    families = [getattr(inst, "family", "") for inst in instances]
    tasks = [
        SolveTask(
            cnf=getattr(inst, "cnf", inst),
            policy=policy_name,
            config=config or default_labeling_config(),
            max_propagations=max_propagations,
            tag=f"inst-{i:03d}",
        )
        for i, inst in enumerate(instances)
    ]
    obs.event(
        "suite-start",
        policy=policy_name,
        instances=len(tasks),
        max_propagations=max_propagations,
    )
    with obs.span("suite", emit=False):
        outcomes = runner.run(tasks)
    records = [
        _record_from_outcome(outcome, family)
        for outcome, family in zip(outcomes, families)
    ]
    obs.event(
        "suite-end",
        policy=policy_name,
        instances=len(records),
        solved=sum(1 for r in records if r.solved),
        wall_seconds=round(sum(r.wall_seconds for r in records), 6),
    )
    obs.flush()
    return records


def _record_from_outcome(outcome: SolveOutcome, family: str) -> InstanceRecord:
    return InstanceRecord(
        name=outcome.tag,
        family=family,
        policy=outcome.policy,
        status=outcome.status,
        propagations=outcome.propagations,
        conflicts=outcome.conflicts,
        wall_seconds=outcome.wall_seconds,
    )


@dataclass(frozen=True)
class SuiteStatistics:
    """Solved / median / average — one row of Table 3."""

    solver_name: str
    solved: int
    total: int
    median_seconds: float
    average_seconds: float

    def as_row(self) -> Dict[str, object]:
        return {
            "solver": self.solver_name,
            "solved": self.solved,
            "median (s)": round(self.median_seconds, 2),
            "average (s)": round(self.average_seconds, 2),
        }


def suite_statistics(
    records: Sequence[InstanceRecord],
    scale: EffortScale,
    solver_name: str,
    include_inference: bool = True,
) -> SuiteStatistics:
    """Aggregate a suite run the way Table 3 does.

    Unsolved instances count as the full timeout; the median and average
    are taken over *all* instances.  NeuroSelect-Kissat's runtime
    "includes both model inference and SAT-solving durations" (Sec. 5.4),
    so inference seconds are added when present.
    """
    seconds: List[float] = []
    solved = 0
    for record in records:
        value = scale.timeout_seconds if not record.solved else scale.to_seconds(
            record.propagations
        )
        if include_inference:
            value = min(value + record.inference_seconds, scale.timeout_seconds)
        seconds.append(value)
        solved += record.solved
    return SuiteStatistics(
        solver_name=solver_name,
        solved=solved,
        total=len(records),
        median_seconds=statistics.median(seconds) if seconds else 0.0,
        average_seconds=statistics.fmean(seconds) if seconds else 0.0,
    )
