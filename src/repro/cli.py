"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's workflow:

* ``solve``      — solve a DIMACS file (policy, proof, assumptions, budgets)
* ``generate``   — write instances from any generator family
* ``features``   — print static features of a formula
* ``preprocess`` — simplify a formula and write the result
* ``label``      — run both deletion policies and print the Sec. 5.1 label
* ``dataset``    — build and save a labelled dataset
* ``train``      — train NeuroSelect (fresh or saved dataset), save weights
* ``select``     — load weights, pick a policy for a formula, solve it
* ``trim``       — solve UNSAT, emit a conflict-cone-trimmed DRAT proof
* ``bench``      — run a synthetic benchmark suite under one policy
* ``fuzz``       — differential fuzz campaign against the oracle bank
  (``--shrink`` minimizes failures into a replayable corpus; ``--replay``
  re-checks stored corpus entries)
* ``report``     — render trace reports (``repro report out/*.jsonl``),
  resolve store run ids (``repro report r-1f2e3d4c5b6a`` or
  ``--latest kind=bench``), or rebuild EXPERIMENTS.md when called bare
* ``query``      — interrogate the run store: ``runs`` / ``metrics`` /
  ``traces`` / ``bench-trend`` with kind/status/commit/time filters and
  table, csv, or json output (see ``docs/run_store.md``)
* ``trend``      — ingest ``BENCH_*.json`` files across commits into
  the store, print rolling-baseline deltas, and (with
  ``--check-regression``) exit nonzero when the newest measurement
  regressed past the threshold — the CI bench gate
* ``serve``      — long-lived solve service (JSON over HTTP, localhost):
  admission control, batched policy inference, supervised solve fan-out,
  opt-in resilience (circuit breaker, deadline propagation — see
  ``docs/serving.md``)
* ``chaos``      — scripted fault-injection scenarios against a live
  service instance, judged against the resilience invariants
  (``--list`` names them; ``--check-determinism`` demands identical
  fingerprints across two runs)

Each subcommand is a thin shell over public library calls, so anything
the CLI does is equally scriptable from Python.

Observability: ``solve`` / ``dataset`` / ``train`` / ``bench`` /
``serve`` accept
``--trace DIR`` (default: the ``REPRO_TRACE_DIR`` environment variable)
to write a structured JSONL event trace plus a run manifest, and
``--no-metrics`` to skip in-process metric collection while tracing.
Every traced run is also auto-indexed in the run store
(``$REPRO_STORE``, or ``<trace_dir>/runstore.sqlite``) for ``repro
query``; ``REPRO_STORE=off`` disables that.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cnf import (
    GENERATOR_FAMILIES,
    extract_features,
    parse_dimacs_file,
    write_dimacs_file,
)
from repro.policies import get_policy, policy_names
from repro.solver import (
    SOLVER_CORES,
    ProofLog,
    Solver,
    SolverConfig,
    SolverSession,
    Status,
)


def _add_obs_args(p) -> None:
    """Shared observability flags (solve / dataset / train / bench)."""
    p.add_argument("--trace", metavar="DIR",
                   help="write a JSONL event trace and run manifest into "
                        "this directory (default: $REPRO_TRACE_DIR)")
    p.add_argument("--no-metrics", action="store_true",
                   help="while tracing, skip in-process counters and "
                        "histograms (events and manifest still written)")


def _observer_from_args(args, command: str, policy: str = ""):
    """Build the run observer: live when tracing was asked for, else null."""
    import os

    from repro.obs import start_run

    trace_dir = args.trace or os.environ.get("REPRO_TRACE_DIR") or None
    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in ("func", "trace")
        and isinstance(value, (str, int, float, bool, list, type(None)))
    }
    return start_run(
        trace_dir,
        command,
        argv=sys.argv[1:],
        config=config,
        policy=policy,
        metrics=not args.no_metrics,
    )


def _finish_observer(obs, exit_code: int) -> None:
    """Print the trace location and emit ``run-end`` (no-op untraced)."""
    if obs.tracing:
        print(f"c trace {obs.sink.path}")
    obs.finish(exit_code=exit_code)


def _add_solve(subparsers) -> None:
    p = subparsers.add_parser("solve", help="solve a DIMACS CNF file")
    p.add_argument("file")
    p.add_argument("--policy", default="default", choices=policy_names())
    p.add_argument("--proof", help="write a DRAT proof to this path")
    p.add_argument("--max-conflicts", type=int)
    p.add_argument("--max-propagations", type=int)
    p.add_argument("--assume", type=int, nargs="*", default=[])
    p.add_argument("--incremental", action="store_true",
                   help="treat the input as an incremental (iCNF-style) "
                        "stream: clause lines accumulate into one warm "
                        "solver session, each 'a <lits> 0' line triggers "
                        "a solve under those assumptions (budgets apply "
                        "per call), and UNSAT-under-assumptions answers "
                        "print their failed-assumption core as an "
                        "'f <lits> 0' line")
    p.add_argument("--preprocess", action="store_true",
                   help="run the simplification pipeline first")
    p.add_argument("--solver-core", default="arena", choices=SOLVER_CORES,
                   help="engine representation (default: arena)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_solve)


def _parse_icnf(text: str):
    """Parse an iCNF-style stream into (num_vars, steps).

    Steps are ``("add", lits)`` / ``("solve", assumptions)`` in file
    order.  Accepts plain DIMACS too (no ``a`` lines): the whole file
    becomes add steps and one final unassumed solve.  ``p inccnf`` and
    ``p cnf V C`` headers are both honored; without one, ``num_vars``
    is the largest variable mentioned.
    """
    steps = []
    num_vars = 0
    group: List[int] = []
    assuming = False
    saw_solve = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) >= 3 and fields[1] == "cnf":
                num_vars = max(num_vars, int(fields[2]))
            continue  # "p inccnf" carries no counts
        tokens = line.split()
        if tokens[0] == "a":
            if group:
                raise ValueError(
                    "assumption line inside an unterminated clause"
                )
            assuming = True
            tokens = tokens[1:]
        for token in tokens:
            lit = int(token)
            if lit == 0:
                if assuming:
                    steps.append(("solve", group))
                    saw_solve = True
                else:
                    steps.append(("add", group))
                group = []
                assuming = False
            else:
                num_vars = max(num_vars, abs(lit))
                group.append(lit)
    if group:
        steps.append(("solve" if assuming else "add", group))
        saw_solve = saw_solve or assuming
    if not saw_solve:
        steps.append(("solve", []))
    return num_vars, steps


def _solve_incremental(args) -> int:
    """Handle ``repro solve --incremental``: one warm session, many calls."""
    from pathlib import Path

    obs = _observer_from_args(args, "solve", policy=args.policy)
    num_vars, steps = _parse_icnf(Path(args.file).read_text(encoding="utf-8"))
    session = SolverSession(
        num_vars,
        policy=get_policy(args.policy),
        config=SolverConfig(core=args.solver_core),
        observer=obs,
        session_id="cli",
    )
    code = 0
    for op, lits in steps:
        if op == "add":
            session.add(*lits)
            continue
        result = session.solve(
            assumptions=lits,
            max_conflicts=args.max_conflicts,
            max_propagations=args.max_propagations,
        )
        print(f"c call {session.solves} assumptions {len(lits)}")
        print(f"s {result.status.value}")
        if result.status is Status.SATISFIABLE:
            literals = [
                v if result.model[v] else -v for v in range(1, num_vars + 1)
            ]
            print("v " + " ".join(map(str, literals)) + " 0")
        if result.core is not None:
            print("f " + " ".join(map(str, result.core)) + " 0")
        code = {Status.SATISFIABLE: 10, Status.UNSATISFIABLE: 20}.get(
            result.status, 0
        )
    for key, value in session.solver.stats.to_dict().items():
        print(f"c {key} {value}")
    _finish_observer(obs, code)
    return code


def cmd_solve(args) -> int:
    """Handle ``repro solve``: solve a DIMACS file, print s/v lines."""
    if args.incremental:
        if args.preprocess:
            raise SystemExit("--incremental and --preprocess are exclusive")
        if args.assume:
            raise SystemExit(
                "--incremental takes assumptions from 'a' lines, not --assume"
            )
        if args.proof:
            raise SystemExit("--incremental does not support --proof")
        return _solve_incremental(args)
    cnf = parse_dimacs_file(args.file)
    obs = _observer_from_args(args, "solve", policy=args.policy)
    config = SolverConfig(core=args.solver_core)
    if args.preprocess:
        from repro.simplify import solve_with_preprocessing

        result = solve_with_preprocessing(
            cnf,
            config=config,
            max_conflicts=args.max_conflicts,
            max_propagations=args.max_propagations,
            observer=obs,
        )
    else:
        proof = ProofLog(args.proof) if args.proof else None
        solver = Solver(
            cnf, policy=get_policy(args.policy), proof=proof, observer=obs,
            config=config,
        )
        result = solver.solve(
            assumptions=args.assume,
            max_conflicts=args.max_conflicts,
            max_propagations=args.max_propagations,
        )
        if proof is not None:
            proof.close()

    print(f"s {result.status.value}")
    if result.status is Status.SATISFIABLE:
        literals = [v if result.model[v] else -v for v in range(1, cnf.num_vars + 1)]
        print("v " + " ".join(map(str, literals)) + " 0")
    if result.core is not None:
        print("f " + " ".join(map(str, result.core)) + " 0")
    for key, value in result.stats.to_dict().items():
        print(f"c {key} {value}")
    code = {Status.SATISFIABLE: 10, Status.UNSATISFIABLE: 20}.get(result.status, 0)
    _finish_observer(obs, code)
    return code


def _add_generate(subparsers) -> None:
    p = subparsers.add_parser("generate", help="generate a CNF instance")
    p.add_argument("family", choices=sorted(GENERATOR_FAMILIES))
    p.add_argument("--out", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--param", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="generator keyword argument (repeatable)")
    p.set_defaults(func=cmd_generate)


def _parse_params(raw: List[str]) -> dict:
    params = {}
    for item in raw:
        if "=" not in item:
            raise SystemExit(f"--param needs NAME=VALUE, got {item!r}")
        name, value = item.split("=", 1)
        try:
            params[name] = json.loads(value)
        except json.JSONDecodeError:
            params[name] = value
    return params


def cmd_generate(args) -> int:
    """Handle ``repro generate``: write one generator-family instance."""
    factory = GENERATOR_FAMILIES[args.family]
    params = _parse_params(args.param)
    if args.family != "pigeonhole":
        params.setdefault("seed", args.seed)
    cnf = factory(**params)
    write_dimacs_file(cnf, args.out)
    print(f"wrote {args.out}: {cnf.num_vars} variables, {cnf.num_clauses} clauses")
    return 0


def _add_features(subparsers) -> None:
    p = subparsers.add_parser("features", help="print static formula features")
    p.add_argument("file")
    p.set_defaults(func=cmd_features)


def cmd_features(args) -> int:
    """Handle ``repro features``: print static formula features."""
    cnf = parse_dimacs_file(args.file)
    for key, value in extract_features(cnf).to_dict().items():
        print(f"{key:28s} {value}")
    return 0


def _add_preprocess(subparsers) -> None:
    p = subparsers.add_parser("preprocess", help="simplify a formula")
    p.add_argument("file")
    p.add_argument("--out", required=True)
    p.add_argument("--rounds", type=int, default=3)
    p.set_defaults(func=cmd_preprocess)


def cmd_preprocess(args) -> int:
    """Handle ``repro preprocess``: simplify and write the residual CNF."""
    from repro.simplify import Preprocessor

    cnf = parse_dimacs_file(args.file)
    result = Preprocessor(max_rounds=args.rounds).preprocess(cnf)
    if result.status is Status.UNSATISFIABLE:
        print("s UNSATISFIABLE (decided during preprocessing)")
        return 20
    write_dimacs_file(result.cnf, args.out)
    stats = result.stats
    print(
        f"wrote {args.out}: {cnf.num_clauses} -> {result.cnf.num_clauses} clauses "
        f"(fixed={stats.fixed_variables} eliminated={stats.eliminated_variables} "
        f"subsumed={stats.subsumed_clauses} strengthened={stats.strengthened_literals} "
        f"probed={stats.failed_literals})"
    )
    return 0


def _add_label(subparsers) -> None:
    p = subparsers.add_parser(
        "label", help="compare both deletion policies on a formula (Sec. 5.1)"
    )
    p.add_argument("file")
    p.add_argument("--max-conflicts", type=int, default=20_000)
    p.set_defaults(func=cmd_label)


def cmd_label(args) -> int:
    """Handle ``repro label``: run both policies, print the Sec. 5.1 label."""
    from repro.selection import compare_policies

    cnf = parse_dimacs_file(args.file)
    comparison = compare_policies(cnf, max_conflicts=args.max_conflicts)
    print(f"default:   {comparison.default_result_status.value} "
          f"({comparison.default_propagations} propagations)")
    print(f"frequency: {comparison.frequency_result_status.value} "
          f"({comparison.frequency_propagations} propagations)")
    print(f"reduction: {100 * comparison.reduction:+.2f}%")
    print(f"label:     {comparison.label} "
          f"({'frequency' if comparison.label else 'default'} policy preferred)")
    return 0


def _add_supervision_args(p) -> None:
    """Shared fault-tolerant sweep options (dataset / train)."""
    p.add_argument("--workers", type=int, default=1,
                   help="solve instances across this many processes")
    p.add_argument("--cache-dir",
                   help="on-disk result cache: never re-solve a task")
    p.add_argument("--task-timeout", type=float,
                   help="wall-clock seconds per solve attempt; a task "
                        "past it is killed and labelled TIMEOUT")
    p.add_argument("--memory-limit-mb", type=float,
                   help="per-worker address-space cap in MiB; a breach "
                        "becomes a MEMOUT outcome")
    p.add_argument("--retries", type=int, default=0,
                   help="retry transient worker errors this many times "
                        "(capped exponential backoff)")
    p.add_argument("--resume", metavar="JOURNAL",
                   help="append-only run journal (JSONL); re-running "
                        "with the same path skips finished tasks")


def _runner_from_args(args, observer=None):
    """Build the supervised ParallelRunner a sweep subcommand asked for."""
    from repro.parallel import ParallelRunner

    return ParallelRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        task_timeout=args.task_timeout,
        memory_limit_mb=args.memory_limit_mb,
        retries=args.retries,
        journal=args.resume,
        observer=observer,
    )


def _print_sweep_stats(stats) -> None:
    """One summary line of executed / cached / resumed / failed counts."""
    line = (
        f"sweep: {stats.tasks} tasks, {stats.executed} executed, "
        f"{stats.cache_hits} cache hits, {stats.journal_hits} resumed"
    )
    if stats.failed:
        taxonomy = ", ".join(
            f"{count} {name}" for name, count in sorted(stats.failures.items())
        )
        line += f", {stats.failed} failed ({taxonomy})"
    if stats.retried:
        line += f", {stats.retried} recovered by retry"
    print(line)


def _add_dataset(subparsers) -> None:
    p = subparsers.add_parser(
        "dataset", help="build and save a labelled dataset (Sec. 5.1)"
    )
    p.add_argument("--out", required=True, help="dataset file (.json)")
    p.add_argument("--per-year", type=int, default=6)
    p.add_argument("--label-budget", type=int, default=8000)
    _add_supervision_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_dataset)


def cmd_dataset(args) -> int:
    """Handle ``repro dataset``: build + save a labelled dataset."""
    from repro.selection import build_dataset, save_dataset

    obs = _observer_from_args(args, "dataset")
    runner = _runner_from_args(args, observer=obs)
    dataset = build_dataset(
        instances_per_year=args.per_year, max_conflicts=args.label_budget,
        runner=runner, observer=obs,
    )
    save_dataset(dataset, args.out)
    _print_sweep_stats(runner.last_stats)
    balance = dataset.label_balance()
    print(
        f"wrote {args.out}: {len(dataset.train)} train / {len(dataset.test)} test "
        f"instances ({100 * balance['train']:.1f}% / {100 * balance['test']:.1f}% "
        f"positive)"
    )
    _finish_observer(obs, 0)
    return 0


def _add_train(subparsers) -> None:
    p = subparsers.add_parser("train", help="train NeuroSelect on synthetic data")
    p.add_argument("--out", required=True, help="weights file (.npz)")
    p.add_argument("--dataset", help="reuse a dataset saved by `dataset`")
    p.add_argument("--per-year", type=int, default=6)
    p.add_argument("--epochs", type=int, default=40)
    p.add_argument("--hidden-dim", type=int, default=32)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--label-budget", type=int, default=8000)
    p.add_argument("--calibrate", default="balanced",
                   choices=["balanced", "f1", "effort"],
                   help="decision-threshold calibration mode")
    p.add_argument("--augment", type=int, default=0,
                   help="symmetry-augmentation copies of the training split")
    _add_supervision_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_train)


def cmd_train(args) -> int:
    """Handle ``repro train``: fit NeuroSelect and save calibrated weights."""
    from repro.models import NeuroSelect
    from repro.nn import save_module
    from repro.selection import Trainer, build_dataset, load_dataset

    obs = _observer_from_args(args, "train")
    if args.dataset:
        dataset = load_dataset(args.dataset)
    else:
        runner = _runner_from_args(args, observer=obs)
        dataset = build_dataset(
            instances_per_year=args.per_year, max_conflicts=args.label_budget,
            runner=runner, observer=obs,
        )
        _print_sweep_stats(runner.last_stats)
    train_split = dataset.train
    if args.augment:
        from repro.selection import augment_dataset

        train_split = augment_dataset(train_split, copies=args.augment)
    model = NeuroSelect(hidden_dim=args.hidden_dim, seed=0)
    trainer = Trainer(
        model, learning_rate=args.lr, epochs=args.epochs, observer=obs
    )
    trainer.fit(train_split)
    trainer.calibrate_threshold(train_split, mode=args.calibrate)
    metrics = trainer.evaluate(dataset.test)
    save_module(model, args.out)
    print(f"saved weights to {args.out} (threshold {trainer.threshold:.3f})")
    for key, value in metrics.as_row().items():
        print(f"{key:10s} {value:6.2f}%")
    _finish_observer(obs, 0)
    return 0


def _add_trim(subparsers) -> None:
    p = subparsers.add_parser(
        "trim", help="solve an UNSAT formula and write a trimmed DRAT proof"
    )
    p.add_argument("file")
    p.add_argument("--out", required=True, help="trimmed proof path")
    p.add_argument("--max-conflicts", type=int)
    p.set_defaults(func=cmd_trim)


def cmd_trim(args) -> int:
    """Handle ``repro trim``: emit a conflict-cone-trimmed DRAT proof."""
    from pathlib import Path

    from repro.solver import check_drat
    from repro.solver.drat import trim_proof

    cnf = parse_dimacs_file(args.file)
    proof = ProofLog()
    result = Solver(cnf, proof=proof).solve(max_conflicts=args.max_conflicts)
    if result.status is not Status.UNSATISFIABLE:
        print(f"s {result.status.value} (no proof to trim)")
        return 0
    original = proof.text()
    trimmed = trim_proof(cnf, original)
    assert check_drat(cnf, trimmed)
    Path(args.out).write_text(trimmed)
    n_before = sum(1 for l in original.splitlines() if l and not l.startswith("d"))
    n_after = len(trimmed.splitlines())
    print(f"s UNSATISFIABLE")
    print(f"wrote {args.out}: {n_before} -> {n_after} proof additions (checked)")
    return 20


def _add_bench(subparsers) -> None:
    p = subparsers.add_parser(
        "bench", help="run a synthetic benchmark suite under one policy"
    )
    p.add_argument("--policy", default="default", choices=policy_names())
    p.add_argument("--instances", type=int, default=6,
                   help="number of synthetic instances in the suite")
    p.add_argument("--year", type=int, default=2022,
                   help="seed block for the synthetic instance mix")
    p.add_argument("--max-propagations", type=int, default=200_000)
    _add_supervision_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_bench)


def cmd_bench(args) -> int:
    """Handle ``repro bench``: run a suite, print one record per line."""
    from repro.bench.runner import run_suite
    from repro.selection.dataset import _instance_pool

    obs = _observer_from_args(args, "bench", policy=args.policy)
    runner = _runner_from_args(args, observer=obs)
    pool = _instance_pool(args.year, args.instances, scale=1.0)
    records = run_suite(
        [cnf for _, cnf in pool],
        args.policy,
        args.max_propagations,
        runner=runner,
        observer=obs,
    )
    for record, (family, _) in zip(records, pool):
        print(
            f"{record.name}  {family:20s} {record.status.value:14s} "
            f"props={record.propagations:<9d} wall={record.wall_seconds:.3f}s"
        )
    solved = sum(1 for record in records if record.solved)
    print(f"solved {solved}/{len(records)} under policy {args.policy}")
    _print_sweep_stats(runner.last_stats)
    _finish_observer(obs, 0)
    return 0


def _add_fuzz(subparsers) -> None:
    p = subparsers.add_parser(
        "fuzz",
        help="differential fuzz campaign: cross-check the solver against "
             "the oracle bank, shrink failures into a replayable corpus",
    )
    p.add_argument("--seeds", type=int, default=50,
                   help="number of fuzz cases (one generator draw each)")
    p.add_argument("--budget", type=int, default=2000,
                   help="max conflicts per solve (deterministic budget)")
    p.add_argument("--workers", type=int, default=1,
                   help="solve subjects across this many processes")
    p.add_argument("--base-seed", type=int, default=0,
                   help="campaign root seed; same seed, same report")
    p.add_argument("--families", nargs="*",
                   choices=sorted(GENERATOR_FAMILIES), metavar="FAMILY",
                   help="generator families to draw from (default: all)")
    p.add_argument("--mutants", type=int, default=2,
                   help="metamorphic mutants derived per case")
    p.add_argument("--shrink", action="store_true",
                   help="ddmin-minimize every failure and write it to the "
                        "corpus as a DIMACS + manifest repro pair")
    p.add_argument("--corpus", default="fuzz-corpus", metavar="DIR",
                   help="failure corpus directory (with --shrink)")
    p.add_argument("--task-timeout", type=float,
                   help="wall-clock seconds per solve attempt (supervised)")
    p.add_argument("--cache-dir",
                   help="on-disk result cache for the solve fan-out")
    p.add_argument("--solver-core", default="arena", choices=SOLVER_CORES,
                   help="engine representation for subject solves "
                        "(default: arena)")
    p.add_argument("--replay", nargs="+", metavar="MANIFEST",
                   help="replay corpus entries (.json manifests) through "
                        "the full oracle bank instead of running a campaign")
    _add_obs_args(p)
    p.set_defaults(func=cmd_fuzz)


def cmd_fuzz(args) -> int:
    """Handle ``repro fuzz``: run a campaign, or replay corpus entries."""
    from repro.fuzz import (
        CampaignConfig,
        render_report,
        replay_entry,
        run_campaign,
    )

    if args.replay:
        failures = 0
        for manifest in args.replay:
            found = replay_entry(manifest)
            verdict = "clean" if not found else f"{len(found)} discrepancies"
            print(f"{manifest}: {verdict}")
            for discrepancy in found:
                print(f"  {discrepancy.summary()}")
            failures += len(found)
        return 1 if failures else 0

    obs = _observer_from_args(args, "fuzz")
    config = CampaignConfig(
        seeds=args.seeds,
        base_seed=args.base_seed,
        budget=args.budget,
        workers=args.workers,
        families=args.families or (),
        mutants=args.mutants,
        shrink=args.shrink,
        corpus_dir=args.corpus if args.shrink else None,
        task_timeout=args.task_timeout,
        cache_dir=args.cache_dir,
        solver_core=args.solver_core,
    )
    report = run_campaign(config, observer=obs)
    print(render_report(report))
    code = 0 if report.clean else 1
    _finish_observer(obs, code)
    return code


def _add_report(subparsers) -> None:
    p = subparsers.add_parser(
        "report",
        help="summarize trace files, or rebuild EXPERIMENTS.md with no args",
    )
    p.add_argument("traces", nargs="*",
                   help="trace .jsonl files written by --trace, or run ids "
                        "resolved through the run store; with none, "
                        "EXPERIMENTS.md is rebuilt from benchmarks/results/")
    p.add_argument("--validate", action="store_true",
                   help="check every trace line against the event schema "
                        "and exit 1 on any violation")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable summary instead of text")
    p.add_argument("--store", metavar="PATH",
                   help="run store used to resolve run ids and --latest "
                        "(default: $REPRO_STORE, else "
                        "$REPRO_TRACE_DIR/runstore.sqlite)")
    p.add_argument("--latest", metavar="kind=KIND",
                   help="report the most recent stored run of one kind "
                        "(e.g. --latest kind=bench)")
    p.set_defaults(func=cmd_report)


def _resolve_report_traces(args) -> List[str]:
    """Map run ids and ``--latest`` selectors onto stored trace paths.

    Arguments naming existing files pass through untouched; anything
    else is treated as a run id and resolved via the store's ``trace``
    artifact, so ``repro report r-1f2e3d4c5b6a`` works anywhere the
    run was ingested.
    """
    from pathlib import Path

    literal = [item for item in args.traces if Path(item).exists()]
    unresolved = [item for item in args.traces if not Path(item).exists()]
    if not unresolved and not args.latest:
        return literal
    traces: List[str] = []
    with _store_from_args(args) as store:
        if args.latest:
            selector = args.latest
            kind = selector.split("=", 1)[1] if "=" in selector else selector
            run = store.latest_run(kind)
            if run is None:
                raise SystemExit(f"no runs of kind {kind!r} in the store")
            path = store.trace_path(run["run_id"])
            if path is None:
                raise SystemExit(
                    f"run {run['run_id']} has no trace artifact"
                )
            traces.append(str(path))
        for item in args.traces:
            if Path(item).exists():
                traces.append(item)
                continue
            path = store.trace_path(item)
            if path is None:
                raise SystemExit(
                    f"{item}: not a trace file and not a stored run id"
                )
            traces.append(str(path))
    return traces


def cmd_report(args) -> int:
    """Handle ``repro report``: trace summary, or EXPERIMENTS.md rebuild."""
    if not args.traces and not args.latest:
        from repro.bench.reporting import build_experiments_md

        build_experiments_md()
        print("EXPERIMENTS.md rebuilt from benchmarks/results/")
        return 0

    from repro.obs import render_report, summarize_traces, validate_traces

    traces = _resolve_report_traces(args)
    if args.validate:
        errors = validate_traces(traces)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            return 1
    summary = summarize_traces(traces)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=str))
    else:
        print(render_report(summary), end="")
    return 0


def _store_from_args(args):
    """Open the run store a query subcommand should read.

    ``--store`` wins, then ``$REPRO_STORE``, then the auto-store beside
    ``$REPRO_TRACE_DIR``.  Exits with guidance when nothing resolves —
    query surfaces need an explicit target, unlike the silently
    best-effort registration hooks.
    """
    import os

    from repro.store import RunStore, resolve_auto_store

    path = getattr(args, "store", None) or resolve_auto_store(
        os.environ.get("REPRO_TRACE_DIR") or None
    )
    if path is None:
        raise SystemExit(
            "no run store: pass --store PATH, or set REPRO_STORE (or "
            "REPRO_TRACE_DIR, whose runstore.sqlite is the default)"
        )
    return RunStore(path)


def _parse_when(text: Optional[str]) -> Optional[float]:
    """A ``--since``/``--until`` value as unix seconds.

    Accepts raw unix seconds, ``YYYY-MM-DD`` (with optional time), or a
    relative age like ``7d`` / ``12h`` / ``30m`` meaning that long ago.
    """
    if text is None:
        return None
    import time as _time

    text = text.strip()
    try:
        return float(text)
    except ValueError:
        pass
    unit = {"d": 86400.0, "h": 3600.0, "m": 60.0, "s": 1.0}.get(text[-1:])
    if unit is not None:
        try:
            return _time.time() - float(text[:-1]) * unit
        except ValueError:
            pass
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S",
                "%Y-%m-%d %H:%M", "%Y-%m-%d"):
        try:
            return _time.mktime(_time.strptime(text, fmt))
        except ValueError:
            continue
    raise SystemExit(
        f"unrecognized time {text!r} (expected unix seconds, YYYY-MM-DD, "
        f"or a relative age like 7d / 12h / 30m)"
    )


def _add_query_common(p) -> None:
    """Flags every ``repro query`` subcommand shares."""
    p.add_argument("--store", metavar="PATH",
                   help="run store path (default: $REPRO_STORE, else "
                        "$REPRO_TRACE_DIR/runstore.sqlite)")
    p.add_argument("--format", default="table",
                   choices=("table", "csv", "json"),
                   help="output format (default: table)")
    p.add_argument("--json", action="store_const", const="json",
                   dest="format", help="shorthand for --format json")
    p.add_argument("--limit", type=int,
                   help="return at most this many rows")


def _add_query(subparsers) -> None:
    p = subparsers.add_parser(
        "query",
        help="interrogate the run store (runs / metrics / traces / "
             "bench-trend); see docs/run_store.md for a cookbook",
    )
    sub = p.add_subparsers(dest="query_command", required=True)

    runs = sub.add_parser("runs", help="list indexed runs, newest first")
    runs.add_argument("--kind",
                      help="only runs of this kind (solve, dataset, bench, "
                           "fuzz, serve, chaos, bench-file, ...)")
    runs.add_argument("--status",
                      help="only runs with this status "
                           "(ok, failed, running, incomplete)")
    runs.add_argument("--commit", help="only runs from this source commit")
    runs.add_argument("--since", metavar="WHEN",
                      help="only runs created at/after WHEN "
                           "(unix seconds, YYYY-MM-DD, or 7d/12h ago)")
    runs.add_argument("--until", metavar="WHEN",
                      help="only runs created at/before WHEN")
    _add_query_common(runs)

    metrics = sub.add_parser(
        "metrics", help="flattened metric rows across runs"
    )
    metrics.add_argument("--run", metavar="RUN_ID",
                         help="only metrics from this run")
    metrics.add_argument("--name",
                         help="metric name; * wildcards select families "
                              "(e.g. --name 'serve.*')")
    metrics.add_argument("--kind", dest="metric_kind",
                         choices=("counter", "gauge", "histogram", "event"),
                         help="only metrics of this kind")
    _add_query_common(metrics)

    traces = sub.add_parser(
        "traces", help="artifact references (trace files by default)"
    )
    traces.add_argument("--run", metavar="RUN_ID",
                        help="only artifacts of this run")
    traces.add_argument("--role", default="trace",
                        help="artifact role: trace (default), manifest, "
                             "bench-json, fuzz-repro, ... or 'all'")
    traces.add_argument("--kind", help="only artifacts of runs of this kind")
    _add_query_common(traces)

    trend = sub.add_parser(
        "bench-trend",
        help="benchmark series with rolling-baseline deltas",
    )
    trend.add_argument("--workload",
                       help="one workload (3sat, mixed, binary, long, "
                            "aggregate); default: all")
    trend.add_argument("--engine",
                       help="one engine series (legacy, new, arena) — "
                            "props_per_sec metric only")
    trend.add_argument("--metric", default="speedup",
                       choices=("speedup", "props_per_sec"),
                       help="derived arena-vs-new ratio (default) or raw "
                            "per-engine throughput")
    trend.add_argument("--window", type=int, default=5,
                       help="rolling-baseline depth in measurements")
    _add_query_common(trend)

    p.set_defaults(func=cmd_query)


def cmd_query(args) -> int:
    """Handle ``repro query``: render one store query as table/csv/json."""
    from repro.store import (
        ARTIFACT_COLUMNS,
        METRIC_COLUMNS,
        RUN_COLUMNS,
        TREND_COLUMNS,
        bench_trend,
        format_rows,
        humanize_unix,
    )

    with _store_from_args(args) as store:
        if args.query_command == "runs":
            rows = store.runs(
                kind=args.kind,
                status=args.status,
                commit=args.commit,
                since=_parse_when(args.since),
                until=_parse_when(args.until),
                limit=args.limit,
            )
            columns = list(RUN_COLUMNS)
            if args.format == "table":
                columns[columns.index("created_unix")] = "created"
                for row in rows:
                    row["created"] = humanize_unix(row["created_unix"])
        elif args.query_command == "metrics":
            rows = store.metrics(
                run_id=args.run,
                name=args.name,
                metric_kind=args.metric_kind,
                limit=args.limit,
            )
            columns = list(METRIC_COLUMNS)
        elif args.query_command == "traces":
            role = None if args.role in ("all", "any", "*") else args.role
            rows = store.artifacts(
                run_id=args.run, role=role, kind=args.kind, limit=args.limit
            )
            columns = list(ARTIFACT_COLUMNS)
        else:  # bench-trend
            rows = bench_trend(
                store,
                metric=args.metric,
                workload=args.workload,
                engine=args.engine,
                window=args.window,
            )
            if args.limit is not None:
                rows = rows[-args.limit:]
            columns = list(TREND_COLUMNS)
        print(format_rows(rows, columns, args.format))
    return 0


def _add_trend(subparsers) -> None:
    p = subparsers.add_parser(
        "trend",
        help="ingest BENCH_*.json files into the store, print "
             "rolling-baseline deltas, optionally gate regressions",
    )
    p.add_argument("bench", nargs="*", metavar="BENCH_JSON",
                   help="benchmark result files to ingest before querying "
                        "(idempotent: re-ingesting a file replaces its rows)")
    p.add_argument("--store", metavar="PATH",
                   help="run store path (default: $REPRO_STORE, else "
                        "$REPRO_TRACE_DIR/runstore.sqlite)")
    p.add_argument("--commit",
                   help="commit ref stamped on ingested files that carry "
                        "none (older BENCH files predate the git stamp)")
    p.add_argument("--metric", default="speedup",
                   choices=("speedup", "props_per_sec"),
                   help="series to trend: the host-independent arena-vs-new "
                        "ratio (default) or raw throughput")
    p.add_argument("--workload", help="restrict the printed trend rows")
    p.add_argument("--engine",
                   help="restrict to one engine (props_per_sec metric only)")
    p.add_argument("--window", type=int, default=5,
                   help="rolling-baseline depth in measurements")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="regression gate: fail when the newest value drops "
                        "more than this fraction below the baseline")
    p.add_argument("--check-regression", action="store_true",
                   help="exit 1 when any gated series regressed past the "
                        "threshold (the CI contract)")
    p.add_argument("--per-workload", action="store_true",
                   help="gate every workload series, not just the "
                        "host-independent aggregate")
    p.add_argument("--format", default="table",
                   choices=("table", "csv", "json"),
                   help="trend row output format (default: table)")
    p.add_argument("--json", action="store_const", const="json",
                   dest="format", help="shorthand for --format json")
    p.set_defaults(func=cmd_trend)


def cmd_trend(args) -> int:
    """Handle ``repro trend``: ingest + trend + optional regression gate."""
    from repro.store import (
        TREND_COLUMNS,
        StoreIngestError,
        bench_trend,
        check_regression,
        format_rows,
    )

    with _store_from_args(args) as store:
        for path in args.bench:
            try:
                count = store.ingest_bench(path, commit=args.commit)
            except StoreIngestError as exc:
                raise SystemExit(f"cannot ingest {path}: {exc}")
            print(f"c ingested {path}: {count} series rows", file=sys.stderr)
        rows = bench_trend(
            store,
            metric=args.metric,
            workload=args.workload,
            engine=args.engine,
            window=args.window,
        )
        print(format_rows(rows, list(TREND_COLUMNS), args.format))
        if args.check_regression:
            check = check_regression(
                store,
                threshold=args.threshold,
                window=args.window,
                metric=args.metric,
                per_workload=args.per_workload,
            )
            if not check.ok:
                for failure in check.failures:
                    print(f"REGRESSION: {failure}", file=sys.stderr)
                return 1
            print(
                f"c trend gate: {check.checked} series within "
                f"{100 * args.threshold:.0f}% of their rolling baseline",
                file=sys.stderr,
            )
    return 0


def _add_select(subparsers) -> None:
    p = subparsers.add_parser(
        "select", help="pick a deletion policy with a trained model, then solve"
    )
    p.add_argument("file")
    p.add_argument("--weights", required=True)
    p.add_argument("--hidden-dim", type=int, default=32)
    p.add_argument("--max-conflicts", type=int)
    p.add_argument("--max-propagations", type=int)
    p.set_defaults(func=cmd_select)


def cmd_select(args) -> int:
    """Handle ``repro select``: model-guided policy choice, then solve."""
    from repro.models import NeuroSelect
    from repro.nn import load_module
    from repro.selection import NeuroSelectSolver

    cnf = parse_dimacs_file(args.file)
    model = NeuroSelect(hidden_dim=args.hidden_dim, seed=0)
    load_module(model, args.weights)
    outcome = NeuroSelectSolver(model).solve(
        cnf,
        max_conflicts=args.max_conflicts,
        max_propagations=args.max_propagations,
    )
    print(f"policy:    {outcome.policy_name} (label {outcome.predicted_label}, "
          f"inference {outcome.inference_seconds * 1000:.1f} ms)")
    print(f"s {outcome.result.status.value}")
    stats = outcome.result.stats
    print(f"c conflicts {stats.conflicts}")
    print(f"c propagations {stats.propagations}")
    return {Status.SATISFIABLE: 10, Status.UNSATISFIABLE: 20}.get(
        outcome.result.status, 0
    )


def _add_serve(subparsers) -> None:
    p = subparsers.add_parser(
        "serve",
        help="run the async solve service (JSON over HTTP on localhost)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123,
                   help="listen port; 0 picks a free one (printed at start)")
    p.add_argument("--weights",
                   help="trained NeuroSelect weights (.npz); without them "
                        "a fresh seeded model is used — untrained but "
                        "deterministic, so batching is still exercised")
    p.add_argument("--hidden-dim", type=int, default=32)
    p.add_argument("--max-batch", type=int, default=16,
                   help="size-triggered inference flush threshold")
    p.add_argument("--flush-window", type=float, default=0.05,
                   help="deadline-triggered flush, seconds after the first "
                        "queued request")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission cap on in-flight requests; beyond it "
                        "submissions are rejected with 429")
    p.add_argument("--default-max-conflicts", type=int, default=100_000,
                   help="conflict budget for requests that name none")
    p.add_argument("--max-conflicts-cap", type=int, default=1_000_000,
                   help="hard ceiling every request budget is clamped to")
    p.add_argument("--solver-core", default="arena", choices=SOLVER_CORES,
                   help="engine representation (default: arena)")
    p.add_argument("--workers", type=int, default=1,
                   help="solver processes per solve group")
    p.add_argument("--task-timeout", type=float,
                   help="per-request wall-clock budget, seconds "
                        "(breach answers 504 TIMEOUT)")
    p.add_argument("--memory-limit-mb", type=float,
                   help="per-request worker memory cap "
                        "(breach answers 507 MEMOUT)")
    p.add_argument("--cache-dir",
                   help="on-disk result cache shared across requests")
    p.add_argument("--journal",
                   help="append-only journal; a restarted service answers "
                        "already-solved requests from it without re-solving")
    p.add_argument("--breaker", action="store_true",
                   help="guard the inference path with a circuit breaker: "
                        "while it is open, requests are served by the "
                        "default policy and tagged degraded")
    p.add_argument("--breaker-window", type=int, default=16,
                   help="rolling sample window the failure rate is "
                        "computed over (with --breaker)")
    p.add_argument("--breaker-threshold", type=float, default=0.5,
                   help="failure rate in [0,1] that opens the breaker")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   help="seconds an open breaker waits before sending "
                        "half-open probes")
    p.add_argument("--breaker-slow-seconds", type=float,
                   help="forward passes slower than this count as "
                        "failures (latency breaker)")
    p.add_argument("--inference-timeout", type=float,
                   help="hard cap on one batched forward pass, seconds; "
                        "a breach degrades the batch to the default policy")
    p.add_argument("--conflicts-per-second", type=float, default=25_000.0,
                   help="calibration rate converting a request's remaining "
                        "deadline into an affordable conflict budget")
    p.add_argument("--session-ttl", type=float, default=300.0,
                   help="idle seconds before a sticky incremental session "
                        "(POST /sessions) is evicted")
    p.add_argument("--max-sessions", type=int, default=64,
                   help="concurrent live session cap; beyond it session "
                        "creation is rejected with 429")
    p.add_argument("--session-drift-threshold", type=float, default=0.1,
                   help="expert-feature drift past which a session re-runs "
                        "HGT policy inference instead of reusing its "
                        "cached embedding")
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)


def cmd_serve(args) -> int:
    """Handle ``repro serve``: run the solve service until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.models import NeuroSelect
    from repro.serve import BreakerConfig, ServeConfig, SolveService
    from repro.serve.http import bound_address, start_service

    obs = _observer_from_args(args, "serve")
    model = NeuroSelect(hidden_dim=args.hidden_dim, seed=0)
    if args.weights:
        from repro.nn import load_module

        load_module(model, args.weights)
    breaker = None
    if args.breaker:
        breaker = BreakerConfig(
            window=args.breaker_window,
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown,
            slow_seconds=args.breaker_slow_seconds,
        )
    config = ServeConfig(
        max_batch=args.max_batch,
        flush_window=args.flush_window,
        max_queue_depth=args.max_queue,
        default_max_conflicts=args.default_max_conflicts,
        max_conflicts_cap=args.max_conflicts_cap,
        solver_core=args.solver_core,
        workers=args.workers,
        task_timeout=args.task_timeout,
        memory_limit_mb=args.memory_limit_mb,
        cache_dir=args.cache_dir,
        journal=args.journal,
        breaker=breaker,
        inference_timeout=args.inference_timeout,
        conflicts_per_second=args.conflicts_per_second,
        session_ttl=args.session_ttl,
        max_sessions=args.max_sessions,
        session_drift_threshold=args.session_drift_threshold,
    )

    async def _serve() -> None:
        service = SolveService(model, config, observer=obs)
        server, _ = await start_service(
            service, args.host, args.port, observer=obs
        )
        host, port = bound_address(server)
        obs.event(
            "serve-start",
            host=host,
            port=port,
            max_batch=config.max_batch,
            flush_window=config.flush_window,
            max_queue_depth=config.max_queue_depth,
            solver_core=config.solver_core,
            workers=config.workers,
            weights=bool(args.weights),
        )
        print(f"c serve listening on http://{host}:{port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("c serve draining", flush=True)
        server.close()
        await server.wait_closed()
        await service.stop(drain=True)
        # One more turn of the loop so held `wait=true` responses land
        # on their (still-open) connections before the loop shuts down.
        await asyncio.sleep(0.1)
        stats = service.stats()
        print(
            f"c serve stopped: {stats['requests']} requests, "
            f"{stats['responses']} responses, "
            f"{stats['rejected']} rejected, "
            f"{stats['inference_passes']} inference passes",
            flush=True,
        )

    asyncio.run(_serve())
    _finish_observer(obs, 0)
    return 0


def _add_chaos(subparsers) -> None:
    p = subparsers.add_parser(
        "chaos",
        help="run a scripted fault-injection scenario against a live "
             "service instance and judge the resilience invariants",
    )
    p.add_argument("--scenario", default="mixed",
                   help="scenario name (see --list; default: mixed)")
    p.add_argument("--seed", type=int, default=0,
                   help="formula seed; same seed, same fingerprint")
    p.add_argument("--list", action="store_true",
                   help="list available scenarios and exit")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable report instead of text")
    p.add_argument("--check-determinism", action="store_true",
                   help="run the scenario twice in fresh workdirs and "
                        "fail unless the fingerprints are identical")
    p.add_argument("--workdir",
                   help="directory for the scenario journal (default: a "
                        "fresh temporary directory)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_chaos)


def cmd_chaos(args) -> int:
    """Handle ``repro chaos``: run one scenario, exit 1 on any violation."""
    from repro.chaos import (
        get_scenario,
        render_report,
        run_scenario,
        scenario_names,
    )

    if args.list:
        for name in scenario_names():
            scenario = get_scenario(name)
            print(f"{name:16s} {scenario.description}")
        return 0
    scenario = get_scenario(args.scenario)
    obs = _observer_from_args(args, "chaos")
    report = run_scenario(
        scenario, seed=args.seed, workdir=args.workdir, observer=obs
    )
    reports = [report]
    if args.check_determinism:
        again = run_scenario(scenario, seed=args.seed, observer=obs)
        reports.append(again)
    if args.json:
        print(json.dumps(
            [r.as_json() for r in reports], indent=2, sort_keys=True
        ))
    else:
        for r in reports:
            print(render_report(r))
    code = 0 if all(r.ok for r in reports) else 1
    if args.check_determinism:
        fingerprints = {r.fingerprint for r in reports}
        if len(fingerprints) > 1:
            print(f"NON-DETERMINISTIC: fingerprints differ: "
                  f"{sorted(fingerprints)}")
            code = 1
        else:
            print(f"deterministic: {report.fingerprint[:16]} across "
                  f"{len(reports)} runs")
    _finish_observer(obs, code)
    return code


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroSelect reproduction: CDCL solving with learned "
        "clause-deletion policy selection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_solve(subparsers)
    _add_generate(subparsers)
    _add_features(subparsers)
    _add_preprocess(subparsers)
    _add_label(subparsers)
    _add_dataset(subparsers)
    _add_train(subparsers)
    _add_select(subparsers)
    _add_trim(subparsers)
    _add_bench(subparsers)
    _add_fuzz(subparsers)
    _add_report(subparsers)
    _add_query(subparsers)
    _add_trend(subparsers)
    _add_serve(subparsers)
    _add_chaos(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, the
        # standard CLI convention.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os.close(2)
        return 0


if __name__ == "__main__":
    sys.exit(main())
