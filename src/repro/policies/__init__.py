"""Clause-deletion policies (the paper's Section 3).

A deletion policy assigns every reducible learned clause a 64-bit score;
at each reduction round the lowest-scoring fraction is deleted.  Two
policies are provided, matching Figure 5 of the paper:

* :class:`DefaultPolicy` — Kissat's stock scoring: negated glue in the
  high bits, negated size below (lower glue, then smaller size, wins).
* :class:`FrequencyPolicy` — the paper's new policy: negated glue, then
  negated size, then the propagation-frequency criterion of Eq. (2) in
  the low bits.

Policies are looked up by name through :data:`POLICY_REGISTRY` /
:func:`get_policy` so the selection pipeline can dispatch on a model's
predicted label.
"""

from repro.policies.base import DeletionPolicy
from repro.policies.score import (
    pack_fields,
    negated,
    DEFAULT_LAYOUT,
    FREQUENCY_LAYOUT,
    ScoreLayout,
)
from repro.policies.default_policy import DefaultPolicy
from repro.policies.frequency_policy import FrequencyPolicy, clause_frequency
from repro.policies.registry import POLICY_REGISTRY, get_policy, policy_names

__all__ = [
    "DeletionPolicy",
    "DefaultPolicy",
    "FrequencyPolicy",
    "clause_frequency",
    "pack_fields",
    "negated",
    "ScoreLayout",
    "DEFAULT_LAYOUT",
    "FREQUENCY_LAYOUT",
    "POLICY_REGISTRY",
    "get_policy",
    "policy_names",
]
