"""Deletion-policy interface.

A policy is consulted once per reduction round.  The solver hands it the
current propagation-frequency counters (reset at every round, Sec. 3.1)
and the round's maximum frequency; the policy returns a 64-bit score per
clause.  Clauses are then deleted lowest-score-first.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.solver.clause_db import SolverClause


class DeletionPolicy(abc.ABC):
    """Scores reducible learned clauses for a reduction round."""

    #: Registry / CLI name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def score(
        self,
        clause: SolverClause,
        frequency: Sequence[int],
        max_frequency: int,
    ) -> int:
        """64-bit keep-priority of ``clause`` (higher = keep longer).

        ``frequency[v]`` is variable ``v``'s propagation count since the
        last reduction; ``max_frequency`` is the maximum over all
        variables (``f_max`` in Eq. 2).  Policies that ignore frequency
        simply never read those arguments.
        """

    def begin_round(self, frequency: Sequence[int], max_frequency: int) -> None:
        """Hook called once per reduction round before any scoring."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
