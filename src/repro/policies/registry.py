"""Name-based policy lookup used by the selection pipeline."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.policies.base import DeletionPolicy
from repro.policies.default_policy import DefaultPolicy
from repro.policies.frequency_policy import FrequencyPolicy

POLICY_REGISTRY: Dict[str, Callable[[], DeletionPolicy]] = {
    DefaultPolicy.name: DefaultPolicy,
    FrequencyPolicy.name: FrequencyPolicy,
}

#: Label convention from the paper (Sec. 5.1): 0 = default, 1 = frequency.
LABEL_TO_POLICY = {0: DefaultPolicy.name, 1: FrequencyPolicy.name}


def get_policy(name: str) -> DeletionPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(POLICY_REGISTRY)}"
        ) from None
    return factory()


def policy_for_label(label: int) -> DeletionPolicy:
    """Policy instance for a classifier label (0 = default, 1 = frequency)."""
    return get_policy(LABEL_TO_POLICY[int(label)])


def policy_names() -> List[str]:
    return sorted(POLICY_REGISTRY)
