"""The paper's propagation-frequency-guided deletion policy (Section 3).

Adds a third criterion below glue and size: Eq. (2),

    c.frequency = sum over v in c of [ f_v > alpha * f_max ]

i.e. the number of the clause's variables whose propagation count since
the last deletion round exceeds an ``alpha`` fraction (default 4/5) of
the round's maximum.  Clauses over "hot" variables are hypothesized to
keep narrowing the search and are therefore retained longer.  Packed as
Figure 5's ``New`` layout: ``[~glue : 20][~size : 20][frequency : 24]``.
"""

from __future__ import annotations

from typing import Sequence

from repro.policies.base import DeletionPolicy
from repro.policies.score import FREQUENCY_LAYOUT, ScoreLayout, clamp, negated
from repro.solver.clause_db import SolverClause

#: Paper's empirically chosen threshold fraction (Sec. 3.2).
DEFAULT_ALPHA = 4.0 / 5.0


def clause_frequency(
    clause: SolverClause,
    frequency: Sequence[int],
    max_frequency: int,
    alpha: float = DEFAULT_ALPHA,
) -> int:
    """Eq. (2): count of the clause's variables with ``f_v > alpha * f_max``."""
    if max_frequency <= 0:
        return 0
    threshold = alpha * max_frequency
    return sum(1 for lit in clause.lits if frequency[lit >> 1] > threshold)


class FrequencyPolicy(DeletionPolicy):
    """Glue, size, then propagation-frequency scoring (Kissat-new)."""

    name = "frequency"

    def __init__(self, alpha: float = DEFAULT_ALPHA, layout: ScoreLayout = FREQUENCY_LAYOUT):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.layout = layout
        self._threshold = 0.0

    def begin_round(self, frequency: Sequence[int], max_frequency: int) -> None:
        self._threshold = self.alpha * max_frequency

    def score(
        self,
        clause: SolverClause,
        frequency: Sequence[int],
        max_frequency: int,
    ) -> int:
        freq = clause_frequency(clause, frequency, max_frequency, self.alpha)
        clause.frequency = freq
        widths = dict(self.layout.fields)
        return self.layout.pack(
            neg_glue=negated(clause.glue, widths["neg_glue"]),
            neg_size=negated(len(clause.lits), widths["neg_size"]),
            frequency=clamp(freq, widths["frequency"]),
        )
