"""Kissat's default clause-deletion scoring.

"The scoring is primarily decided by the glue value of a clause, with its
size serving as a secondary criterion" (Sec. 3.2): among two learned
clauses the one with lower glue scores higher; ties break towards the
smaller clause.  Realized as the Figure 5 ``Default`` 64-bit layout:
``[~glue : 32][~size : 32]``.
"""

from __future__ import annotations

from typing import Sequence

from repro.policies.base import DeletionPolicy
from repro.policies.score import DEFAULT_LAYOUT, negated
from repro.solver.clause_db import SolverClause


class DefaultPolicy(DeletionPolicy):
    """Glue-then-size scoring (stock Kissat)."""

    name = "default"

    def score(
        self,
        clause: SolverClause,
        frequency: Sequence[int],
        max_frequency: int,
    ) -> int:
        glue_field = negated(clause.glue, 32)
        size_field = negated(len(clause.lits), 32)
        return DEFAULT_LAYOUT.pack(neg_glue=glue_field, neg_size=size_field)
