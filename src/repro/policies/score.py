"""64-bit packed clause scores (Figure 5 of the paper).

Kissat ranks reducible clauses by a single 64-bit integer built from
bit-fields, compared as one number: the most significant field dominates,
lower fields break ties.  Fields that should rank *smaller raw values
higher* (glue, size) are stored element-wise negated (the paper's ``~``),
clamped to the field width.

Layouts reproduced here::

    Default:  [ ~glue : 32 ][ ~size : 32 ]                      (bits 63..32, 31..0)
    New:      [ ~glue : 20 ][ ~size : 20 ][ frequency : 24 ]    (bits 63..44, 43..24, 23..0)

Higher score = more valuable = kept longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


def negated(value: int, width: int) -> int:
    """Element-wise negation of ``value`` within a ``width``-bit field.

    Clamps to the field's range first, so glue/size beyond the field width
    saturate at the worst (lowest) score instead of wrapping around.
    """
    if value < 0:
        raise ValueError("field values must be non-negative")
    mask = (1 << width) - 1
    return mask - min(value, mask)


def clamp(value: int, width: int) -> int:
    """Clamp a non-negative value into a ``width``-bit field."""
    if value < 0:
        raise ValueError("field values must be non-negative")
    return min(value, (1 << width) - 1)


def pack_fields(fields: Sequence[Tuple[int, int]]) -> int:
    """Pack ``(value, width)`` pairs MSB-first into one integer.

    Values must already be clamped/negated; the total width must not
    exceed 64 bits.
    """
    total = sum(width for _, width in fields)
    if total > 64:
        raise ValueError(f"score layout is {total} bits, max is 64")
    score = 0
    for value, width in fields:
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        score = (score << width) | value
    return score


@dataclass(frozen=True)
class ScoreLayout:
    """Named bit widths of a packed score, MSB-first."""

    name: str
    fields: Tuple[Tuple[str, int], ...]

    @property
    def total_bits(self) -> int:
        return sum(width for _, width in self.fields)

    def pack(self, **values: int) -> int:
        """Pack named raw field values (already negated where required)."""
        missing = [fname for fname, _ in self.fields if fname not in values]
        if missing:
            raise ValueError(f"missing fields: {missing}")
        return pack_fields([(values[fname], width) for fname, width in self.fields])

    def unpack(self, score: int) -> dict:
        """Inverse of :meth:`pack`, for introspection and tests."""
        out = {}
        for fname, width in reversed(self.fields):
            out[fname] = score & ((1 << width) - 1)
            score >>= width
        return out


DEFAULT_LAYOUT = ScoreLayout(
    name="default",
    fields=(("neg_glue", 32), ("neg_size", 32)),
)

FREQUENCY_LAYOUT = ScoreLayout(
    name="frequency",
    fields=(("neg_glue", 20), ("neg_size", 20), ("frequency", 24)),
)

# Ablation layout: frequency promoted to the most significant field
# (studied in benchmarks/bench_ablation_score_layout.py).
FREQUENCY_FIRST_LAYOUT = ScoreLayout(
    name="frequency_first",
    fields=(("frequency", 24), ("neg_glue", 20), ("neg_size", 20)),
)
