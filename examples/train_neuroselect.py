"""Train the NeuroSelect classifier end to end (paper Sec. 4-5).

Builds a labelled dataset (two solver runs per instance, Sec. 5.1),
trains the hybrid-graph-transformer classifier with Adam + BCE
(Sec. 5.2), evaluates on the held-out test year, and saves the weights.

Run:  python examples/train_neuroselect.py [--per-year N] [--epochs E]
"""

import argparse

from repro.bench import table1_dataset_statistics
from repro.models import NeuroSelect
from repro.nn import save_module
from repro.selection import Trainer, build_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-year", type=int, default=6)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--lr", type=float, default=3e-3)
    parser.add_argument("--label-budget", type=int, default=8000,
                        help="conflict budget per labelling run")
    parser.add_argument("--out", default="neuroselect.npz")
    args = parser.parse_args()

    print("building labelled dataset (two solver runs per instance) ...")
    dataset = build_dataset(
        instances_per_year=args.per_year, max_conflicts=args.label_budget
    )
    print(table1_dataset_statistics(dataset))
    print("label balance:", dataset.label_balance())

    model = NeuroSelect(hidden_dim=args.hidden_dim, seed=0)
    print(f"\ntraining NeuroSelect ({model.num_parameters()} parameters) ...")
    trainer = Trainer(model, learning_rate=args.lr, epochs=args.epochs)
    trainer.fit(dataset.train, validation=dataset.test, log_every=max(1, args.epochs // 8))

    metrics = trainer.evaluate(dataset.test)
    print("\ntest-year metrics (Table 2 row):")
    for key, value in metrics.as_row().items():
        print(f"  {key:10s} {value:6.2f}%")

    save_module(model, args.out)
    print(f"\nweights saved to {args.out}")


if __name__ == "__main__":
    main()
