"""Batched inference: one forward pass over many CNFs at once.

The paper runs one inference per instance; batching lets a dispatcher
screen a whole pool with a single call.  Linear attention and the
readout respect member boundaries (segmented attention), so batched
probabilities are *exactly* the per-graph ones — that equality is the
point demonstrated here (throughput parity depends on graph sizes).

Run:  python examples/batched_inference.py
"""

import time

from repro.cnf import random_ksat
from repro.graph import BipartiteGraph, batch_graphs
from repro.models import NeuroSelect


def main() -> None:
    model = NeuroSelect(hidden_dim=16, seed=0)
    cnfs = [random_ksat(60 + 10 * i, 4 * (60 + 10 * i), seed=i) for i in range(12)]
    graphs = [BipartiteGraph(c) for c in cnfs]

    start = time.perf_counter()
    individual = [model.predict_proba(g) for g in graphs]
    t_single = time.perf_counter() - start

    batch = batch_graphs(graphs)
    start = time.perf_counter()
    batched = model.predict_proba_batch(batch)
    t_batch = time.perf_counter() - start

    worst = max(abs(a - b) for a, b in zip(individual, batched))
    print(f"instances:            {len(cnfs)}")
    print(f"per-graph inference:  {1000 * t_single:.1f} ms total")
    print(f"batched inference:    {1000 * t_batch:.1f} ms total "
          f"({t_single / t_batch:.1f}x)")
    print(f"max probability diff: {worst:.2e} (must be ~0)")
    assert worst < 1e-9

    labels = [int(p >= 0.5) for p in batched]
    print("policy picks:", "".join(str(l) for l in labels),
          "(1 = frequency policy)")


if __name__ == "__main__":
    main()
