"""NeuroSelect-Kissat end to end: classify once, pick a policy, solve.

The full Sec. 5.4 pipeline: build a labelled dataset, train the
classifier on the training years, then compare stock Kissat against
NeuroSelect-Kissat on the held-out test year — Figure 7 and Table 3.

Run:  python examples/end_to_end_selection.py [--per-year N]
"""

import argparse

from repro.bench import fig7_table3_end_to_end, oracle_end_to_end
from repro.bench.tables import format_dict_table
from repro.models import NeuroSelect
from repro.selection import Trainer, build_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-year", type=int, default=6)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--budget", type=int, default=300_000,
                        help="propagation budget playing the 5000 s timeout role")
    args = parser.parse_args()

    print("building dataset and training the selector ...")
    dataset = build_dataset(instances_per_year=args.per_year, max_conflicts=8000)
    model = NeuroSelect(hidden_dim=32, seed=0)
    Trainer(model, learning_rate=3e-3, epochs=args.epochs).fit(dataset.train)

    print("\nevaluating on the held-out test year ...")
    result = fig7_table3_end_to_end(dataset.test, model, max_propagations=args.budget)
    print("\nFigure 7(a)/(b):")
    print(result.render_fig7())
    print("\nTable 3:")
    print(result.render_table3())

    oracle = oracle_end_to_end(dataset.test, max_propagations=args.budget)
    print("\nupper bound (per-instance best policy):")
    print(format_dict_table([oracle.as_row()]))


if __name__ == "__main__":
    main()
