"""Compare the two clause-deletion policies head-to-head (paper Sec. 3).

Generates a mixed instance suite, solves each instance under Kissat's
default glue/size policy and under the propagation-frequency policy, and
prints a Figure 4-style scatter: instances below the diagonal are wins
for the new policy, instances above are losses — motivating adaptive
per-instance selection.

Run:  python examples/policy_comparison.py [--instances N]
"""

import argparse

from repro.bench import fig4_policy_scatter
from repro.selection.dataset import _instance_pool, LabeledInstance
from repro.selection.labeling import PolicyComparison
from repro.solver.types import Status


def make_suite(count: int):
    """A deterministic mixed-family suite (no labels needed here)."""
    instances = []
    for family, cnf in _instance_pool(2022, count, scale=1.0):
        placeholder = PolicyComparison(
            default_result_status=Status.UNKNOWN,
            frequency_result_status=Status.UNKNOWN,
            default_propagations=0,
            frequency_propagations=0,
            label=0,
        )
        instances.append(
            LabeledInstance(cnf=cnf, year=2022, family=family, comparison=placeholder)
        )
    return instances


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instances", type=int, default=10)
    parser.add_argument("--budget", type=int, default=300_000,
                        help="propagation budget playing the 5000 s timeout role")
    args = parser.parse_args()

    suite = make_suite(args.instances)
    print(f"solving {len(suite)} instances under both policies ...")
    result = fig4_policy_scatter(suite, max_propagations=args.budget)
    print(result.render())
    print()
    for name, d, f in zip(result.names, result.default_seconds, result.frequency_seconds):
        marker = "<" if f < d else (">" if f > d else "=")
        print(f"  {name}: default {d:8.1f} s  {marker}  frequency {f:8.1f} s")


if __name__ == "__main__":
    main()
