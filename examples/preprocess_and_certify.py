"""Preprocess a formula, solve the residual, and certify UNSAT answers.

Shows the two trust stories of the solver stack: model *reconstruction*
through preprocessing (SAT side) and DRAT *proof checking* (UNSAT side).

Run:  python examples/preprocess_and_certify.py
"""

from repro.cnf import parity_chain, random_ksat
from repro.simplify import Preprocessor, solve_with_preprocessing
from repro.solver import ProofLog, Solver, Status, check_drat


def show_preprocessing(cnf, name):
    pre = Preprocessor(enable_vivification=True).preprocess(cnf)
    stats = pre.stats
    print(
        f"{name}: {cnf.num_clauses} -> {pre.cnf.num_clauses} clauses | "
        f"fixed={stats.fixed_variables} eliminated={stats.eliminated_variables} "
        f"equivalent={stats.substituted_variables} subsumed={stats.subsumed_clauses} "
        f"strengthened={stats.strengthened_literals} vivified={stats.vivified_clauses}"
    )
    return pre


def main() -> None:
    # SAT side: preprocessing plus model reconstruction.
    sat_cnf = parity_chain(14, seed=5, contradiction=False)
    show_preprocessing(sat_cnf, "parity (SAT)")
    result = solve_with_preprocessing(sat_cnf)
    assert result.status is Status.SATISFIABLE
    assert sat_cnf.check_model(result.model)
    print("  -> SATISFIABLE; reconstructed model verified against the original\n")

    # UNSAT side: DRAT certification.
    unsat_cnf = random_ksat(60, 280, seed=11)
    proof = ProofLog()
    result = Solver(unsat_cnf, proof=proof).solve()
    print(f"random 3-SAT @ ratio 4.67: {result.status.value}")
    if result.status is Status.UNSATISFIABLE:
        print(f"  proof: {proof.additions} additions, {proof.deletions} deletions")
        assert check_drat(unsat_cnf, proof.text())
        print("  -> DRAT proof checked by the reference RUP checker")


if __name__ == "__main__":
    main()
