"""Quickstart: build a formula, solve it, inspect the result.

Run:  python examples/quickstart.py
"""

from repro.cnf import CNF, parse_dimacs, random_ksat
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver import Solver, Status


def main() -> None:
    # 1. Build a CNF by hand: (x1 | x2) & (~x2 | x3) & (~x1 | ~x3).
    cnf = CNF([[1, 2], [-2, 3], [-1, -3]])
    result = Solver(cnf).solve()
    assert result.status is Status.SATISFIABLE
    print("hand-built formula:", result.status.value)
    print("  model:", {v: result.model[v] for v in range(1, cnf.num_vars + 1)})

    # 2. Or parse DIMACS text (files work too: parse_dimacs_file).
    cnf = parse_dimacs("""
        c a tiny unsatisfiable instance
        p cnf 2 4
        1 2 0
        1 -2 0
        -1 2 0
        -1 -2 0
    """)
    print("DIMACS formula:", Solver(cnf).solve().status.value)

    # 3. A harder random instance, solved under both deletion policies.
    cnf = random_ksat(num_vars=120, num_clauses=510, seed=7)
    for policy in (DefaultPolicy(), FrequencyPolicy()):
        result = Solver(cnf, policy=policy).solve(max_conflicts=50_000)
        stats = result.stats
        print(
            f"random 3-SAT with {policy.name:9s} policy: {result.status.value:13s} "
            f"conflicts={stats.conflicts} propagations={stats.propagations} "
            f"deleted={stats.deleted_clauses}"
        )


if __name__ == "__main__":
    main()
