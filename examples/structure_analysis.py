"""Compare the structure of the generator families (VIG measures).

Industrial SAT instances are modular; random ones are not.  This example
computes variable-incidence-graph statistics for one instance of each
family, showing why the dataset mixes them: the selector must cope with
both regimes.

Run:  python examples/structure_analysis.py
"""

from repro.bench.tables import format_dict_table
from repro.cnf import (
    cardinality_conflict,
    community_sat,
    graph_coloring,
    parity_chain,
    pigeonhole,
    random_ksat,
    structural_features,
)

FAMILIES = [
    ("random_ksat", random_ksat(120, 500, seed=1)),
    ("community_sat", community_sat(4, 30, 120, inter_clause_fraction=0.05, seed=1)),
    ("graph_coloring", graph_coloring(30, 3, 0.15, seed=1)),
    ("parity_chain", parity_chain(16, seed=1)),
    ("cardinality", cardinality_conflict(16, seed=1)),
    ("pigeonhole", pigeonhole(6)),
]


def main() -> None:
    rows = []
    for name, cnf in FAMILIES:
        f = structural_features(cnf)
        rows.append(
            {
                "family": name,
                "vars": cnf.num_vars,
                "clauses": cnf.num_clauses,
                "modularity": round(f.modularity, 3),
                "communities": f.num_communities,
                "clustering": round(f.clustering_coefficient, 3),
                "mean degree": round(f.mean_degree, 1),
            }
        )
    print(format_dict_table(rows))
    modular = max(rows, key=lambda r: r["modularity"])
    print(f"\nmost modular family: {modular['family']} "
          f"(modularity {modular['modularity']})")


if __name__ == "__main__":
    main()
