"""Solve service client: async submission and result streaming.

Starts an in-process solve service (unless ``--port`` points at a
running ``repro serve``), then shows the two client modes:

* a **concurrent burst** of held (``wait=true``) requests — they land
  inside one flush window, so the service classifies all of them with
  fewer HGT forward passes than requests (the amortization the service
  exists for, read back from ``/metrics``);
* a **fire-and-forget** submission (``wait=false``) whose lifecycle
  (QUEUED → INFERRING → SOLVING → DONE) is followed over the NDJSON
  streaming endpoint.

Run:  python examples/serve_client.py
      python examples/serve_client.py --port 8123   # against repro serve
"""

import argparse
import asyncio

from repro.cnf import random_ksat, to_dimacs
from repro.models import NeuroSelect
from repro.serve import ServeClient, ServeConfig, SolveService
from repro.serve.http import bound_address, start_service

BURST = 8


async def demo(client: ServeClient) -> None:
    await client.wait_ready()

    # -- concurrent burst: batched inference -----------------------------
    cnfs = [random_ksat(12 + i, 4 * (12 + i), seed=i) for i in range(BURST)]
    replies = await asyncio.gather(*[
        client.solve(to_dimacs(cnf), max_conflicts=20_000) for cnf in cnfs
    ])
    print(f"burst of {BURST} held requests:")
    for reply in replies:
        body = reply.json
        print(f"  {body['id']}  HTTP {reply.code}  {body['status']:14s} "
              f"policy={body['policy']:9s} batch_size={body['batch_size']}")

    metrics = await client.metrics()
    service = metrics.json["service"]
    print(f"forward passes: {service['inference_passes']} "
          f"for {service['requests']} requests "
          f"(amortized {'yes' if service['inference_passes'] < service['requests'] else 'no'})")

    # -- fire-and-forget + lifecycle stream ------------------------------
    ticket = await client.solve(
        to_dimacs(random_ksat(30, 126, seed=99)),
        max_conflicts=20_000,
        wait=False,
    )
    job = ticket.json["id"]
    print(f"\nsubmitted {job} without waiting (HTTP {ticket.code}); streaming:")
    async for snapshot in client.stream(job):
        line = f"  {snapshot['state']:9s}"
        if "policy" in snapshot:
            line += f" policy={snapshot['policy']}"
        if "status" in snapshot:
            line += (f" -> {snapshot['status']} "
                     f"in {snapshot['wall_seconds']:.3f}s")
        print(line)


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="port of a running repro serve; 0 (default) "
                             "starts an in-process service instead")
    args = parser.parse_args()

    if args.port:
        await demo(ServeClient(args.host, args.port))
        return

    # No external service: run one in-process on a free port.  A fresh
    # seeded model is untrained but deterministic — batching behaves
    # identically to a trained deployment.
    service = SolveService(
        NeuroSelect(hidden_dim=16, seed=0),
        ServeConfig(max_batch=BURST, flush_window=0.2),
    )
    server, _ = await start_service(service, port=0)
    host, port = bound_address(server)
    print(f"in-process service on http://{host}:{port}\n")
    try:
        await demo(ServeClient(host, port))
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
