"""Circuit equivalence checking — the paper's motivating application.

The introduction lists circuit verification as a key SAT workload.
This example builds two structurally different implementations of the
same Boolean function, forms their equivalence miter (SAT iff the
circuits can disagree), and solves it with a DRAT-certified answer.

Run:  python examples/circuit_equivalence.py
"""

from repro.cnf import Circuit, miter
from repro.solver import ProofLog, Solver, Status, check_drat


def majority_gate_version() -> Circuit:
    """Majority(a, b, c) as (a&b) | (a&c) | (b&c)."""
    c = Circuit()
    a, b, d = c.input("a"), c.input("b"), c.input("c")
    c.set_output(c.or_(c.and_(a, b), c.and_(a, d), c.and_(b, d)))
    return c


def majority_mux_version() -> Circuit:
    """Majority via a multiplexer: if a then (b|c) else (b&c)."""
    c = Circuit()
    a, b, d = c.input("a"), c.input("b"), c.input("c")
    c.set_output(c.ite(a, c.or_(b, d), c.and_(b, d)))
    return c


def majority_buggy_version() -> Circuit:
    """A near-miss: if a then (b|c) else (b|c) — wrong when a=0, b!=c."""
    c = Circuit()
    a, b, d = c.input("a"), c.input("b"), c.input("c")
    c.set_output(c.ite(a, c.or_(b, d), c.or_(b, d)))
    return c


def check(name, left, right):
    cnf = miter(left, right)
    proof = ProofLog()
    result = Solver(cnf, proof=proof).solve()
    if result.status is Status.UNSATISFIABLE:
        assert check_drat(cnf, proof.text())
        print(f"{name}: EQUIVALENT (UNSAT miter, DRAT proof checked, "
              f"{proof.additions} lemmas)")
    else:
        witness = {
            n: result.model[left.inputs[n]] for n in sorted(left.inputs)
        }
        print(f"{name}: NOT equivalent — counterexample inputs {witness}")
        assert left.evaluate(witness) != right.evaluate(witness)


def main() -> None:
    gates = majority_gate_version()
    mux = majority_mux_version()
    buggy = majority_buggy_version()
    check("gates vs mux  ", gates, mux)
    check("gates vs buggy", gates, buggy)


if __name__ == "__main__":
    main()
