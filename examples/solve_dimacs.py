"""Command-line SAT solver over DIMACS files.

Usage:
    python examples/solve_dimacs.py FILE.cnf [--policy default|frequency]
                                    [--proof out.drat] [--max-conflicts N]
                                    [--assume LIT ...]

Prints an s-line / v-line in SAT-competition style and solver statistics.
With --proof, UNSAT answers come with a DRAT certificate that
``repro.solver.check_drat`` (or drat-trim) can verify.
"""

import argparse
import sys

from repro.cnf import parse_dimacs_file
from repro.policies import get_policy
from repro.solver import ProofLog, Solver, Status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="DIMACS CNF file")
    parser.add_argument("--policy", default="default", choices=["default", "frequency"])
    parser.add_argument("--proof", help="write a DRAT proof here")
    parser.add_argument("--max-conflicts", type=int, default=None)
    parser.add_argument("--assume", type=int, nargs="*", default=[])
    args = parser.parse_args(argv)

    cnf = parse_dimacs_file(args.file)
    proof = ProofLog(args.proof) if args.proof else None
    solver = Solver(cnf, policy=get_policy(args.policy), proof=proof)
    result = solver.solve(assumptions=args.assume, max_conflicts=args.max_conflicts)
    if proof is not None:
        proof.close()

    if result.status is Status.SATISFIABLE:
        print("s SATISFIABLE")
        literals = [
            v if result.model[v] else -v for v in range(1, cnf.num_vars + 1)
        ]
        print("v " + " ".join(map(str, literals)) + " 0")
        exit_code = 10
    elif result.status is Status.UNSATISFIABLE:
        print("s UNSATISFIABLE")
        exit_code = 20
    else:
        print("s UNKNOWN")
        exit_code = 0

    stats = result.stats
    print(f"c policy       {args.policy}")
    print(f"c conflicts    {stats.conflicts}")
    print(f"c decisions    {stats.decisions}")
    print(f"c propagations {stats.propagations}")
    print(f"c restarts     {stats.restarts}")
    print(f"c reductions   {stats.reductions} (deleted {stats.deleted_clauses} clauses)")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
